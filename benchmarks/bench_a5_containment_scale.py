"""A5 — containment checking as extensions grow.

Global re-checks walk every (s, e) pair and every tuple; the propagating
insert maintains the invariant incrementally.  The bench compares one
global check against one maintained insert across extension sizes.
"""

import random

import pytest

from conftest import show

from repro.workloads import random_extension, random_schema, random_tuple

SIZES = [5, 20, 60, 150]


def state(rows_per_leaf, seed=13):
    rng = random.Random(seed)
    schema = random_schema(rng, n_attrs=8, n_types=8, shape="tree")
    return schema, random_extension(rng, schema, rows_per_leaf=rows_per_leaf), rng


@pytest.mark.parametrize("rows", SIZES)
def test_a5_global_recheck(benchmark, rows):
    _, db, _ = state(rows)
    assert benchmark(db.satisfies_containment)


@pytest.mark.parametrize("rows", SIZES)
def test_a5_incremental_insert(benchmark, rows):
    schema, db, rng = state(rows)
    leaf = max(schema, key=lambda e: len(e.attributes))

    def insert_maintained():
        return db.insert(leaf, random_tuple(rng, schema, leaf.attributes))

    grown = benchmark(insert_maintained)
    assert grown.total_instances() >= db.total_instances()


def test_a5_invariant_after_many_inserts(benchmark):
    schema, db, rng = state(10)
    leaf = max(schema, key=lambda e: len(e.attributes))

    def grow_many():
        current = db
        for _ in range(10):
            current = current.insert(leaf, random_tuple(rng, schema, leaf.attributes))
        return current

    final = benchmark(grow_many)
    assert final.satisfies_containment()
    show("A5: propagation keeps containment invariant",
         f"{final.total_instances()} instances after repeated inserts, 0 violations")
