"""E3 — section 3.1: V_a, S_e and the Venn/containment figure.

Asserts the exact S_e sets the paper lists and regenerates the figure;
the benchmark times the full specialisation analysis (usage sets, S sets,
topology generation).
"""

from conftest import show

from repro.core import SpecialisationStructure
from repro.core.employee import PAPER_S_SETS
from repro.viz import isa_forest, nested_regions, specialisation_table


def analyse(schema):
    spec = SpecialisationStructure(schema)
    sets = {e.name: spec.S(e) for e in schema}
    return spec, sets, len(spec.space.opens)


def test_e03_S_sets_and_topology(benchmark, schema):
    spec, sets, n_opens = benchmark(analyse, schema)
    for name, expected in PAPER_S_SETS.items():
        assert {e.name for e in sets[name]} == set(expected)
    assert spec.is_open_cover()
    assert spec.minimal_open_is_S()
    assert n_opens >= 8
    show("E3: V_a and S_e tables", specialisation_table(schema))


def test_e03_venn_figure(benchmark, schema):
    text = benchmark(isa_forest, schema)
    assert "manager" in text and "shared" in text
    show("E3: containment (Venn) figure as ISA forest",
         text + "\n\n" + nested_regions(schema))
