"""E8 — section 4.2: the Extension Axiom's injective contributor join.

"An employee can be a manager in at most one way": the bench checks the
injective embedding on the clean state, then injects both failure modes
(collision and unsupported tuple) and confirms detection.  The gluing
check ties the axiom to the section-6 presheaf view.
"""

import random

from conftest import show

from repro.core import gluing_report
from repro.workloads import (
    inject_injectivity_violation,
    random_extension,
    random_schema,
)


def test_e08_injective_join_clean(benchmark, db):
    def check():
        return db.satisfies_extension_axiom(), len(db.contributor_join("worksfor"))

    ok, join_size = benchmark(check)
    assert ok
    body = (
        f"R_worksfor = {len(db.R('worksfor'))} tuples\n"
        f"join of contributors = {join_size} tuples\n"
        "R_worksfor embeds injectively: yes"
    )
    show("E8: Extension Axiom on the employee state", body)


def test_e08_collision_detected(benchmark, db):
    broken = db.replace("manager", db.R("manager").with_tuples([
        {"name": "ann", "age": 31, "depname": "sales", "budget": 500},
    ]))

    def diagnose():
        return broken.extension_axiom_violations("manager")

    report = benchmark(diagnose)
    assert report["collisions"]
    show("E8: injectivity failure",
         f"ann is a manager in {len(report['collisions'][0])} ways -> rejected")


def test_e08_detection_at_scale(benchmark):
    rng = random.Random(23)
    cases = []
    for seed in range(8):
        local = random.Random(seed)
        s = random_schema(local, n_attrs=8, n_types=8, shape="tree")
        base = random_extension(local, s, rows_per_leaf=4)
        try:
            cases.append(inject_injectivity_violation(local, base))
        except Exception:
            continue

    def detect_all():
        return [case.satisfies_extension_axiom() for case in cases]

    verdicts = benchmark(detect_all)
    assert verdicts and not any(verdicts)
    show("E8: injected violations all detected", f"{len(verdicts)} cases, 0 missed")


def test_e08_gluing_link(benchmark, db):
    report = benchmark(gluing_report, db)
    assert report["is_sheaf_on_E"]
    show("E8/E7 link: consistent state glues over the S_e cover",
         "sheaf condition holds on E")
