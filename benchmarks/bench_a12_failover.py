"""A12 — failover: promotion latency and the kill-and-promote client.

PR 8 closed the availability loop; this bench measures what a failover
event costs:

* ``promotion`` — :func:`repro.server.promote` over a ~100-commit
  segmented WAL whose replica is already caught up (pedantic mode —
  building primary history and tailing it is setup, untimed).  The
  timed quantity is the promotion contract itself: final sync, tail
  repair, the fsynced epoch stamp, and WAL adoption.  ``min_s`` is the
  write-unavailability window a planned failover imposes when the
  replica is current.
* ``promotion_cold`` — the same contract but the replica starts from
  byte zero: bounded above by ``replica_tail`` (bench_a11) plus
  ``promotion``; the realistic worst case for an unprepared standby.
* ``failover_client_commits`` — a :class:`FailoverClient` committing a
  batch through a healthy primary: the candidate-resolution and
  retry-loop overhead on the happy path, directly comparable to
  ``wire_commits``'s raw :class:`StoreClient` numbers.

Run with ``--bench-json`` to record timings in ``BENCH_kernel.json``
(the a12 names are part of the guarded kernel set in
``benchmarks/compare_bench.py``).
"""

from repro.server import (
    FailoverClient,
    ReplicaEngine,
    RetryPolicy,
    StoreServer,
    promote,
)
from repro.store import SessionService, StoreEngine, WriteAheadLog
from repro.workloads import (
    disjoint_commit_specs,
    manager_stream,
    serving_state,
)

ROWS = 600
HISTORY_COMMITS = 100
CLIENT_COMMITS = 24

_STATES: dict[int, tuple] = {}


def state(n: int):
    if n not in _STATES:
        _STATES[n] = serving_state(n)
    return _STATES[n]


def _build_history(wal_dir):
    """A primary with ~HISTORY_COMMITS commits in a segmented WAL."""
    schema, db, constraints = state(ROWS)
    engine = StoreEngine(
        db, constraints, wal=WriteAheadLog(wal_dir, segment_records=32),
        checkpoint_every=48)
    session = SessionService(engine).session()
    for ops in [s for shard in disjoint_commit_specs(
            manager_stream(ROWS, HISTORY_COMMITS), 1) for s in shard]:
        session.run(ops)
    engine.close()
    return engine


def test_a12_promotion(benchmark, tmp_path):
    """Promotion of an already-caught-up replica: the planned-failover
    write-unavailability window."""
    built = []

    def fresh():
        wal_dir = tmp_path / f"wal{len(built)}"
        primary = _build_history(wal_dir)
        replica = ReplicaEngine(wal_dir, from_checkpoint=False)
        replica.catch_up()
        built.append((primary, replica))
        return (replica,), {}

    promoted = benchmark.pedantic(promote, setup=fresh,
                                  rounds=5, iterations=1)
    primary, _ = built[-1]
    assert promoted.epoch == 1
    assert promoted.head_version().vid == primary.head_version().vid
    assert promoted.state() == primary.state()
    promoted.wal.close()


def test_a12_promotion_cold(benchmark, tmp_path):
    """Promotion of a replica starting at byte zero — the tail replay
    is inside the timed window (the unprepared-standby worst case)."""
    built = []

    def fresh():
        wal_dir = tmp_path / f"cold{len(built)}"
        primary = _build_history(wal_dir)
        built.append(primary)
        return (ReplicaEngine(wal_dir, from_checkpoint=False),), {}

    promoted = benchmark.pedantic(promote, setup=fresh,
                                  rounds=5, iterations=1)
    assert promoted.epoch == 1
    assert promoted.head_version().vid == built[-1].head_version().vid
    promoted.wal.close()


def test_a12_failover_client_commits(benchmark):
    """FailoverClient commits against a healthy primary: the resolve-
    and-retry machinery's overhead on the happy path."""
    schema, db, constraints = state(ROWS)
    rows = manager_stream(ROWS, CLIENT_COMMITS)
    engines, servers = [], []

    def fresh():
        engine = StoreEngine(db, constraints)
        server = StoreServer(engine)
        server.start_background()
        engines.append(engine)
        servers.append(server)
        return (server.address,), {}

    def commit_batch(address):
        with FailoverClient([address],
                            policy=RetryPolicy(seed=0)) as client:
            for row in rows:
                client.run([{"op": "insert", "relation": "manager",
                             "row": row, "propagate": True}])
            assert client.epoch == 0
        return address

    benchmark.pedantic(commit_batch, setup=fresh,
                       rounds=5, iterations=1)
    for server in servers:
        server.stop()
    assert all(len(e.graph) == CLIENT_COMMITS + 1 for e in engines)
    for engine in engines:
        engine.close()
