"""A8 — sustained update streams: delta derivation vs. full re-intern.

The update-serving workload the delta layer exists for: a stream of
single-tuple ``insert``/``delete`` updates against a five-relation state
(~n rows per relation), with a full ``check_all`` audit after every
half-batch.  The delta route patches the predecessor's kernel per update
(shared append-only symbol tables, partition indexes maintained in the
size of the delta) and each audit re-judges only the dirty contexts,
merging chained cached verdicts for the rest.  The baseline replays the
pre-delta behaviour: every update rebuilds the ``DatabaseExtension``
through the public constructor (full domain re-validation) and every
audit starts cold — fresh interning plus full sweeps.

A second pair times the §6 evolution loop: adding and removing an entity
type on an 18-type schema, with the specialisation topology (903 opens)
maintained incrementally by point patches versus regenerated from the
subbase on every edit.

Run with ``--bench-json`` to record the timings in ``BENCH_kernel.json``
(the perf trajectory ``benchmarks/compare_bench.py`` diffs against; the
a8 names are part of the guarded kernel set).
"""

import random

import pytest

from bench_a7_axiom_sweep import sweep_state

from repro.core import DatabaseExtension, SpecialisationStructure, check_all
from repro.relational import Tuple
from repro.workloads import random_schema

SIZES = [200, 1000]
BATCH = 10  # updates per benchmark round, audited twice per round


def stream_rows(n: int) -> list[dict]:
    """Fresh ``manager`` rows the a7 state does not contain.

    ``pname % 3 == 1`` names employees who are not yet managers, and the
    projection onto the contributor ``worksfor`` already exists, so the
    inserts keep every axiom satisfied (and their upward propagation
    dedups to a no-op — only the ``manager`` relation gets dirty).
    """
    dept_of = [(i * 3 + 1) % n for i in range(n)]
    rows = []
    for i in range(1, n, 3):
        rows.append({"pname": i, "dname": dept_of[i],
                     "budget": dept_of[i] % 53, "role": i % 7,
                     "bonus": (i + 5) % 11})
        if len(rows) == BATCH // 2:
            return rows
    raise AssertionError("state too small for the stream")


def _audited(schema, db, constraints):
    report = check_all(schema, db, constraints=constraints)
    assert report.ok()
    return db


@pytest.mark.parametrize("rows", SIZES)
def test_a8_update_stream_delta(benchmark, rows):
    """Delta route: derived kernels + dirty-context audits."""
    schema, db, constraints = sweep_state(rows)
    batch = [Tuple(r) for r in stream_rows(rows)]
    db = _audited(schema, db, constraints)  # warm root kernel and caches
    holder = {"db": db}

    def round_trip():
        current = holder["db"]
        for t in batch:
            current = current.insert("manager", t)
        current = _audited(schema, current, constraints)
        for t in batch:
            current = current.delete("manager", t)
        current = _audited(schema, current, constraints)
        holder["db"] = current
        return current

    final = benchmark(round_trip)
    assert final.R("manager") == db.R("manager")


@pytest.mark.parametrize("rows", SIZES)
def test_a8_update_stream_full(benchmark, rows):
    """Baseline: the pre-delta path — every update rebuilds the state
    through the public constructor, every audit starts cold."""
    schema, db, constraints = sweep_state(rows)
    batch = [Tuple(r) for r in stream_rows(rows)]
    holder = {"db": db}

    def rebuilt(current, manager_rel):
        relations = {e.name: rel for e, rel in current._relations.items()}
        relations["manager"] = manager_rel
        return DatabaseExtension(schema, relations, current.contributors)

    def round_trip():
        current = holder["db"]
        for t in batch:
            current = rebuilt(current, current.R("manager").with_tuples([t]))
        current = _audited(schema, current, constraints)
        for t in batch:
            current = rebuilt(current, current.R("manager").without_tuples([t]))
        current = _audited(schema, current, constraints)
        holder["db"] = current
        return current

    final = benchmark(round_trip)
    assert final.R("manager") == db.R("manager")


# ----------------------------------------------------------------------
# subbase edits: incremental topology maintenance vs. regeneration
# ----------------------------------------------------------------------
N_TYPES = 18
N_EDITS = 4  # fresh types added then removed per round (8 edits total)


def edit_fixture():
    """An 18-type tree schema (903 opens), a built structure, and a
    ladder of fresh types landing mid-hierarchy (nontrivial cover
    sets), with the schema of every edit step precomputed so the loops
    time only the topology maintenance."""
    from repro.core.entity_types import EntityType

    schema = random_schema(random.Random(7), n_attrs=10,
                           n_types=N_TYPES, shape="tree")
    spec = SpecialisationStructure(schema)
    _ = spec.space
    used = {e.attributes for e in schema}
    fresh = []
    for base in sorted(schema, key=lambda e: -len(e.attributes)):
        for extra in sorted(schema.universe.property_names):
            candidate = base.attributes | {extra}
            if candidate not in used:
                used.add(candidate)
                fresh.append(EntityType(f"a8_fresh_{len(fresh)}", candidate))
                break
        if len(fresh) == N_EDITS:
            break
    assert len(fresh) == N_EDITS, "schema left no room for fresh types"
    schemas = [schema]
    for t in fresh:
        schemas.append(schemas[-1].with_entity_type(t))
    return schemas, spec, fresh


def test_a8_subbase_edit_incremental(benchmark):
    """The §6 evolution loop with the topology *maintained*: each edit
    patches the minimal opens and the open family in mask form; the
    frozenset family is decoded once, when the final space is read."""
    schemas, spec, fresh = edit_fixture()

    def edit_loop():
        current = spec
        for i, t in enumerate(fresh):
            current = current.with_type_added(schemas[i + 1], t)
        for i, t in reversed(list(enumerate(fresh))):
            current = current.with_type_removed(schemas[i], t)
        return len(current.space.opens)

    opens = benchmark(edit_loop)
    assert opens == len(spec.space.opens)


def test_a8_subbase_edit_regen(benchmark):
    """Baseline: every edit regenerates the topology from its subbase
    (the pre-incremental behaviour of a SchemaChange analysis)."""
    schemas, spec, fresh = edit_fixture()

    def edit_loop():
        for i in range(1, len(schemas)):
            _ = SpecialisationStructure(schemas[i]).space
        for i in range(len(schemas) - 2, -1, -1):
            current = SpecialisationStructure(schemas[i])
            _ = current.space
        return len(current.space.opens)

    opens = benchmark(edit_loop)
    assert opens == len(spec.space.opens)


def test_a8_agreement(benchmark):
    """One differential round at the largest size, timed end to end."""
    schema, db, constraints = sweep_state(SIZES[-1])
    from repro.core import check_all_naive

    batch = [Tuple(r) for r in stream_rows(SIZES[-1])]

    def agree():
        current = db
        for t in batch:
            current = current.insert("manager", t)
        routed = check_all(schema, current, constraints=constraints)
        naive = check_all_naive(schema, current, constraints=constraints)
        return routed.findings == naive.findings

    assert benchmark(agree)
