"""E1 — the section-2 employee table: A, E, and the attribute sets.

Regenerates the paper's table verbatim from the schema object and checks
every row; the benchmark times schema construction plus rendering.
"""

from conftest import show

from repro.core.employee import ATTRIBUTE_SETS, employee_schema
from repro.viz import entity_table


def build_and_render():
    schema = employee_schema()
    return schema, entity_table(schema)


def test_e01_employee_table(benchmark):
    schema, text = benchmark(build_and_render)
    assert "A = {age, budget, depname, location, name}" in text
    assert "E = {department, employee, manager, person, worksfor}" in text
    for name, attrs in ATTRIBUTE_SETS.items():
        assert schema[name].attributes == attrs
        assert "{" + ", ".join(sorted(attrs)) + "}" in text
    show("E1: section-2 entity table", text)
