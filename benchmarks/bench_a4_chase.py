"""A4 — chase-based lossless-join test vs. instance-level brute force.

The chase decides losslessness at the schema level in polynomial time;
the brute-force check joins projections of concrete instances.  Agreement
is asserted on random cases; the BCNF/3NF comparison rows close the loop
to the paper's anti-projection argument.
"""

import random

from conftest import show

from repro.relational import (
    FD,
    Relation,
    decomposition_report,
    holds_in,
    is_lossless,
    is_lossless_decomposition,
)

SCHEMA = frozenset("abcd")
PARTS = [frozenset("ab"), frozenset("bc"), frozenset("bd")]
FDS = [FD({"b"}, {"c"}), FD({"b"}, {"d"})]


def random_instance(rng):
    rows = [
        {a: rng.randint(0, 2) for a in SCHEMA}
        for _ in range(rng.randint(0, 6))
    ]
    return Relation(SCHEMA, rows)


def test_a4_chase(benchmark):
    verdict = benchmark(is_lossless, SCHEMA, PARTS, FDS)
    assert verdict


def test_a4_brute_force(benchmark):
    rng = random.Random(3)
    instances = []
    while len(instances) < 20:
        rel = random_instance(rng)
        if all(holds_in(fd, rel) for fd in FDS):
            instances.append(rel)

    def verify_all():
        return all(is_lossless_decomposition(rel, PARTS) for rel in instances)

    assert benchmark(verify_all)


def test_a4_agreement_random_decompositions(benchmark):
    rng = random.Random(9)
    cases = []
    for _ in range(12):
        left = frozenset(rng.sample(sorted(SCHEMA), rng.randint(2, 3)))
        right = (SCHEMA - left) | frozenset(rng.sample(sorted(left), 1))
        fds = [FD({rng.choice(sorted(SCHEMA))}, {rng.choice(sorted(SCHEMA))})
               for _ in range(rng.randint(0, 2))]
        cases.append((left, right, fds))

    def cross_validate():
        mismatches = 0
        for left, right, fds in cases:
            chase_says = is_lossless(SCHEMA, [left, right], fds)
            rng2 = random.Random(1)
            for _ in range(15):
                rel = random_instance(rng2)
                if not all(holds_in(fd, rel) for fd in fds):
                    continue
                actual = is_lossless_decomposition(rel, [left, right])
                if chase_says and not actual:
                    mismatches += 1
        return mismatches

    assert benchmark(cross_validate) == 0


def test_a4_normalization_comparison(benchmark):
    report = benchmark(decomposition_report, frozenset({"city", "street", "zip"}),
                       [FD({"city", "street"}, {"zip"}), FD({"zip"}, {"city"})])
    assert report["bcnf_lossless"] and not report["bcnf_preserving"]
    assert report["3nf_lossless"] and report["3nf_preserving"]
    body = (
        f"BCNF parts: {[sorted(p) for p in report['bcnf_parts']]} "
        f"(lossless={report['bcnf_lossless']}, preserving={report['bcnf_preserving']})\n"
        f"3NF parts:  {[sorted(p) for p in report['3nf_parts']]} "
        f"(lossless={report['3nf_lossless']}, preserving={report['3nf_preserving']})\n"
        "projection-based design loses the city+street->zip bond — the\n"
        "behaviour the paper's entity orientation is built to avoid"
    )
    show("A4: the classical normalization trade-off", body)
