#!/usr/bin/env bash
# Refresh the committed perf trajectory, gated by the regression diff.
#
# Dumps a fresh --bench-json from the full benchmark suite (a1-a13,
# including the bench_a9 store-throughput, bench_a10 durability,
# bench_a11 server/replica, bench_a12 failover and bench_a13 cluster
# workloads, plus the paper examples), diffs it against the committed
# BENCH_kernel.json with
# compare_bench.py (which fails on >2x kernel regressions AND on kernel
# baselines missing from the fresh dump), and only on a passing diff
# replaces the committed baseline with the fresh numbers.  Extra
# arguments are forwarded to pytest (e.g. --benchmark-min-rounds=3 for
# a quicker sweep).
#
# Usage: benchmarks/run_benches.sh [pytest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
fresh="$(mktemp --suffix=.json)"
trap 'rm -f "$fresh"' EXIT

# Each step's exit code is checked explicitly: `set -e` semantics are
# not guaranteed when the script is run as `sh run_benches.sh` under
# shells whose -e handling differs, and a failed diff must never leave
# the gate green (or refresh the baseline).
python -m pytest benchmarks -q --bench-json "$fresh" "$@" || exit $?
python benchmarks/compare_bench.py "$fresh" BENCH_kernel.json || exit $?
mv "$fresh" BENCH_kernel.json || exit $?
trap - EXIT
echo "BENCH_kernel.json refreshed"
