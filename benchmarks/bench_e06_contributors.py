"""E6 — section 3.3: contributors are the direct generalisations.

Asserts CO_worksfor = {employee, department}, CO_manager = {employee},
and checks the direct-generalisation characterisation on random diamond
schemas (the shape with interesting multiple inheritance).
"""

import random

from conftest import show

from repro.core import GeneralisationStructure, canonical_contributors
from repro.core.employee import PAPER_CONTRIBUTORS
from repro.viz import contributor_diagram, contributor_table
from repro.workloads import random_schema


def test_e06_employee_contributors(benchmark, schema):
    def analyse():
        return {e.name: canonical_contributors(schema, e) for e in schema}

    result = benchmark(analyse)
    for name, expected in PAPER_CONTRIBUTORS.items():
        assert {c.name for c in result[name]} == set(expected)
    show("E6: CO_e table and diagram",
         contributor_table(schema) + "\n\n" + contributor_diagram(schema))


def test_e06_direct_generalisation_characterisation(benchmark):
    schemas = [
        random_schema(random.Random(seed), n_attrs=8, n_types=10, shape="diamond")
        for seed in range(10)
    ]

    def verify_all():
        for s in schemas:
            gen = GeneralisationStructure(s)
            for e in s:
                cos = canonical_contributors(s, e)
                for c in cos:
                    assert c in gen.G(e) and c != e
                    assert not any(
                        c.attributes < g.attributes < e.attributes for g in s
                    )
        return len(schemas)

    count = benchmark(verify_all)
    show("E6: direct-generalisation property", f"verified on {count} diamond schemas")
