"""A1 — S_e via the paper's V_a-intersection vs. the direct subset scan.

Both compute the same sets (asserted); the ablation measures their cost
as the schema grows.  The intersection route pays for building every V_a;
the scan is linear in |E| per query — the bench shows who wins where.
"""

import random

import pytest

from conftest import show

from repro.core import SpecialisationStructure
from repro.workloads import random_schema

SIZES = [10, 40, 120]


def make(n_types):
    return random_schema(random.Random(n_types), n_attrs=12,
                         n_types=n_types, shape="tree")


@pytest.mark.parametrize("n_types", SIZES)
def test_a1_intersection_construction(benchmark, n_types):
    schema = make(n_types)
    spec = SpecialisationStructure(schema)

    def all_S_by_intersection():
        return [spec.S_by_intersection(e) for e in schema]

    result = benchmark(all_S_by_intersection)
    assert len(result) == len(schema)


@pytest.mark.parametrize("n_types", SIZES)
def test_a1_subset_scan(benchmark, n_types):
    schema = make(n_types)
    spec = SpecialisationStructure(schema)

    def all_S_by_scan():
        return [spec.S(e) for e in schema]

    result = benchmark(all_S_by_scan)
    assert len(result) == len(schema)


def test_a1_agreement(benchmark):
    schema = make(60)

    def agree():
        return SpecialisationStructure(schema).cross_check()

    assert benchmark(agree)
    show("A1: both algorithms agree", "60-type schema, identical S_e families")
