"""A3 — entity-level Armstrong closure vs. attribute-level closure.

The entity engine materialises the full derivable set over |E|^3
statements; the relational baseline answers one implication with a linear
closure.  The ablation shows the cost of whole-space materialisation and
confirms the two agree on translatable questions.
"""

import random

import pytest

from conftest import show

from repro.core import ArmstrongEngine, semantically_implies
from repro.workloads import (
    all_statements,
    intersection_close,
    random_premises,
    random_schema,
)
from repro.relational import FD, closure as attr_closure


def case(seed=11, n_types=5):
    rng = random.Random(seed)
    schema = intersection_close(
        random_schema(rng, n_attrs=6, n_types=n_types, shape="tree")
    )
    premises = random_premises(rng, schema, count=3)
    return schema, premises


@pytest.mark.parametrize("n_types", [4, 6, 8])
def test_a3_entity_closure(benchmark, n_types):
    schema, premises = case(n_types=n_types)

    def run():
        return len(ArmstrongEngine(schema, premises).closure())

    count = benchmark(run)
    assert count > 0


@pytest.mark.parametrize("n_types", [4, 6, 8])
def test_a3_attribute_closure(benchmark, n_types):
    schema, premises = case(n_types=n_types)
    theory = [
        FD(p.determinant.attributes, p.dependent.attributes) for p in premises
    ]
    probe = sorted(schema)[0].attributes

    def run():
        return attr_closure(probe, theory)

    result = benchmark(run)
    assert probe <= result


def test_a3_agreement_on_statement_space(benchmark):
    schema, premises = case()
    engine = ArmstrongEngine(schema, premises)

    def agree():
        mismatches = 0
        for statement in all_statements(schema):
            if engine.derivable(statement) != semantically_implies(
                    schema, premises, statement):
                mismatches += 1
        return mismatches

    assert benchmark(agree) == 0
    show("A3: entity engine == attribute semantics",
         "zero mismatches on the intersection-closed statement space")
