"""A9 — store serving throughput: concurrent audited commits.

The serving workload the store exists for: many concurrent sessions
committing small disjoint transactions against a five-relation state
(~n rows per relation), every commit axiom-gated.  Three engines are
timed on the same traffic:

* ``delta`` — targeted O(|delta|) validation plus lhs-group optimistic
  concurrency (this PR's store gate);
* ``audit`` — every commit runs the full dirty-context ``check_all``
  (PR 4's incremental audits, serialised behind the commit lock);
* ``serial`` — the global-lock baseline: each commit rebuilds the state
  through the public constructor and audits it cold (the pre-delta
  behaviour of the library, and the contrast target of the acceptance
  gate: delta must beat it by >= 5x on disjoint writers).

Each benchmark round commits a fixed batch of disjoint ``manager``
inserts across ``WRITERS`` threads against a *fresh* engine (pedantic
mode: engine construction — root audit, probe indexes — happens in
setup, untimed), so ``min_s / COMMITS[mode]`` is the per-commit cost
and ``COMMITS[mode] / min_s`` the commits/s the mode sustains.

A second benchmark times WAL replay (trusted mode) of a committed
history and asserts the rebuilt graph equals the original.

Run with ``--bench-json`` to record the timings in ``BENCH_kernel.json``
(the a9 names are part of the guarded kernel set in
``benchmarks/compare_bench.py``).
"""

import threading

import pytest

from repro.store import SessionService, StoreEngine
from repro.workloads import (
    disjoint_commit_specs,
    manager_stream,
    serving_state,
)

SIZES = [200, 1000]
WRITERS = 8
# Batch sizes per benchmark round, scaled to each mode's per-commit cost
# so a round stays in sensible benchmark territory.
COMMITS = {"delta": 240, "audit": 48, "serial": 4}

_STATES: dict[int, tuple] = {}


def state(n: int):
    if n not in _STATES:
        _STATES[n] = serving_state(n)
    return _STATES[n]


def _commit_batch(engine: StoreEngine, specs) -> StoreEngine:
    service = SessionService(engine)

    def worker(shard):
        session = service.session()
        for ops in shard:
            session.run(ops)

    threads = [threading.Thread(target=worker, args=(shard,))
               for shard in specs]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return engine


def _throughput_case(benchmark, rows: int, mode: str):
    schema, db, constraints = state(rows)
    # Fresh manager slots cap the batch at small sizes (2n/3 available).
    count = min(COMMITS[mode], (2 * rows) // 3 - 2)
    specs = disjoint_commit_specs(manager_stream(rows, count), WRITERS)

    def fresh():
        return (StoreEngine(db, constraints, validation=mode), specs), {}

    engine = benchmark.pedantic(_commit_batch, setup=fresh,
                                rounds=5, iterations=1)
    assert len(engine.graph) == count + 1
    assert engine.validation == mode
    assert engine.audit().ok()


@pytest.mark.parametrize("rows", SIZES)
def test_a9_store_commits_delta(benchmark, rows):
    """Targeted delta gate + optimistic concurrency (the store's mode)."""
    _throughput_case(benchmark, rows, "delta")


@pytest.mark.parametrize("rows", SIZES)
def test_a9_store_commits_audit(benchmark, rows):
    """Full dirty-context audit per commit (PR 4 tech under the lock)."""
    _throughput_case(benchmark, rows, "audit")


@pytest.mark.parametrize("rows", SIZES)
def test_a9_store_commits_seriallock(benchmark, rows):
    """Global-lock baseline: constructor rebuild + cold audit per commit."""
    _throughput_case(benchmark, rows, "serial")


@pytest.mark.parametrize("rows", [1000])
def test_a9_wal_replay(benchmark, rows, tmp_path):
    """Trusted replay of a 120-commit WAL back into a full version graph."""
    schema, db, constraints = state(rows)
    path = tmp_path / "a9.wal"
    engine = StoreEngine(db, constraints, wal=path)
    _commit_batch(engine, disjoint_commit_specs(
        manager_stream(rows, 120), WRITERS))
    engine.close()

    replayed = benchmark(StoreEngine.replay, path)
    assert [v.vid for v in replayed.graph.log()] == \
        [v.vid for v in engine.graph.log()]
    assert replayed.state() == engine.state()
