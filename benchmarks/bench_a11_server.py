"""A11 — the wire: loopback commit/read throughput and replica lag.

PR 7 put the store behind a socket; this bench measures what the wire
costs and what the replicas buy:

* ``wire_commits`` — W client threads committing disjoint ``manager``
  inserts over loopback TCP (begin/stage/commit round trips through the
  asyncio front end, commits executing behind the backpressure
  semaphore) against a *fresh* engine+server per round (pedantic mode —
  listener startup is setup, untimed).  ``COMMITS / min_s`` is the
  sustained commits/s through the wire; compare ``bench_a9``'s in-process
  numbers for the protocol's overhead.
* ``wire_reads`` — R client threads reading a relation at the head over
  persistent connections; ``READS / min_s`` is wire reads/s.
* ``replica_tail`` — a fresh :class:`ReplicaEngine` consuming a
  ~100-commit segmented WAL end-to-end (cursor polls + trusted record
  application); the same follow path ``StoreEngine.replay`` uses, plus
  the cursor bookkeeping.
* ``replica_lag_under_writes`` — writers hammer the primary over the
  wire while a replica tails on its own thread; the timed quantity is
  the contended write phase, and the replica's byte-lag distribution is
  asserted bounded (max and median) as the staleness guarantee.

Run with ``--bench-json`` to record timings in ``BENCH_kernel.json``
(the a11 names are part of the guarded kernel set in
``benchmarks/compare_bench.py``).
"""

import threading

import pytest

from repro.server import ReplicaEngine, StoreClient, StoreServer
from repro.store import SessionService, StoreEngine, WriteAheadLog
from repro.workloads import (
    disjoint_commit_specs,
    manager_stream,
    serving_state,
)

ROWS = 600
WRITERS = 4
COMMITS = 96
READERS = 4
READS = 400
TAIL_COMMITS = 100

_STATES: dict[int, tuple] = {}


def state(n: int):
    if n not in _STATES:
        _STATES[n] = serving_state(n)
    return _STATES[n]


def _records(ops):
    return [{"op": kind, "relation": relation, "row": row,
             "propagate": True}
            for kind, relation, row in ops]


def _commit_over_wire(server, specs):
    """Each writer thread owns one connection and commits its shard."""
    errors = []

    def worker(shard):
        try:
            with StoreClient(*server.address) as client:
                for ops in shard:
                    client.run(_records(ops))
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(shard,))
               for shard in specs]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return server


def test_a11_wire_commits(benchmark):
    """Disjoint commits through the socket front end (commits/s =
    COMMITS / min_s)."""
    schema, db, constraints = state(ROWS)
    specs = disjoint_commit_specs(manager_stream(ROWS, COMMITS), WRITERS)
    engines, servers = [], []

    def fresh():
        engine = StoreEngine(db, constraints)
        server = StoreServer(engine, max_connections=WRITERS + 2)
        server.start_background()
        engines.append(engine)
        servers.append(server)
        return (server, specs), {}

    benchmark.pedantic(_commit_over_wire, setup=fresh,
                       rounds=5, iterations=1)
    for server in servers:
        server.stop()
    assert all(len(e.graph) == COMMITS + 1 for e in engines)
    assert engines[-1].audit().ok()


def test_a11_wire_reads(benchmark):
    """Head reads of the ``manager`` relation over persistent
    connections (reads/s = READS / min_s)."""
    schema, db, constraints = state(ROWS)
    engine = StoreEngine(db, constraints)
    with StoreServer(engine, max_connections=READERS + 2) as server:
        clients = [StoreClient(*server.address) for _ in range(READERS)]
        per_reader = READS // READERS

        def read_batch():
            errors = []

            def worker(client):
                try:
                    for _ in range(per_reader):
                        client.read("manager")
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(c,))
                       for c in clients]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if errors:
                raise errors[0]

        benchmark(read_batch)
        expect = len(engine.state().R("manager"))
        assert all(len(c.read("manager")) == expect for c in clients)
        for client in clients:
            client.close()


def test_a11_replica_tail(benchmark, tmp_path):
    """A fresh replica consuming a ~100-commit segmented WAL end to
    end: cursor polling plus trusted record application."""
    schema, db, constraints = state(ROWS)
    wal_dir = tmp_path / "wal"
    engine = StoreEngine(
        db, constraints, wal=WriteAheadLog(wal_dir, segment_records=32),
        checkpoint_every=48)
    service = SessionService(engine)
    session = service.session()
    for ops in [s for shard in disjoint_commit_specs(
            manager_stream(ROWS, TAIL_COMMITS), 1) for s in shard]:
        session.run(ops)
    engine.close()

    def tail():
        replica = ReplicaEngine(wal_dir, from_checkpoint=False)
        replica.catch_up()
        return replica

    replica = benchmark(tail)
    assert replica.behind_bytes() == 0
    assert replica.head_version().vid == engine.head_version().vid
    assert replica.state() == engine.state()


def test_a11_replica_lag_under_writes(benchmark, tmp_path):
    """The staleness story under sustained wire writes: timed quantity
    is the contended write phase with a replica tailing concurrently;
    the observed byte-lag distribution must stay bounded."""
    schema, db, constraints = state(ROWS)
    lag_samples = []

    def build():
        wal_dir = tmp_path / f"wal{len(lag_samples)}"
        engine = StoreEngine(
            db, constraints,
            wal=WriteAheadLog(wal_dir, segment_records=32),
            checkpoint_every=24)
        server = StoreServer(engine, max_connections=WRITERS + 2)
        server.start_background()
        replica = ReplicaEngine(wal_dir, from_checkpoint=False)
        replica.catch_up()
        specs = disjoint_commit_specs(
            manager_stream(ROWS, COMMITS), WRITERS)
        return (engine, server, replica, specs), {}

    def contended_phase(engine, server, replica, specs):
        samples = []
        stop = threading.Event()

        def tailer():
            while not stop.is_set():
                replica.sync()
                samples.append(replica.behind_bytes())

        t = threading.Thread(target=tailer)
        t.start()
        try:
            _commit_over_wire(server, specs)
        finally:
            stop.set()
            t.join()
        server.stop()
        replica.catch_up()
        assert replica.head_version().vid == engine.head_version().vid
        lag_samples.append(samples)
        return replica

    benchmark.pedantic(contended_phase, setup=build,
                       rounds=3, iterations=1)
    flat = [s for samples in lag_samples for s in samples]
    assert flat, "the tailer never sampled"
    # bounded staleness: never more than a few checkpoint-size records
    # behind, typically tightly caught up
    assert max(flat) < 512 * 1024
    assert sorted(flat)[len(flat) // 2] < 64 * 1024
