"""A7 — full axiom sweeps: batch engine vs. the per-constraint path.

The paper's actual workload is the *audit*: ``check_all`` over a whole
database state probes every ISA pair (Containment Condition), every
compound type (Extension Axiom), and every integrity constraint in one
go.  This bench scales a generated extension to 100/500/1000 rows per
relation and times the batch route — shared-interned
``DatabaseExtension.kernel``, ``CheckSet``-grouped dependencies,
join-membership factorised through the contributors — against
``check_all_naive``, which runs the same audit one constraint at a time
through the object-level operators.  A second pair times the
output-sensitive FD witness producer against the retained all-pairs
scan.

Kernel benches measure the steady state (the extension kernel and its
partition indexes are memoised on the state, which is exactly the
repeated-audit workload); the first call additionally pays one interning
pass per relation.

Run with ``--bench-json`` to record the timings in ``BENCH_kernel.json``
(the perf trajectory ``benchmarks/compare_bench.py`` diffs against).
"""

import pytest

from repro.core import check_all, check_all_naive
from repro.relational import FD, Relation
from repro.relational.fd import violating_pairs, violating_pairs_naive
from repro.workloads import serving_state

SIZES = [100, 500, 1000]
WITNESS_SIZES = [200, 1000]


def sweep_state(n: int):
    """A consistent five-type state with ~n rows per relation.

    The fixture now lives in :func:`repro.workloads.serving_state` (the
    store benches, CLI ``serve``, and the concurrency stress tests drive
    the same shape); this alias keeps the bench-local name the a8 bench
    imports.
    """
    return serving_state(n)


_STATES: dict[int, tuple] = {}


def state(n: int):
    if n not in _STATES:
        _STATES[n] = sweep_state(n)
    return _STATES[n]


@pytest.mark.parametrize("rows", SIZES)
def test_a7_check_all_batch(benchmark, rows):
    schema, db, constraints = state(rows)
    report = benchmark(check_all, schema, db, constraints=constraints)
    assert report.ok()


@pytest.mark.parametrize("rows", SIZES)
def test_a7_check_all_per_constraint(benchmark, rows):
    schema, db, constraints = state(rows)
    report = benchmark(check_all_naive, schema, db, constraints=constraints)
    assert report.ok()


def witness_relation(n: int) -> Relation:
    """``b -> e`` is violated in most b-groups, but with only ~2 distinct
    e-values per group the violation count stays output-bounded."""
    rows = [
        {"a": i, "b": i % (max(1, n // 8)), "e": (i % 2) * (i % 3 == 0)}
        for i in range(n)
    ]
    return Relation(("a", "b", "e"), rows)


@pytest.mark.parametrize("rows", WITNESS_SIZES)
def test_a7_witness_pairs_kernel(benchmark, rows):
    rel = witness_relation(rows)
    fd = FD({"b"}, {"e"})
    pairs = benchmark(violating_pairs, fd, rel)
    assert pairs


@pytest.mark.parametrize("rows", WITNESS_SIZES)
def test_a7_witness_pairs_naive(benchmark, rows):
    rel = witness_relation(rows)
    fd = FD({"b"}, {"e"})
    pairs = benchmark(violating_pairs_naive, fd, rel)
    assert pairs


def test_a7_agreement_at_scale(benchmark):
    """One differential audit at the largest size, timed end to end."""
    schema, db, constraints = state(SIZES[-1])

    def agree():
        routed = check_all(schema, db, constraints=constraints)
        naive = check_all_naive(schema, db, constraints=constraints)
        return routed.findings == naive.findings

    assert benchmark(agree)
