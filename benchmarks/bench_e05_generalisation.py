"""E5 — section 3.2: G_e sets, duality corollary, non-complement example.

Checks the exact G sets, the corollary ``y in S_x iff x in G_y`` on the
employee schema and on random schemas up to 200 types, and the paper's
S_person/G_person counterexample.  The benchmark times the duality sweep
at the largest size.
"""

import random

from conftest import show

from repro.core import GeneralisationStructure, SpecialisationStructure
from repro.core.employee import PAPER_G_SETS
from repro.viz import generalisation_table
from repro.workloads import random_schema


def test_e05_G_sets(benchmark, schema):
    def analyse():
        gen = GeneralisationStructure(schema)
        return {e.name: gen.G(e) for e in schema}

    sets = benchmark(analyse)
    for name, expected in PAPER_G_SETS.items():
        assert {e.name for e in sets[name]} == set(expected)
    show("E5: G_e table", generalisation_table(schema))


def test_e05_duality_at_scale(benchmark):
    big = random_schema(random.Random(5), n_attrs=16, n_types=200, shape="tree")

    def duality_sweep():
        spec = SpecialisationStructure(big)
        gen = GeneralisationStructure(big)
        return all(
            (y in spec.S(x)) == (x in gen.G(y))
            for x in big
            for y in big
        )

    assert benchmark(duality_sweep)
    show("E5: duality corollary", f"verified over {len(big)}^2 type pairs")


def test_e05_not_complements(benchmark, schema):
    def witness():
        return GeneralisationStructure(schema).not_complement_witness(
            schema["person"]
        )

    result = benchmark(witness)
    assert not result["union_is_E"]
    assert result["intersection_is_singleton"]
    body = (
        f"S_person | G_person = {sorted(e.name for e in result['union'])} != E\n"
        f"S_person & G_person = {sorted(e.name for e in result['intersection'])}"
    )
    show("E5: S and G are not complements (person)", body)
