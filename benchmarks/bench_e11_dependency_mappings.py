"""E11 — section 5.3: nucleus, F_e, DF_e, and the mapping corollary.

Checks that every context's semantic dependency set is a DF member, that
the pair-set inclusions mirror propagation, and the section's corollary;
timed on the employee state and on random consistent states.
"""

import random

from conftest import show

from repro.core import DependencyMappings, fd_pairs, in_DF, nucleus
from repro.workloads import random_extension, random_schema


def test_e11_fd_sets_in_DF(benchmark, db, schema):
    def analyse():
        return {e.name: fd_pairs(db, e) for e in schema}

    pairs = benchmark(analyse)
    for e in schema:
        assert in_DF(schema, e, pairs[e.name])
    body = "\n".join(
        f"fd_{name}: {len(p)} pairs (nucleus "
        f"{len(nucleus(schema, schema[name]))})"
        for name, p in sorted(pairs.items())
    )
    show("E11: dependency sets per context, all members of DF_e", body)


def test_e11_mapping_corollary(benchmark, db, schema):
    def verify():
        dm = DependencyMappings(db, schema["person"])
        return dm.corollary_holds(schema["employee"], schema["manager"])

    assert benchmark(verify)
    show("E11: corollary on the person/employee/manager chain", "holds")


def test_e11_propagation_inclusions_random(benchmark):
    rng = random.Random(41)
    cases = []
    for seed in range(5):
        local = random.Random(seed)
        s = random_schema(local, n_attrs=6, n_types=6, shape="chain")
        cases.append(random_extension(local, s, rows_per_leaf=3))

    def verify_all():
        from repro.core import SpecialisationStructure

        checked = 0
        for state in cases:
            spec = SpecialisationStructure(state.schema)
            for e in state.schema:
                dm = DependencyMappings(state, e)
                for f in spec.S(e):
                    for g in spec.S(f):
                        assert dm.F(f) <= dm.F(g)
                        checked += 1
        return checked

    checked = benchmark(verify_all)
    show("E11: F_e(f) subseteq F_e(g) inclusions", f"{checked} chain pairs verified")
