"""E13 — section 4's closing remark, carried out.

"[The extension mappings] allow us to define the extension as a
topological space, but, once again, this is beyond the scope of this
paper" / "the extension of a database can be seen as a topological space
built out of entities rather than entity types" (section 1).

The bench builds the instance space for the employee state, times the
construction, and pins the structural verdicts: the type projection is
continuous and S-compatible; openness fails exactly because dee has no
employee instance.
"""

import random

from conftest import show

from repro.core import intension_extension_report
from repro.core.extension_space import extension_space, type_projection
from repro.workloads import random_extension, random_schema


def test_e13_employee_instance_space(benchmark, db):
    report = benchmark(intension_extension_report, db)
    assert report["continuous"]
    assert report["s_compatible"]
    assert not report["open_map"]  # dee: person without employee instance
    body = (
        f"points (instances): {report['points']}\n"
        f"open sets:          {report['opens']}\n"
        f"type projection:    continuous={report['continuous']}, "
        f"open={report['open_map']}, S-compatible={report['s_compatible']}\n"
        f"fibers (= R_e):     {report['fiber_sizes']}"
    )
    show("E13: the extension as a topological space of entities", body)


def test_e13_projection_continuity_at_scale(benchmark):
    """Large states: the order-level check replaces open-set
    materialisation (which is exponential in the antichain width)."""
    from repro.core.extension_space import instance_points, projection_is_monotone

    rng = random.Random(47)
    schema = random_schema(rng, n_attrs=8, n_types=7, shape="tree")
    db = random_extension(rng, schema, rows_per_leaf=20)

    assert benchmark(projection_is_monotone, db)
    show("E13: instance order at scale",
         f"{len(instance_points(db))} instances, projection monotone "
         "(== continuous, by the Alexandrov correspondence)")


def test_e13_small_space_matches_order_check(benchmark, db):
    """Cross-validation: on example-sized states the materialised space's
    continuity verdict equals the order-level one."""
    from repro.core.extension_space import projection_is_monotone

    def both():
        return type_projection(db).is_continuous(), projection_is_monotone(db)

    continuous, monotone = benchmark(both)
    assert continuous and monotone
    space = extension_space(db)
    show("E13: small-state cross-check",
         f"{len(space.points)} instances, {len(space.opens)} opens; "
         "topological and order-level verdicts agree")
