"""A6 — contribution of each Armstrong rule to the derivable set.

Disables one rule at a time and measures the closure that remains.  Pins
the structural facts: A2-decomposition is redundant (derivable from
A1 + A3 + propagation), while A1, A3, propagation, and A2-union each
contribute dependencies on the employee schema's constraint set.
"""

import pytest

from conftest import show

from repro.core import ALL_RULES, ArmstrongEngine
from repro.core.employee import employee_constraints, employee_schema


def closure_size(schema, premises, rules):
    return len(ArmstrongEngine(schema, premises, rules=rules).closure())


@pytest.fixture(scope="module")
def setup():
    schema = employee_schema()
    premises = employee_constraints(schema).functional_dependencies()
    return schema, premises


@pytest.mark.parametrize("dropped", sorted(ALL_RULES))
def test_a6_drop_one_rule(benchmark, setup, dropped):
    schema, premises = setup
    rules = ALL_RULES - {dropped}
    size = benchmark(closure_size, schema, premises, rules)
    full = closure_size(schema, premises, ALL_RULES)
    if dropped == "A2-decomposition":
        assert size == full  # redundant rule
    else:
        assert size < full  # every other rule earns its keep here


def test_a6_summary_table(benchmark, setup):
    schema, premises = setup

    def build_table():
        full = closure_size(schema, premises, ALL_RULES)
        rows = [("all rules", full, 0)]
        for dropped in sorted(ALL_RULES):
            size = closure_size(schema, premises, ALL_RULES - {dropped})
            rows.append((f"without {dropped}", size, full - size))
        return rows

    rows = benchmark(build_table)
    body = f"{'configuration':28s} {'closure':>8s} {'lost':>6s}\n" + "\n".join(
        f"{name:28s} {size:8d} {lost:6d}" for name, size, lost in rows
    )
    show("A6: per-rule contribution to the closure", body)
