"""E10 — section 5.2: soundness and completeness of the Armstrong system.

The paper's main theorem.  The bench sweeps random schemas and premise
sets, comparing syntactic derivability against exact semantic implication:

* soundness holds unconditionally (zero violations, asserted);
* completeness holds on intersection-closed schemas (agreement rate 1.0,
  asserted) — and the sweep reports the gap frequency on open schemas,
  the reproduction's headline finding.
"""

import random

from conftest import show

from repro.core import (
    agreement_report,
    completeness_gap_example,
    is_intersection_closed,
    semantically_implies,
    ArmstrongEngine,
)
from repro.workloads import intersection_close, random_premises, random_schema


def sweep(n_schemas: int, close: bool):
    rows = []
    for seed in range(n_schemas):
        rng = random.Random(seed)
        schema = random_schema(rng, n_attrs=6, n_types=5,
                               shape=rng.choice(["chain", "tree", "diamond", "random"]))
        if close:
            schema = intersection_close(schema)
        premises = random_premises(rng, schema, count=2)
        report = agreement_report(schema, premises)
        rows.append({
            "seed": seed,
            "closed": is_intersection_closed(schema),
            "rate": report["agreement_rate"],
            "unsound": len(report["sound_violations"]),
            "gap": len(report["completeness_gap"]),
        })
    return rows


def test_e10_soundness_sweep(benchmark):
    rows = benchmark(sweep, 12, False)
    assert all(r["unsound"] == 0 for r in rows)
    body = "\n".join(
        f"seed {r['seed']:2d}  closed={str(r['closed']):5s}  "
        f"agreement={r['rate']:.3f}  gap={r['gap']}"
        for r in rows
    )
    show("E10: soundness sweep (zero unsound derivations)", body)


def test_e10_completeness_on_closed_schemas(benchmark):
    rows = benchmark(sweep, 10, True)
    assert all(r["rate"] == 1.0 for r in rows)
    show("E10: completeness on intersection-closed schemas",
         f"{len(rows)} schemas, agreement rate 1.0 on every one")


def test_e10_gap_counterexample(benchmark):
    def build_and_check():
        schema, premises, candidate = completeness_gap_example()
        engine = ArmstrongEngine(schema, premises)
        return (
            semantically_implies(schema, premises, candidate),
            engine.derivable(candidate),
        )

    valid, derivable = benchmark(build_and_check)
    assert valid and not derivable
    show(
        "E10: the minimal completeness gap",
        "schema a={p}, x={q,s}, y={r,t}, co={q,r}, h={p,q,r,s,t}\n"
        "premises fd(a,x,h), fd(a,y,h)\n"
        "fd(a,co,h): semantically valid, NOT derivable\n"
        "intersection-closing the schema (add {q}, {r}) restores derivability",
    )
