"""E4 — section 3.1: the chosen subbase R_T and the constructed type.

The paper reports R_T = {person, department, employee, manager} with
worksfor the only constructed element; this bench re-derives that result
by exhaustive minimal-subbase search and times the search.
"""

from conftest import show

from repro.core import SubbaseChoice, minimal_subbase_choices, redundant_types
from repro.core.employee import PAPER_CONSTRUCTED, PAPER_SUBBASE


def test_e04_minimal_subbase_search(benchmark, schema):
    choices = benchmark(minimal_subbase_choices, schema)
    assert len(choices) == 1
    assert {e.name for e in choices[0]} == set(PAPER_SUBBASE)
    body = "minimal R_T candidates:\n" + "\n".join(
        "  {" + ", ".join(sorted(e.name for e in c)) + "}" for c in choices
    )
    show("E4: the paper's R_T is the unique minimal subbase", body)


def test_e04_constructed_types(benchmark, schema):
    def constructed():
        return SubbaseChoice(schema, PAPER_SUBBASE).constructed_types()

    result = benchmark(constructed)
    assert {e.name for e in result} == set(PAPER_CONSTRUCTED)
    choice = SubbaseChoice(schema, PAPER_SUBBASE)
    expr = choice.expression_for(schema["worksfor"])
    body = (
        f"constructed: {sorted(e.name for e in result)}\n"
        f"S_worksfor = intersection of S_e over {sorted(e.name for e in expr)}\n"
        f"redundant anywhere: {sorted(e.name for e in redundant_types(schema))}"
    )
    show("E4: worksfor is the only constructed element", body)
