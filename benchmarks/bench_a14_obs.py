"""A14 — observability: what the instruments cost on the commit path.

PR 10 wires a metrics registry, phase timing, and tracing into every
commit; this bench holds that wiring to its budget:

* ``commit_stream_bare`` — a WAL-backed 40-commit stream on a detached
  engine: the baseline the instrumented stream is compared against.
* ``commit_stream_instrumented`` — the same stream with a registry, a
  tracer, and the slow-commit gate all attached: per-commit cost of
  six clock captures, five histogram observations, the WAL probe, and
  one trace record.
* ``metrics_snapshot`` — rendering a populated registry to its
  JSON-codable snapshot, the body of every ``metrics`` wire response.
* ``overhead_gate`` (not a timing record) — interleaved best-of-rounds
  measurement of both streams asserting the instrumented path stays
  within 3% of the bare one, the acceptance bound of the PR.

Run with ``--bench-json`` to record timings in ``BENCH_kernel.json``
(the a14 names are part of the guarded kernel set in
``benchmarks/compare_bench.py``).
"""

from time import perf_counter

from repro.obs import MetricsRegistry, Tracer
from repro.store import SessionService, StoreEngine
from repro.workloads import manager_stream, serving_state

ROWS = 200
STREAM_COMMITS = 40
GATE_ROUNDS = 9
OVERHEAD_BOUND = 1.03

_STATES: dict[int, tuple] = {}


def state(n: int):
    if n not in _STATES:
        _STATES[n] = serving_state(n)
    return _STATES[n]


def _fresh_engine(tmp_path, tag, instrumented):
    schema, db, constraints = state(ROWS)
    engine = StoreEngine(db, constraints,
                         wal=str(tmp_path / f"{tag}.jsonl"))
    if instrumented:
        engine.attach_observability(MetricsRegistry(), Tracer(),
                                    slow_commit_threshold=0.1)
    return engine


def _run_stream(engine, rows):
    session = SessionService(engine).session()
    for row in rows:
        session.run([("insert", "manager", row)])
    return engine


def test_a14_commit_stream_bare(benchmark, tmp_path):
    """The detached baseline: 40 WAL-backed commits, zero-clock
    timestamps, no instruments."""
    rows = manager_stream(ROWS, STREAM_COMMITS)
    built = []

    def fresh():
        engine = _fresh_engine(tmp_path, f"bare{len(built)}",
                               instrumented=False)
        built.append(engine)
        return (engine, rows), {}

    benchmark.pedantic(_run_stream, setup=fresh, rounds=5, iterations=1)
    assert built[-1].graph.seq == STREAM_COMMITS
    for engine in built:
        engine.close()


def test_a14_commit_stream_instrumented(benchmark, tmp_path):
    """The same stream with registry + tracer + slow-commit gate
    attached — the per-commit price of full observability."""
    rows = manager_stream(ROWS, STREAM_COMMITS)
    built = []

    def fresh():
        engine = _fresh_engine(tmp_path, f"inst{len(built)}",
                               instrumented=True)
        built.append(engine)
        return (engine, rows), {}

    benchmark.pedantic(_run_stream, setup=fresh, rounds=5, iterations=1)
    engine = built[-1]
    snap = engine.metrics.snapshot()
    assert snap["counters"]["store.commits"] == STREAM_COMMITS
    assert snap["histograms"][
        "store.commit.total_seconds"]["count"] == STREAM_COMMITS
    assert len(engine.tracer) == STREAM_COMMITS
    for engine in built:
        engine.close()


def test_a14_metrics_snapshot(benchmark):
    """Rendering a populated registry — the CPU half of every
    ``metrics`` wire response."""
    registry = MetricsRegistry()
    for i in range(40):
        registry.counter(f"c.{i}").inc(i)
    for i in range(8):
        gauge = registry.gauge(f"g.{i}")
        gauge.set(float(i))
        hist = registry.histogram(f"h.{i}")
        for j in range(200):
            hist.observe((j % 13) * 1e-4)

    snap = benchmark(registry.snapshot)
    assert len(snap["counters"]) == 40
    assert snap["histograms"]["h.0"]["count"] == 200


def test_a14_overhead_gate(tmp_path):
    """The acceptance bound: instrumented commits within 3% of bare.

    Bare and instrumented streams run interleaved (so drift hits both
    alike) and compare on best-of-rounds — the least-noisy statistic —
    with a tiny absolute epsilon so sub-millisecond jitter cannot fail
    a stream that is actually at parity."""
    rows = manager_stream(ROWS, STREAM_COMMITS)
    timings = {False: [], True: []}
    for round_no in range(GATE_ROUNDS):
        for instrumented in (False, True):
            engine = _fresh_engine(
                tmp_path, f"gate-{round_no}-{int(instrumented)}",
                instrumented)
            start = perf_counter()
            _run_stream(engine, rows)
            timings[instrumented].append(perf_counter() - start)
            engine.close()
    bare, instrumented = min(timings[False]), min(timings[True])
    assert instrumented <= bare * OVERHEAD_BOUND + 1e-3, (
        f"observability overhead {instrumented / bare - 1.0:+.1%} "
        f"exceeds {OVERHEAD_BOUND - 1.0:.0%} "
        f"(bare={bare:.4f}s instrumented={instrumented:.4f}s)")
