"""Shared fixtures for the experiment benches (see DESIGN.md section 4)."""

from __future__ import annotations

import json
import platform

import pytest

from repro.core.employee import employee_extension, employee_schema


def _json_path(value: str) -> str:
    # Guards against argparse swallowing a following test-path argument
    # (`--bench-json benchmarks/bench_x.py`) and the session-finish hook
    # then overwriting that file with the JSON dump.
    if not value.endswith(".json"):
        raise pytest.UsageError(
            f"--bench-json expects a .json path, got {value!r}"
        )
    return value


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        nargs="?",
        const="BENCH_kernel.json",
        default=None,
        type=_json_path,
        metavar="PATH",
        help="dump per-benchmark timing stats to PATH (default "
             "BENCH_kernel.json) so later PRs have a perf trajectory to "
             "compare against; diff dumps with benchmarks/compare_bench.py",
    )


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json")
    if not path:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    records = []
    for bench in bench_session.benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        records.append({
            "name": bench.name,
            "fullname": bench.fullname,
            "group": bench.group,
            "params": bench.params,
            "mean_s": stats.mean,
            "median_s": stats.median,
            "min_s": stats.min,
            "max_s": stats.max,
            "stddev_s": stats.stddev,
            "rounds": stats.rounds,
            "iterations": bench.iterations,
        })
    payload = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": sorted(records, key=lambda r: r["fullname"]),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    terminal = session.config.pluginmanager.get_plugin("terminalreporter")
    if terminal is not None:
        terminal.write_line(f"bench timings written to {path}")


@pytest.fixture(scope="module")
def schema():
    return employee_schema()


@pytest.fixture(scope="module")
def db(schema):
    return employee_extension(schema)


def show(title: str, body: str) -> None:
    """Print a regenerated paper artifact under a banner (use pytest -s)."""
    bar = "=" * max(len(title), 8)
    print(f"\n{bar}\n{title}\n{bar}\n{body}")
