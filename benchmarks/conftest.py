"""Shared fixtures for the experiment benches (see DESIGN.md section 4)."""

from __future__ import annotations

import pytest

from repro.core.employee import employee_extension, employee_schema


@pytest.fixture(scope="module")
def schema():
    return employee_schema()


@pytest.fixture(scope="module")
def db(schema):
    return employee_extension(schema)


def show(title: str, body: str) -> None:
    """Print a regenerated paper artifact under a banner (use pytest -s)."""
    bar = "=" * max(len(title), 8)
    print(f"\n{bar}\n{title}\n{bar}\n{body}")
