"""E12 — sections 1/6: view-update ambiguity, axiom model vs Universal
Relation.

The paper's motivating claim: restricting views to sets of entity types
gives every update a unique translation, while the UR's windows admit
several.  The bench counts translations for the same logical updates under
both models — the axiom model must report exactly 1, the UR strictly more.
"""

from conftest import show

from repro.core import EntityViewType, ViewUpdate, translation_count
from repro.relational import Tuple
from repro.universal import (
    UniversalRelation,
    deletion_translations,
    insertion_translations,
)

UPDATES = [
    ("insert person (name, age)", "person", {"name": "eva", "age": 47}),
    ("insert employee row", "employee",
     {"name": "eva", "age": 47, "depname": "sales"}),
    ("insert department row", "department",
     {"depname": "admin", "location": "delft"}),
]


def compare(db, schema):
    ur = UniversalRelation.from_extension(db)
    rows = []
    for label, member, payload in UPDATES:
        view = EntityViewType(f"view_{member}", {schema[member]})
        update = ViewUpdate(view, "insert", schema[member], Tuple(payload))
        axiom = translation_count(update, db)
        window_attrs = frozenset(payload)
        ur_count = len(insertion_translations(ur, payload))
        rows.append((label, axiom, ur_count, len(window_attrs)))
    return rows


def test_e12_insertion_ambiguity(benchmark, db, schema):
    rows = benchmark(compare, db, schema)
    for label, axiom, ur_count, _ in rows:
        assert axiom == 1, label
        assert ur_count >= 1
    assert any(ur_count > 1 for _, _, ur_count, _ in rows)
    header = f"{'update':35s} {'axiom model':>12s} {'UR windows':>11s}"
    body = header + "\n" + "\n".join(
        f"{label:35s} {axiom:12d} {ur:11d}" for label, axiom, ur, _ in rows
    )
    show("E12: translations per view update (1 vs many)", body)


def test_e12_deletion_ambiguity(benchmark, db):
    ur = UniversalRelation.from_extension(db)

    def count():
        return len(deletion_translations(ur, {"name": "ann", "age": 31}))

    ur_deletes = benchmark(count)
    assert ur_deletes > 1  # ann appears in person/employee/manager/worksfor
    show("E12: deleting (ann, 31) from the UR window",
         f"{ur_deletes} candidate base deletions vs 1 under the View Axiom")
