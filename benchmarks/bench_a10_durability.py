"""A10 — durability economics: checkpointed recovery and version GC.

PR 6's operational claims, timed:

* **Recovery** — replay of a 520-commit insert/delete churn WAL from
  v0 versus from the newest checkpoint (``checkpoint_every=100``, so
  the checkpointed replay re-applies only the ~20 commits after the
  floor).  The acceptance gate (checkpoint replay >= 5x faster at 500+
  commits) is asserted in ``tests/test_store_durability.py``'s slow
  lane; here the two paths are recorded side by side so the trajectory
  file keeps the ratio visible.
* **Checkpoint cost** — what one ``StoreEngine.checkpoint()`` call
  spends serialising every branch head into the log (the price paid
  every ``checkpoint_every`` commits to keep recovery O(recent)).
* **GC residency** — an 8-writer disjoint commit stream followed by
  ``gc(keep=8)``; the bound the store promises (resident versions
  <= keep * branches + pins) is asserted on every round.

Run with ``--bench-json`` to record the timings in
``BENCH_kernel.json`` (the a10 names are part of the guarded kernel
set in ``benchmarks/compare_bench.py``).
"""

import pytest

from bench_a9_store_throughput import _commit_batch
from repro.store import SessionService, StoreEngine, WriteAheadLog
from repro.workloads import (
    disjoint_commit_specs,
    manager_stream,
    serving_state,
)

WRITERS = 8
CHURN_COMMITS = 520
CHECKPOINT_EVERY = 100

_STATES: dict[int, tuple] = {}


def state(n: int):
    if n not in _STATES:
        _STATES[n] = serving_state(n)
    return _STATES[n]


@pytest.fixture(scope="module")
def churn_wal(tmp_path_factory):
    """A segmented, checkpointed WAL of 520 insert/delete churn commits
    (built once; both replay benchmarks read it)."""
    schema, db, constraints = state(60)
    path = tmp_path_factory.mktemp("a10") / "churn"
    engine = StoreEngine(
        db, constraints,
        wal=WriteAheadLog(path, segment_records=1000),
        checkpoint_every=CHECKPOINT_EVERY)
    rows = manager_stream(60, 40)
    session = SessionService(engine).session()
    for i in range(CHURN_COMMITS // 2):
        row = rows[i % len(rows)]
        session.commit(session.begin().insert("manager", row))
        session.commit(session.begin().delete("manager", row, False))
    engine.close()
    return path


def test_a10_replay_from_v0(benchmark, churn_wal):
    """Full-history replay: the un-checkpointed recovery baseline."""
    replayed = benchmark(StoreEngine.replay, churn_wal,
                         from_checkpoint=False)
    assert replayed.graph.seq == CHURN_COMMITS
    assert len(replayed.graph) == CHURN_COMMITS + 1


def test_a10_replay_from_checkpoint(benchmark, churn_wal):
    """Checkpointed recovery: only the commits after the floor replay."""
    replayed = benchmark(StoreEngine.replay, churn_wal)
    assert replayed.graph.seq == CHURN_COMMITS
    assert len(replayed.graph) <= CHECKPOINT_EVERY + 1
    full = StoreEngine.replay(churn_wal, from_checkpoint=False)
    assert replayed.state() == full.state()


def test_a10_checkpoint_cost(benchmark, tmp_path):
    """One checkpoint record: every branch head serialised to the log."""
    schema, db, constraints = state(1000)
    engine = StoreEngine(db, constraints, wal=tmp_path / "a10.wal")
    _commit_batch(engine, disjoint_commit_specs(
        manager_stream(1000, 120), WRITERS))

    record = benchmark(engine.checkpoint)
    assert record["seq"] == 120
    assert set(record["branches"]) == {"main"}
    engine.close()


def test_a10_gc_residency(benchmark, tmp_path):
    """GC after an 8-writer stream; the residency bound holds each round."""
    schema, db, constraints = state(400)
    specs = disjoint_commit_specs(manager_stream(400, 240), WRITERS)

    def fresh():
        return (_commit_batch(StoreEngine(db, constraints), specs),), {}

    def collect(engine):
        stats = engine.gc(keep=WRITERS)
        assert stats["after"] <= WRITERS * len(engine.graph.heads) \
            + len(stats["pinned"])
        return engine

    engine = benchmark.pedantic(collect, setup=fresh, rounds=5,
                                iterations=1)
    assert len(engine.graph) <= WRITERS
    assert engine.head_version().vid == "v240"
    assert engine.audit().ok()
