"""E2 — the section-2 disk-cut figure.

Each attribute is a disk; each entity type is a cut across the disks of
its attributes; a cut instance carries the values.  The bench regenerates
both the type-level matrix and the instance cuts for one entity type.
"""

from conftest import show

from repro.viz import disk_matrix, instance_cut


def test_e02_disk_matrix(benchmark, schema):
    text = benchmark(disk_matrix, schema)
    manager_row = next(l for l in text.splitlines() if l.startswith("manager"))
    assert manager_row.count("●") == 4  # name, age, depname, budget
    person_row = next(l for l in text.splitlines() if l.startswith("person"))
    assert person_row.count("●") == 2
    show("E2: disk-cut figure (types over attribute disks)", text)


def test_e02_instance_cuts(benchmark, db):
    text = benchmark(instance_cut, db, "worksfor")
    assert "ann" in text and "amsterdam" in text
    show("E2: cuts through worksfor (instances)", text)
