"""Diff two ``--bench-json`` dumps and fail on kernel-path regressions.

The benches can record their timings with ``--bench-json [PATH]``
(default ``BENCH_kernel.json``); the committed dump is the perf
trajectory later PRs compare against.  This script diffs a fresh dump
against a baseline and exits non-zero when any *kernel* benchmark — the
ones exercising the bitset/instance kernels — regressed by more than the
threshold factor.

Usage::

    python -m pytest benchmarks --bench-json fresh.json
    python benchmarks/compare_bench.py fresh.json [BENCH_kernel.json]
        [--threshold 2.0] [--all]

Comparison is on ``min_s`` (the least-noisy statistic across rounds);
``--all`` widens the check to every shared benchmark instead of the
kernel set.  A baseline benchmark missing from the fresh dump also fails
the gate — a silently retired or renamed bench must update the baseline
explicitly, not slip past because only shared names are compared.  The
slow-lane test ``tests/test_bench_regression.py`` runs this diff against
the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import sys

# Bench modules whose timings ride on the repro.kernel fast paths:
# topology generation (a2), attribute closure (a3), the chase (a4), the
# interned instance checks (a6-instance), the batched axiom sweeps over
# the shared-interned extension (a7), the incremental update stream /
# subbase-edit maintenance (a8), the store's audited-commit
# throughput + WAL replay (a9), and the serving stack riding on them
# (a10-a13) plus the instrumented commit path (a14).
KERNEL_BENCH_PREFIXES = (
    "benchmarks/bench_a2_topology_generation.py::",
    "benchmarks/bench_a3_closure_vs_relational.py::",
    "benchmarks/bench_a4_chase.py::",
    "benchmarks/bench_a6_instance_checks.py::",
    "benchmarks/bench_a7_axiom_sweep.py::",
    "benchmarks/bench_a8_update_stream.py::",
    "benchmarks/bench_a9_store_throughput.py::",
    "benchmarks/bench_a10_durability.py::",
    "benchmarks/bench_a11_server.py::",
    "benchmarks/bench_a12_failover.py::",
    "benchmarks/bench_a13_cluster.py::",
    "benchmarks/bench_a14_obs.py::",
)


def load(path: str) -> dict[str, dict]:
    """The dump's records, keyed by benchmark fullname."""
    with open(path) as fh:
        payload = json.load(fh)
    return {record["fullname"]: record for record in payload["benchmarks"]}


def is_kernel_bench(fullname: str) -> bool:
    return fullname.startswith(KERNEL_BENCH_PREFIXES)


def diff(baseline: dict[str, dict], fresh: dict[str, dict],
         threshold: float = 2.0, kernel_only: bool = True,
         stat: str = "min_s") -> list[dict]:
    """Regressions of ``fresh`` against ``baseline`` beyond ``threshold``.

    Only benchmarks present in both dumps are compared (new benches have
    no baseline yet; retired ones no longer matter).  Returns one record
    per regression, worst first.
    """
    out = []
    for name, base in baseline.items():
        new = fresh.get(name)
        if new is None or (kernel_only and not is_kernel_bench(name)):
            continue
        old_t, new_t = base[stat], new[stat]
        if old_t <= 0.0:
            continue
        ratio = new_t / old_t
        if ratio > threshold:
            out.append({
                "fullname": name, "baseline_s": old_t,
                "fresh_s": new_t, "ratio": ratio,
            })
    return sorted(out, key=lambda r: -r["ratio"])


def missing_baselines(baseline: dict[str, dict], fresh: dict[str, dict],
                      kernel_only: bool = True) -> list[str]:
    """Baseline benchmarks absent from the fresh dump.

    A retired or renamed bench silently shrinks the trajectory the
    regression gate watches, so its disappearance must fail the gate
    until the baseline is regenerated deliberately.
    """
    return sorted(
        name for name in baseline
        if name not in fresh and (not kernel_only or is_kernel_bench(name))
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly dumped --bench-json file")
    parser.add_argument("baseline", nargs="?", default="BENCH_kernel.json",
                        help="baseline dump (default: the committed "
                             "BENCH_kernel.json)")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="failure factor (default 2.0)")
    parser.add_argument("--all", action="store_true",
                        help="compare every shared benchmark, not only the "
                             "kernel set")
    args = parser.parse_args(argv)
    baseline, fresh = load(args.baseline), load(args.fresh)
    regressions = diff(baseline, fresh, threshold=args.threshold,
                       kernel_only=not args.all)
    gone = missing_baselines(baseline, fresh, kernel_only=not args.all)
    shared = [n for n in baseline if n in fresh
              and (args.all or is_kernel_bench(n))]
    print(f"compared {len(shared)} benchmarks "
          f"({'all' if args.all else 'kernel'}), "
          f"threshold {args.threshold:.2f}x")
    for r in regressions:
        print(f"  REGRESSED {r['ratio']:5.2f}x  {r['fullname']}  "
              f"{r['baseline_s'] * 1e6:.1f}us -> {r['fresh_s'] * 1e6:.1f}us")
    for name in gone:
        print(f"  MISSING  {name}  (in baseline, absent from fresh dump)")
    if not regressions and not gone:
        print("  no regressions")
    return 1 if regressions or gone else 0


if __name__ == "__main__":
    sys.exit(main())
