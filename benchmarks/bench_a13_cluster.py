"""A13 — cluster: the self-healing cycle, fan-out reads, detector cost.

PR 9 made failover autonomous; this bench measures what the autonomy
costs:

* ``heal_cycle`` — the full detect-elect-promote loop on the injected
  clock: three coordinators tail a killed primary's WAL, walk the
  suspicion ladder to ``dead``, run the deterministic election, and
  the winner promotes (pedantic mode — building the primary's history
  and catching the replicas up is setup, untimed).  ``min_s`` is the
  computational floor of a failover event beyond the detection ticks
  themselves, directly comparable to ``promotion`` (bench_a12) which
  it contains.
* ``balancer_reads`` — :class:`ReadBalancer` fan-out over two live
  replica servers: the rotation, budget bookkeeping and wire round
  trips per read, comparable to ``wire_reads`` (bench_a11).
* ``monitor_ticks`` — 200 ticks of a healthy three-peer
  :class:`HealthMonitor` over local engine probes: the steady-state
  supervision overhead when nothing is wrong.

Run with ``--bench-json`` to record timings in ``BENCH_kernel.json``
(the a13 names are part of the guarded kernel set in
``benchmarks/compare_bench.py``).
"""

from repro.server import (
    Coordinator,
    HealthMonitor,
    ReadBalancer,
    ReplicaEngine,
    StoreServer,
    engine_probe,
)
from repro.store import SessionService, StoreEngine
from repro.workloads import manager_stream, serving_state

ROWS = 200
HISTORY_COMMITS = 40
BALANCED_READS = 50
MONITOR_TICKS = 200

_STATES: dict[int, tuple] = {}


def state(n: int):
    if n not in _STATES:
        _STATES[n] = serving_state(n)
    return _STATES[n]


class _Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _dead_probe():
    raise ConnectionRefusedError("primary is gone")


def _build_history(wal):
    schema, db, constraints = state(ROWS)
    engine = StoreEngine(db, constraints, wal=wal)
    session = SessionService(engine).session()
    for row in manager_stream(ROWS, HISTORY_COMMITS):
        session.run([("insert", "manager", row)])
    engine.close()
    return engine


def test_a13_heal_cycle(benchmark, tmp_path):
    """Detect-elect-promote over caught-up replicas of a dead primary:
    the autonomous-failover floor on the injected clock."""
    built = []

    def fresh():
        wal = tmp_path / f"heal{len(built)}.jsonl"
        primary = _build_history(wal)
        clock = _Clock()
        replicas = {rid: ReplicaEngine(wal)
                    for rid in ("r1", "r2", "r3")}
        coords = {}
        for rid, rep in replicas.items():
            rep.catch_up()
            monitor = HealthMonitor(clock=clock, probe_interval=1.0,
                                    suspect_after=2, dead_after=4)
            monitor.add_peer("primary", _dead_probe)
            for other, other_rep in replicas.items():
                if other != rid:
                    monitor.add_peer(other, engine_probe(other_rep))
            coords[rid] = Coordinator(rid, rep, monitor)
        built.append((primary, coords))
        return (coords, clock), {}

    def heal(coords, clock):
        for _ in range(6):
            clock.advance(1.0)
            for coord in coords.values():
                coord.step()
            if any(c.role == "primary" for c in coords.values()):
                return coords
        raise AssertionError("no promotion within the tick budget")

    benchmark.pedantic(heal, setup=fresh, rounds=5, iterations=1)
    primary, coords = built[-1]
    primaries = [c for c in coords.values() if c.role == "primary"]
    assert len(primaries) == 1
    assert primaries[0].engine.epoch == 1
    assert primaries[0].engine.head_version().vid \
        == primary.head_version().vid
    for _, coords in built:
        for coord in coords.values():
            if coord.engine is not None:
                coord.engine.wal.close()


def test_a13_balancer_reads(benchmark, tmp_path):
    """Fan-out reads across two live replicas: rotation plus wire cost
    per served read."""
    wal = tmp_path / "balance.jsonl"
    _build_history(wal)
    replicas = {rid: ReplicaEngine(wal) for rid in ("r1", "r2")}
    servers = {}
    for rid, rep in replicas.items():
        rep.catch_up()
        servers[rid] = StoreServer(rep, sync_interval=0)
        servers[rid].start_background()

    def fan_out():
        with ReadBalancer({rid: s.address
                           for rid, s in servers.items()},
                          seed=0) as balancer:
            for _ in range(BALANCED_READS):
                balancer.read("manager")
            return balancer.reads

    reads = benchmark(fan_out)
    assert sum(reads.values()) == BALANCED_READS
    assert all(count > 0 for count in reads.values())
    for server in servers.values():
        server.stop()


def test_a13_monitor_ticks(benchmark, tmp_path):
    """Steady-state detector overhead: 200 ticks over three healthy
    local probes."""
    wal = tmp_path / "monitor.jsonl"
    _build_history(wal)
    monitor = HealthMonitor(probe_interval=0.0)
    for rid in ("r1", "r2", "r3"):
        rep = ReplicaEngine(wal)
        rep.catch_up()
        monitor.add_peer(rid, engine_probe(rep))

    def ticks():
        for _ in range(MONITOR_TICKS):
            monitor.tick()
        return monitor

    benchmark(ticks)
    assert all(monitor.healthy(rid) for rid in monitor.peer_ids())
