"""E9 — section 5.1: the FD definition and the commuting-triangle theorem.

fd(employee, department, worksfor) holds on the example state, the
lambda mapping exists and commutes; breaking the dependency kills the
mapping.  Timed: lambda construction over growing context relations.
"""

import random

from conftest import show

from repro.core import EntityFD, holds, lambda_mapping, triangle_commutes
from repro.core.employee import employee_fd
from repro.workloads import random_extension, random_schema, random_fd


def test_e09_triangle_on_employee(benchmark, db, schema):
    fd = employee_fd(schema)

    def construct():
        return lambda_mapping(fd, db)

    lam = benchmark(construct)
    assert lam is not None
    assert triangle_commutes(fd, db, lam)
    body = "\n".join(
        f"lambda({dict(k)!r}) = {dict(v)!r}" for k, v in sorted(
            lam.items(), key=repr,
        )
    )
    show("E9: lambda for fd(employee, department, worksfor)", body)


def test_e09_iff_direction(benchmark, db, schema):
    fd = employee_fd(schema)
    broken = db.insert("worksfor", {
        "name": "ann", "age": 31, "depname": "sales", "location": "delft",
    }, propagate=False)

    def both():
        return lambda_mapping(fd, db), lambda_mapping(fd, broken)

    good, bad = benchmark(both)
    assert good is not None and bad is None
    show("E9: theorem's iff", "fd holds -> lambda exists; fd broken -> no lambda")


def test_e09_lambda_at_scale(benchmark):
    rng = random.Random(31)
    schema = random_schema(rng, n_attrs=10, n_types=8, shape="tree")
    db = random_extension(rng, schema, rows_per_leaf=40)
    fd = random_fd(rng, schema)
    assert fd is not None

    def construct():
        return lambda_mapping(fd, db)

    lam = benchmark(construct)
    verdict = holds(fd, db)
    assert (lam is not None) == verdict
    show("E9: lambda at scale",
         f"context size {len(db.R(fd.context))}, fd holds: {verdict}")
