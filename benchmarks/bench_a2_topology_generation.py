"""A2 — subbase-driven topology generation vs. naive powerset filtering.

The subbase route closes {S_e} under intersections then unions; the naive
route enumerates all 2^|E| candidate open-set families' members and keeps
the ones forced by the subbase.  Equality is asserted on small carriers;
the naive route's exponential wall shows in the timings.
"""

import random

import pytest

from conftest import show

from repro.core import SpecialisationStructure
from repro.topology import FiniteSpace, topology_from_subbase
from repro.workloads import random_schema


def naive_topology(points, subbase):
    """Filter the full powerset: a set is open iff it is a union of finite
    intersections of subbase members (checked by brute force)."""
    from repro.topology.generation import intersections_of

    base = intersections_of(subbase, points)
    subsets = [frozenset()]
    for p in sorted(points, key=repr):
        subsets += [s | {p} for s in subsets]
    opens = set()
    for candidate in subsets:
        union = frozenset().union(*(b for b in base if b <= candidate)) \
            if base else frozenset()
        if union == candidate:
            opens.add(candidate)
    return FiniteSpace(points, opens)


def schema_subbase(n_types, seed=7):
    schema = random_schema(random.Random(seed), n_attrs=10,
                           n_types=n_types, shape="tree")
    spec = SpecialisationStructure(schema)
    return schema.entity_types, spec.subbase()


# n_types=18 (903 opens) was out of reach for the naive route; the
# bitset kernel runs it in single-digit milliseconds.
@pytest.mark.parametrize("n_types", [6, 10, 14, 18])
def test_a2_subbase_generation(benchmark, n_types):
    points, subbase = schema_subbase(n_types)
    space = benchmark(topology_from_subbase, points, subbase)
    assert space.is_open_cover(subbase)


@pytest.mark.parametrize("n_types", [6, 10, 14])
def test_a2_naive_generation(benchmark, n_types):
    points, subbase = schema_subbase(n_types)
    space = benchmark(naive_topology, points, subbase)
    assert space.is_open(frozenset())


def test_a2_agreement(benchmark):
    points, subbase = schema_subbase(10)

    def both_agree():
        fast = topology_from_subbase(points, subbase)
        slow = naive_topology(points, subbase)
        return fast.opens == slow.opens

    assert benchmark(both_agree)
    show("A2: generation strategies agree", "10-point carrier, identical opens")
