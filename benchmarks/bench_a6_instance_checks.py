"""A6-instance — kernel-interned instance checks vs. the naive oracles.

Scales the section-6 instance-level predicates (FD ``holds_in``, MVD
swap closure, the instance lossless-join check) into the thousands of
rows and times the kernel route against the retained ``*_naive``
oracles.  Each kernel bench measures the steady state — the interned
instance and its partition indexes are memoised, which is exactly the
workload of dependency sweeps probing one relation many times; the
first call additionally pays one interning pass over the rows.

Run with ``--bench-json`` to record the timings in ``BENCH_kernel.json``
(the perf trajectory ``benchmarks/compare_bench.py`` diffs against).
"""

import random

import pytest

from repro.relational import FD, Relation
from repro.relational.algebra import (
    is_lossless_decomposition,
    is_lossless_decomposition_naive,
)
from repro.relational.fd import holds_in, holds_in_naive
from repro.relational.mvd import MVD
from repro.relational.mvd import holds_in as mvd_holds_in
from repro.relational.mvd import holds_in_naive as mvd_holds_in_naive

ATTRS = ("a", "b", "c", "d", "e", "f")
SIZES = [200, 1000, 2000]


def fd_relation(n_rows: int) -> Relation:
    """``a`` is a row key; ``c``, ``d``, ``f`` are functions of the
    group key ``b`` (groups of ~8); ``e`` is noise."""
    rng = random.Random(7)
    groups = max(1, n_rows // 8)
    rows = []
    for i in range(n_rows):
        b = i % groups
        rows.append({
            "a": i, "b": b, "c": (b * b) % 11, "d": b % 5,
            "e": rng.randint(0, 4), "f": (b + 3) % 7,
        })
    return Relation(ATTRS, rows)


# Three satisfied FDs that force full scans, one violated (b -/-> e).
FDS = [
    FD({"b"}, {"c", "d"}),
    FD({"b", "f"}, {"c"}),
    FD({"a"}, {"b", "c", "d", "e", "f"}),
    FD({"b"}, {"e"}),
]


def mvd_relation(n_rows: int) -> Relation:
    """Product-structured groups so ``a ->> b,c`` holds: within each
    ``a``-group the ``(b, c)`` block and the ``(d, e, f)`` block vary
    independently (4 x 4 combinations per group)."""
    rows = []
    for x in range(max(1, n_rows // 16)):
        for y in range(4):
            for z in range(4):
                rows.append({
                    "a": x, "b": y, "c": y + 10,
                    "d": z, "e": z + 10, "f": x % 3,
                })
    return Relation(ATTRS, rows)


MVDS = [MVD({"a"}, {"b", "c"}, ATTRS), MVD({"a"}, {"d", "e", "f"}, ATTRS)]


def lossless_relation(n_rows: int) -> Relation:
    """``c`` is a row key shared by both parts, so the decomposition
    ``{a,b,c} / {c,d,e,f}`` is lossless and the re-join stays linear."""
    rng = random.Random(11)
    rows = [
        {"a": i % 13, "b": rng.randint(0, 6), "c": i,
         "d": i % 7, "e": rng.randint(0, 6), "f": i % 3}
        for i in range(n_rows)
    ]
    return Relation(ATTRS, rows)


PARTS = [frozenset({"a", "b", "c"}), frozenset({"c", "d", "e", "f"})]


@pytest.mark.parametrize("rows", SIZES)
def test_a6_fd_holds_kernel(benchmark, rows):
    rel = fd_relation(rows)
    verdicts = benchmark(lambda: [holds_in(fd, rel) for fd in FDS])
    assert verdicts == [True, True, True, False]


@pytest.mark.parametrize("rows", SIZES)
def test_a6_fd_holds_naive(benchmark, rows):
    rel = fd_relation(rows)
    verdicts = benchmark(lambda: [holds_in_naive(fd, rel) for fd in FDS])
    assert verdicts == [True, True, True, False]


@pytest.mark.parametrize("rows", SIZES)
def test_a6_mvd_holds_kernel(benchmark, rows):
    rel = mvd_relation(rows)
    verdicts = benchmark(lambda: [mvd_holds_in(m, rel) for m in MVDS])
    assert verdicts == [True, True]


@pytest.mark.parametrize("rows", SIZES)
def test_a6_mvd_holds_naive(benchmark, rows):
    rel = mvd_relation(rows)
    verdicts = benchmark(lambda: [mvd_holds_in_naive(m, rel) for m in MVDS])
    assert verdicts == [True, True]


@pytest.mark.parametrize("rows", SIZES)
def test_a6_lossless_kernel(benchmark, rows):
    rel = lossless_relation(rows)
    assert benchmark(is_lossless_decomposition, rel, PARTS)


@pytest.mark.parametrize("rows", SIZES)
def test_a6_lossless_naive(benchmark, rows):
    rel = lossless_relation(rows)
    assert benchmark(is_lossless_decomposition_naive, rel, PARTS)


def test_a6_agreement_at_scale(benchmark):
    """One differential pass at the largest size, timed end to end."""
    rel = fd_relation(SIZES[-1])
    mrel = mvd_relation(SIZES[-1])
    lrel = lossless_relation(SIZES[-1])

    def agree():
        ok = all(holds_in(fd, rel) == holds_in_naive(fd, rel) for fd in FDS)
        ok = ok and all(
            mvd_holds_in(m, mrel) == mvd_holds_in_naive(m, mrel) for m in MVDS
        )
        return ok and is_lossless_decomposition(lrel, PARTS) == \
            is_lossless_decomposition_naive(lrel, PARTS)

    assert benchmark(agree)
