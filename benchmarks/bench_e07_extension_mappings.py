"""E7 — section 4: Containment Condition, E_e, and corollary (a)-(c).

Validates the mappings on the employee state and on random consistent
extensions; the benchmark times the all-chains corollary verification.
"""

import random

from conftest import show

from repro.core import all_chains, verify_corollary
from repro.viz import extension_table
from repro.workloads import random_extension, random_schema


def test_e07_corollary_on_employee(benchmark, db):
    result = benchmark(verify_corollary, db)
    assert result == {"a": True, "b": True, "c": True}
    chains = all_chains(db)
    body = (
        extension_table(db)
        + f"\n\ncorollary (a), (b), (c) verified on {len(chains)} chains: {result}"
    )
    show("E7: extension mappings corollary", body)


def test_e07_corollary_on_random_states(benchmark):
    rng = random.Random(17)
    states = []
    for seed in range(6):
        local = random.Random(seed)
        s = random_schema(local, n_attrs=7, n_types=6,
                          shape=rng.choice(["chain", "tree", "diamond"]))
        states.append(random_extension(local, s, rows_per_leaf=3))

    def verify_all():
        return [verify_corollary(state) for state in states]

    results = benchmark(verify_all)
    assert all(r == {"a": True, "b": True, "c": True} for r in results)
    show("E7: corollary on random consistent states",
         f"{len(results)} states, all pass")


def test_e07_containment_detection(benchmark, db):
    broken = db.insert(
        "manager",
        {"name": "eva", "age": 47, "depname": "admin", "budget": 100},
        propagate=False,
    )

    def diagnose():
        return broken.containment_violations()

    violations = benchmark(diagnose)
    assert violations
    pairs = sorted((s.name, e.name) for s, e, _ in violations)
    show("E7: containment diagnosis on an injected violation",
         "\n".join(f"pi_{e}^{s}(R_{s}) escapes R_{e}" for s, e in pairs))
