"""The section-2 design procedure on a messy university draft.

A designer's raw notes contain synonyms, a decomposable attribute, a
cluster that is really a view, and a dependency over a bare attribute.
The engine applies the paper's six steps and emits a valid schema plus an
action log.

Run:  python examples/university_schema_design.py
"""

from repro.core import (
    DatabaseExtension,
    DesignDraft,
    DraftDependency,
    DraftEntity,
    SpecialisationStructure,
    run_design_process,
)
from repro.viz import entity_table, isa_forest

draft = DesignDraft(
    domains={
        "sname": ["sue", "tom", "una", "vic"],
        "year": [1, 2, 3, 4],
        "cname": ["databases", "os", "ai", "logic"],
        "credits": [5, 10],
        "grade": [6, 7, 8, 9, 10],
        "room": [(1, "A"), (2, "B")],     # decomposable! building+door
        "lname": ["kersten", "siebes"],
    },
    entities=[
        DraftEntity("student", frozenset({"sname", "year"})),
        DraftEntity("undergrad", frozenset({"sname", "year"})),   # synonym
        DraftEntity("course", frozenset({"cname", "credits"})),
        DraftEntity("lecturer", frozenset({"lname"})),
        DraftEntity(
            "enrolled",
            frozenset({"sname", "year", "cname", "credits", "grade"}),
            is_relationship=True,
            claimed_contributors=frozenset({"student", "course"}),
        ),
        DraftEntity(
            "teaches",
            frozenset({"lname", "cname", "credits"}),
            is_relationship=True,
            claimed_contributors=frozenset({"lecturer", "course"}),
        ),
        DraftEntity(   # a pure aggregation of student+course: a view type
            "roster",
            frozenset({"sname", "year", "cname", "credits"}),
            is_cluster=True,
        ),
    ],
    dependencies=[
        # "each course has one lecturer" — stated over entity types:
        DraftDependency("course", "lecturer", "teaches"),
        # sloppy: a dependency whose dependent is a bare attribute.
        DraftDependency("student", "grade", "enrolled"),
    ],
)

report = run_design_process(draft, synonym_strategy="merge")

print("action log")
print("-" * 66)
for action in report.actions:
    print(f"  {action}")

schema = report.schema
assert schema is not None, "draft could not be repaired"

print("\nresulting conceptual schema")
print("-" * 66)
print(entity_table(schema))
print()
print(isa_forest(schema))

# Populate it and confirm consistency (the merge kept the name 'student').
db = DatabaseExtension(schema, {
    "student": [{"sname": "sue", "year": 2}, {"sname": "tom", "year": 1}],
    "course": [{"cname": "databases", "credits": 10}],
    "lecturer": [{"lname": "kersten"}],
    "teaches": [{"lname": "kersten", "cname": "databases", "credits": 10}],
    "enrolled": [{
        "sname": "sue", "year": 2, "cname": "databases",
        "credits": 10, "grade": 9,
    }],
    # Step 6 promoted 'grade' to an entity type, so the grade value that
    # appears in 'enrolled' must exist as an instance too (containment):
    "grade_entity": [{"grade": 9}],
})
print("\nextension consistent:", db.is_consistent())
assert db.is_consistent()

spec = SpecialisationStructure(schema)
print("ISA roots:", sorted(e.name for e in spec.roots()))
print("ISA leaves:", sorted(e.name for e in spec.leaves()))
