"""Compiling a classical EAR design into the axiom model.

The paper credits the EAR model's entity/relationship distinction but
faults its lack of formalisation.  This example takes a Chen-style design
(entity sets, relationship sets, cardinalities, total participation) and
compiles it into a validated axiom-model schema with contributors and
constraints — making the EAR semantics formal and checkable.

Run:  python examples/ear_migration.py
"""

from repro.core import DatabaseExtension, check_all
from repro.ear import EAREntitySet, EARRelationshipSet, EARSchema, translate
from repro.viz import contributor_table, entity_table, isa_forest

ear = EARSchema(
    entities=[
        EAREntitySet("patient", frozenset({"pname", "insurance"})),
        EAREntitySet("doctor", frozenset({"dname", "specialty"})),
        EAREntitySet("ward", frozenset({"wname", "floor"})),
    ],
    relationships=[
        EARRelationshipSet(
            "treats", "doctor", "patient",
            cardinality="1:n",                 # one doctor, many patients
            total=frozenset({"patient"}),      # every patient is treated
        ),
        EARRelationshipSet(
            "assigned", "patient", "ward",
            cardinality="n:1",                 # each patient in one ward
            attributes=frozenset({"bed"}),
        ),
    ],
)

result = translate(ear, domains={
    "pname": ["p1", "p2", "p3"],
    "insurance": ["basic", "full"],
    "dname": ["dr_a", "dr_b"],
    "specialty": ["cardio", "neuro"],
    "wname": ["w1", "w2"],
    "floor": [1, 2],
    "bed": [1, 2, 3, 4],
})

print("compiled schema")
print("-" * 60)
print(entity_table(result.schema))
print()
print(isa_forest(result.schema))
print()
print(contributor_table(result.schema))

print("\nconstraints compiled from cardinalities / participation:")
for constraint in result.constraints.constraints:
    print(" ", constraint.name)
if result.notes:
    print("\ntranslator notes:")
    for note in result.notes:
        print(" ", note)

audit = check_all(result.schema,
                  constraints=result.constraints.constraints,
                  contributors=result.contributors)
print("\naxiom audit:", audit.render())

# Populate and validate the semantics the EAR diagram only implied.
db = DatabaseExtension(result.schema, {
    "patient": [
        {"pname": "p1", "insurance": "basic"},
        {"pname": "p2", "insurance": "full"},
    ],
    "doctor": [{"dname": "dr_a", "specialty": "cardio"}],
    "ward": [{"wname": "w1", "floor": 1}],
    "treats": [
        {"dname": "dr_a", "specialty": "cardio", "pname": "p1", "insurance": "basic"},
        {"dname": "dr_a", "specialty": "cardio", "pname": "p2", "insurance": "full"},
    ],
    "assigned": [
        {"pname": "p1", "insurance": "basic", "wname": "w1", "floor": 1, "bed": 2},
    ],
}, result.contributors)

print("\nextension consistent:", db.is_consistent())
report = result.constraints.report(db)
print("constraint check:", "all hold" if not report else report)
# p2 is treated but not assigned: total participation in 'treats' holds,
# and 'assigned' imposes none, so the state is legal.
