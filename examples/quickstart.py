"""Quickstart: build a schema, inspect its topology, and check the axioms.

Run:  python examples/quickstart.py
"""

from repro.core import (
    GeneralisationStructure,
    Schema,
    SpecialisationStructure,
    canonical_contributors,
    check_all,
)
from repro.viz import entity_table, isa_forest

# 1. A schema is just attribute sets with names (the Entity Type Axiom is
#    enforced at construction: no two types may share an attribute set).
schema = Schema.from_attribute_sets({
    "book": {"isbn", "title"},
    "author": {"aname"},
    "wrote": {"isbn", "title", "aname", "year"},
    "bestseller": {"isbn", "title", "rank"},
})

print(entity_table(schema))
print()

# 2. The intension topology: S_e (specialisations) and G_e (generalisations)
#    come straight from subset structure, as the paper defines them.
spec = SpecialisationStructure(schema)
gen = GeneralisationStructure(schema)
for e in schema.sorted_types():
    s_names = sorted(f.name for f in spec.S(e))
    g_names = sorted(f.name for f in gen.G(e))
    print(f"S_{e.name:<10} = {s_names}")
    print(f"G_{e.name:<10} = {g_names}")
print()

# 3. Contributors: relationships are compound entity types whose direct
#    generalisations determine them (Extension Axiom).
for e in schema.sorted_types():
    cos = canonical_contributors(schema, e)
    if cos:
        print(f"{e.name} is a relationship over "
              f"{sorted(c.name for c in cos)}")
print()

# 4. The ISA hierarchy, rendered like the paper's containment figure.
print(isa_forest(schema))
print()

# 5. Axiom audit — clean by construction here.
print("axiom audit:", check_all(schema).render())
