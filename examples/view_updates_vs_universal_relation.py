"""View updates: the View Axiom vs. Maier's Universal Relation (E12 live).

The same logical change — "record that eva, 47, exists" — has exactly one
translation under the axiom model and four under the Universal Relation.

Run:  python examples/view_updates_vs_universal_relation.py
"""

from repro.core import EntityViewType, ViewInstance, ViewUpdate, translation_count
from repro.core.employee import employee_extension, employee_schema
from repro.relational import Tuple
from repro.universal import (
    UniversalRelation,
    deletion_translations,
    insertion_translations,
)

schema = employee_schema()
db = employee_extension(schema)

print("the task: insert the fact (name=eva, age=47)")
print("=" * 60)

# --- axiom model ---------------------------------------------------------
view = EntityViewType("people", {schema["person"]})
update = ViewUpdate(view, "insert", schema["person"],
                    Tuple({"name": "eva", "age": 47}))
print("\naxiom model (View Axiom):")
print(f"  view 'people' = set of entity types {sorted(e.name for e in view.members)}")
print(f"  translations: {translation_count(update, db)}")
updated = update.translate(db)
print(f"  applied; person now has {len(updated.R('person'))} instances;"
      f" containment: {updated.satisfies_containment()}")

# --- universal relation --------------------------------------------------
ur = UniversalRelation.from_extension(db)
translations = insertion_translations(ur, {"name": "eva", "age": 47})
print("\nuniversal relation (windows over one big scheme):")
print(f"  translations: {len(translations)}")
for i, translation in enumerate(translations):
    targets = []
    for idx, t in translation.items():
        rel_schema = sorted(ur.relations[idx].schema)
        targets.append(f"relation{idx}{rel_schema}")
    print(f"    option {i + 1}: insert into {', '.join(targets)}")

print("\nwhy it matters: each option leaves different placeholders behind "
      "and changes different windows — the system must guess.")

# --- deletion side -------------------------------------------------------
print("\nthe task: delete the fact (name=ann, age=31)")
print("=" * 60)
candidates = deletion_translations(ur, {"name": "ann", "age": 31})
print(f"universal relation candidate deletions: {len(candidates)}")
view_update = ViewUpdate(view, "delete", schema["person"],
                         Tuple({"name": "ann", "age": 31}))
print(f"axiom model translations: {translation_count(view_update, db)} "
      "(delete the person; specialisation facts cascade deterministically)")
after = view_update.translate(db)
print(f"after the axiom-model delete: person={len(after.R('person'))}, "
      f"manager={len(after.R('manager'))} (ann's manager fact cascaded)")

# --- what the user actually sees ----------------------------------------
print("\nview presentation (read-only join is still available):")
staffing = EntityViewType("staffing", {schema["employee"], schema["department"]})
presented = ViewInstance(staffing, db).presented_relation()
for t in presented:
    print(" ", dict(t))
