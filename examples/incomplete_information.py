"""Null values over boolean-algebra domains (the paper's section 6 roadmap).

"Imposing a structure on the domain, a boolean algebra structure, results
in a formal definition of null values and incomplete information. ...
the null interpretation can be defined independent of the entity type
structure and its semantics carry over to functional dependencies."

Run:  python examples/incomplete_information.py
"""

from repro.nulls import IncompleteRelation, IncompleteValue, PowersetAlgebra
from repro.relational import FD

# 1. A domain with boolean-algebra structure: elements are sets of
#    possible values; the top element is the classical null.
locations = PowersetAlgebra({"amsterdam", "utrecht", "delft"})
print("domain algebra over", sorted(locations.atoms))
print("  top (null)   =", sorted(locations.top))
print("  an atom      =", sorted(locations.element({"delft"})))
print("  meet of {a,u} and {u,d} =",
      sorted(locations.meet({"amsterdam", "utrecht"}, {"utrecht", "delft"})))

# 2. A department relation where one location is unknown and another is
#    narrowed to two possibilities.
departments = IncompleteRelation(
    ["depname", "location"],
    {
        "depname": ["sales", "research", "admin"],
        "location": ["amsterdam", "utrecht", "delft"],
    },
    [
        {"depname": "sales", "location": "amsterdam"},
        {"depname": "research",
         "location": IncompleteValue.null(["amsterdam", "utrecht", "delft"])},
        {"depname": "admin",
         "location": IncompleteValue({"utrecht", "delft"})},
    ],
)

fd = FD({"depname"}, {"location"})
print(f"\nrelation has {departments.completion_count()} completions")
print(f"fd {fd!r}:")
print(f"  certain  (holds in all completions):  {departments.fd_certain(fd)}")
print(f"  possible (holds in some completion):  {departments.fd_possible(fd)}")

# 3. Refinement: learning narrows the possible sets; certainty only grows.
refined = IncompleteRelation(
    ["depname", "location"],
    {
        "depname": ["sales", "research", "admin"],
        "location": ["amsterdam", "utrecht", "delft"],
    },
    [
        {"depname": "sales", "location": "amsterdam"},
        {"depname": "research", "location": "utrecht"},
        {"depname": "admin", "location": "delft"},
    ],
)
print("\nafter refinement (all locations learned):")
print(f"  refinement-ordered: {refined.information_order_leq(departments)}")
print(f"  fd certain now:     {refined.fd_certain(fd)}")

# 4. Independence from entity-type structure: the verdicts above used only
#    the value algebra — no entity type, context, or topology appeared.
#    (Contrast: Reiter's nulls are interpreted per-context.)
reverse = FD({"location"}, {"depname"})
print(f"\nreverse fd {reverse!r}:")
print(f"  certain:  {departments.fd_certain(reverse)}")
print(f"  possible: {departments.fd_possible(reverse)}")
print("\nNote: a completion may place research and admin in the same city,"
      "\nso location -> depname is not certain; but completions where the"
      "\nthree cities differ exist, so it remains possible.")
