"""Schema evolution with information-preservation analysis (section 6).

"Changes in the database intension can be translated directly into
information preserving properties of the database extension."  Each change
below is applied, the intension embedding is checked, the extension is
migrated, and the round-trip verdict is printed.

Run:  python examples/schema_evolution.py
"""

from repro.core import (
    AddAttribute,
    AddEntityType,
    RemoveAttribute,
    RemoveEntityType,
    RenameEntityType,
    analyse,
)
from repro.core.employee import employee_extension, employee_schema

schema = employee_schema()
db = employee_extension(schema)

CHANGES = [
    ("rename person -> human",
     RenameEntityType("person", "human")),
    ("add entity type veteran {name, age, budget}",
     AddEntityType("veteran", frozenset({"name", "age", "budget"}))),
    ("add attribute budget to department (default 100)",
     AddAttribute("department", "budget", default=100)),
    ("remove attribute location from department",
     RemoveAttribute("department", "location")),
    ("remove entity type worksfor (it holds data!)",
     RemoveEntityType("worksfor")),
]

print(f"initial state: {db!r}\n")
header = f"{'change':52s} {'embeds':>7s} {'preserved':>10s}"
print(header)
print("-" * len(header))
for label, change in CHANGES:
    report = analyse(db, change)
    print(f"{label:52s} {str(report.intension_embeds):>7s} "
          f"{str(report.information_preserved):>10s}")
    for note in report.notes:
        print(f"    note: {note}")

print("""
reading the table:
  * renames and additions embed the old intension space into the new one
    and migrate losslessly;
  * dropping an attribute merges instances only if they differed there
    (the analyser checks the actual extension, not just the schema);
  * dropping a populated entity type is flagged — its instances are the
    information the topology says you are about to forget.
""")

# A migration in full: grow department, then query the migrated state.
change = AddAttribute("department", "budget", default=100)
report = analyse(db, change)
migrated = report.migrated
print("migrated department relation (budget padded with the default):")
for t in migrated.R("department"):
    print(" ", dict(t))
print("\nmigrated state consistent:", migrated.is_consistent())
