"""The paper's running example, end to end.

Rebuilds every artifact of the report from the employee schema: the
section-2 table and figures, the section-3 topologies and subbase choice,
the section-4 extension machinery, and the section-5 dependency calculus.

Run:  python examples/employee_database.py
"""

from repro.core import (
    ArmstrongEngine,
    SpecialisationStructure,
    SubbaseChoice,
    gluing_report,
    holds,
    lambda_mapping,
    verify_corollary,
)
from repro.core.employee import (
    PAPER_SUBBASE,
    employee_constraints,
    employee_extension,
    employee_fd,
    employee_schema,
)
from repro.viz import (
    contributor_table,
    disk_matrix,
    entity_table,
    extension_table,
    generalisation_table,
    isa_forest,
    specialisation_table,
)


def banner(title):
    print("\n" + "=" * 66)
    print(title)
    print("=" * 66)


schema = employee_schema()
db = employee_extension(schema)

banner("Section 2 — the employee database")
print(entity_table(schema))
print()
print(disk_matrix(schema))

banner("Section 3.1 — specialisation")
print(specialisation_table(schema))
print()
print(isa_forest(schema))

banner("Section 3.1 — the designer's subbase R_T")
choice = SubbaseChoice(schema, PAPER_SUBBASE)
print(f"R_T = {sorted(e.name for e in choice.chosen)}")
print(f"constructed types = {sorted(e.name for e in choice.constructed_types())}")
expr = choice.expression_for(schema["worksfor"])
print(f"S_worksfor = intersection of S_e for e in {sorted(e.name for e in expr)}")

banner("Section 3.2 — generalisation")
print(generalisation_table(schema))

banner("Section 3.3 — contributors")
print(contributor_table(schema))

banner("Section 4 — the extension")
print(extension_table(db))
print()
print("corollary (a,b,c):", verify_corollary(db))
print("sheaf gluing over {S_e}:", gluing_report(db)["is_sheaf_on_E"])

banner("Section 5 — functional dependencies")
fd = employee_fd(schema)
print(f"declared: {fd!r}")
print(f"holds in the state: {holds(fd, db)}")
lam = lambda_mapping(fd, db)
print(f"triangle witness lambda has {len(lam)} entries")

constraints = employee_constraints(schema)
print(f"\nconstraint audit: "
      f"{'all hold' if constraints.holds(db) else constraints.report(db)}")

engine = ArmstrongEngine(schema, constraints.functional_dependencies())
derived = engine.nontrivial_derived()
print(f"\nArmstrong closure: {len(engine.closure())} dependencies "
      f"({len(derived)} non-trivial), e.g.:")
for item in sorted(derived, key=repr)[:5]:
    print(f"  {item!r}")
proof = engine.derivation(sorted(derived, key=repr)[0])
print("\none derivation tree:")
print(proof.render())
