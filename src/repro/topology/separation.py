"""Separation properties of finite spaces.

Finite spaces are coarse: T1 already forces discreteness.  The interesting
axiom for the paper is T0 — the Entity Type Axiom is precisely the statement
that the intension topology is T0 (no two entity types share all their
neighbourhoods).  The remaining predicates are provided for completeness of
the substrate and for property tests.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.topology.space import FiniteSpace

Point = Hashable


def is_t0(space: FiniteSpace) -> bool:
    """Kolmogorov: distinct points are topologically distinguishable."""
    points = sorted(space.points, key=repr)
    for i, x in enumerate(points):
        for y in points[i + 1:]:
            x_open = space.minimal_open(x)
            y_open = space.minimal_open(y)
            if x_open == y_open:
                return False
    return True


def is_t1(space: FiniteSpace) -> bool:
    """Frechet: every singleton is closed."""
    return all(space.is_closed({p}) for p in space.points)


def is_t2(space: FiniteSpace) -> bool:
    """Hausdorff: distinct points have disjoint open neighbourhoods."""
    points = sorted(space.points, key=repr)
    for i, x in enumerate(points):
        for y in points[i + 1:]:
            if space.minimal_open(x) & space.minimal_open(y):
                return False
    return True


def is_discrete(space: FiniteSpace) -> bool:
    """Every subset open — for finite spaces, equivalent to T1 (and T2)."""
    return len(space.opens) == 2 ** len(space.points)


def indistinguishable_pairs(space: FiniteSpace) -> frozenset[frozenset[Point]]:
    """Pairs of points with identical neighbourhood systems.

    Applied to an intension topology these are exactly the synonym entity
    types the Entity Type Axiom bans; the design procedure of section 2
    reports them for merging.
    """
    by_open: dict[frozenset[Point], list[Point]] = {}
    for p in space.points:
        by_open.setdefault(space.minimal_open(p), []).append(p)
    pairs: set[frozenset[Point]] = set()
    for members in by_open.values():
        for i, x in enumerate(members):
            for y in members[i + 1:]:
                pairs.add(frozenset({x, y}))
    return frozenset(pairs)
