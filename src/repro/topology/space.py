"""Finite topological spaces.

The paper models the database intension as a topology on the set of entity
types, generated from the subbase ``{S_e | e in E}`` (section 3.1) and the
dual subbase ``{G_e | e in E}`` (section 3.2).  This module provides the
generic substrate: a :class:`FiniteSpace` validates the topology axioms and
offers the standard point-set operators (closure, interior, boundary,
neighbourhoods) specialised to finite carriers.

Because the carrier is finite, every topology here is an *Alexandrov*
topology: arbitrary intersections of opens are open, every point has a
unique minimal open neighbourhood, and the space is equivalent to a preorder
(see :mod:`repro.topology.order`).  The paper exploits exactly this —
``S_e`` is the minimal open neighbourhood of ``e`` in the specialisation
topology.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import FrozenSet

from repro.errors import TopologyError
from repro.kernel import Universe, minimal_opens_of_family

Point = Hashable
OpenSet = FrozenSet[Point]


def _freeze_family(sets: Iterable[Iterable[Point]]) -> frozenset[OpenSet]:
    """Normalise an iterable of iterables into a frozenset of frozensets."""
    return frozenset(frozenset(s) for s in sets)


class FiniteSpace:
    """A finite topological space ``(X, T)``.

    Parameters
    ----------
    points:
        The carrier set ``X``.
    opens:
        The family ``T`` of open sets.  It must contain the empty set and
        ``X`` and be closed under unions and intersections; otherwise
        :class:`~repro.errors.TopologyError` is raised.

    Examples
    --------
    >>> space = FiniteSpace("ab", [set(), {"a"}, {"a", "b"}])
    >>> sorted(space.closure({"a"}))
    ['a', 'b']
    """

    __slots__ = ("_points", "_opens", "_min_open_cache", "_kernel_state",
                 "_minimal_masks")

    def __init__(self, points: Iterable[Point], opens: Iterable[Iterable[Point]]):
        self._points: frozenset[Point] = frozenset(points)
        self._opens: frozenset[OpenSet] | None = _freeze_family(opens)
        self._min_open_cache: dict[Point, OpenSet] = {}
        self._kernel_state: tuple | None = None
        self._minimal_masks: dict[int, int] | None = None
        self._validate()

    @classmethod
    def _trusted(cls,
                 points: frozenset[Point],
                 opens: frozenset[OpenSet],
                 minimal_opens: dict[Point, OpenSet] | None = None) -> "FiniteSpace":
        """Construct without validating the topology axioms.

        Reserved for kernel-side generators whose output is closed under
        union and intersection by construction
        (:func:`repro.topology.generation.topology_from_subbase`,
        :func:`repro.topology.order.alexandrov_space`); the randomized
        equivalence suite guards the shortcut.  ``minimal_opens`` pre-fills
        the per-point cache when the generator already knows the answer.
        """
        self = object.__new__(cls)
        self._points = points
        self._opens = opens
        self._min_open_cache = dict(minimal_opens) if minimal_opens else {}
        self._kernel_state = None
        self._minimal_masks = None
        return self

    @classmethod
    def _from_masks(cls, uni, points: frozenset[Point], open_masks,
                    minimal_masks: dict[int, int]) -> "FiniteSpace":
        """Construct from interned masks, deferring the decode.

        The incremental maintenance routes (:mod:`repro.topology.generation`'s
        ``space_with_*``/``space_without_*``) patch mask families; a
        chain of edits can then stay in mask form end to end — each step
        reads this state back via the pre-filled kernel state and
        ``_minimal_masks`` — and the frozenset family is only decoded if
        some consumer actually asks for :attr:`opens`.  Trust contract
        as for :meth:`_trusted`.
        """
        self = object.__new__(cls)
        self._points = points
        self._opens = None
        self._min_open_cache = {}
        masks = list(open_masks)
        self._kernel_state = (uni, masks, set(masks),
                              uni.encode_strict(points))
        self._minimal_masks = dict(minimal_masks)
        return self

    def _masks(self) -> tuple[Universe, list[int], set[int], int]:
        """The interned view of the topology, built once on first use."""
        state = self._kernel_state
        if state is None:
            uni = Universe(self._points)
            open_masks = [uni.encode_strict(u) for u in self._opens]
            state = (uni, open_masks, set(open_masks), uni.full_mask())
            self._kernel_state = state
        return state

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def discrete(cls, points: Iterable[Point]) -> "FiniteSpace":
        """The discrete topology: every subset is open."""
        pts = frozenset(points)
        return cls(pts, _powerset(pts))

    @classmethod
    def indiscrete(cls, points: Iterable[Point]) -> "FiniteSpace":
        """The indiscrete (trivial) topology: only the empty set and X."""
        pts = frozenset(points)
        return cls(pts, [frozenset(), pts])

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if frozenset() not in self._opens:
            raise TopologyError("the empty set must be open")
        if self._points not in self._opens:
            raise TopologyError("the whole carrier must be open")
        for u in self._opens:
            if not u <= self._points:
                stray = sorted(u - self._points, key=repr)
                raise TopologyError(f"open set contains points outside the carrier: {stray}")
        # On a finite carrier it suffices to check pairwise closure.  The
        # check runs on interned bitmasks: the pair loop is the same
        # O(|T|^2) but each union/intersection/membership is a word
        # operation instead of a frozenset allocation.
        uni, open_masks, mask_set, _ = self._masks()
        for i, u in enumerate(open_masks):
            for v in open_masks[i + 1:]:
                if u | v not in mask_set:
                    raise TopologyError(
                        f"not closed under union: {set(uni.decode(u))} | {set(uni.decode(v))}")
                if u & v not in mask_set:
                    raise TopologyError(
                        f"not closed under intersection: {set(uni.decode(u))} & {set(uni.decode(v))}")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def points(self) -> frozenset[Point]:
        """The carrier set ``X``."""
        return self._points

    @property
    def opens(self) -> frozenset[OpenSet]:
        """The family of open sets ``T`` (decoded on first access for
        mask-form spaces)."""
        if self._opens is None:
            uni, open_masks, _, _ = self._kernel_state
            self._opens = uni.decode_many(open_masks)
        return self._opens

    def is_open(self, subset: Iterable[Point]) -> bool:
        """Whether ``subset`` is an open set of this space."""
        return frozenset(subset) in self.opens

    def is_closed(self, subset: Iterable[Point]) -> bool:
        """Whether ``subset`` is closed, i.e. its complement is open."""
        return (self._points - frozenset(subset)) in self.opens

    def closed_sets(self) -> frozenset[OpenSet]:
        """The family of all closed sets."""
        return frozenset(self._points - u for u in self.opens)

    def __contains__(self, point: Point) -> bool:
        return point in self._points

    def __len__(self) -> int:
        return len(self._points)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FiniteSpace):
            return NotImplemented
        return self._points == other._points and self.opens == other.opens

    def __hash__(self) -> int:
        return hash((self._points, self.opens))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n_opens = (len(self._opens) if self._opens is not None
                   else len(self._kernel_state[2]))
        return f"FiniteSpace({len(self._points)} points, {n_opens} opens)"

    # ------------------------------------------------------------------
    # point-set operators
    # ------------------------------------------------------------------
    def interior(self, subset: Iterable[Point]) -> OpenSet:
        """The largest open set contained in ``subset``.

        Computed as the union of all opens inside ``subset`` — the family
        is closed under unions, so that union is itself open and maximal.
        """
        uni, open_masks, _, _ = self._masks()
        target = uni.encode_known(subset)
        acc = 0
        for u in open_masks:
            if u & ~target == 0:
                acc |= u
        return uni.decode(acc)

    def closure(self, subset: Iterable[Point]) -> OpenSet:
        """The smallest closed set containing ``subset``.

        The complement of the interior of the complement.
        """
        uni, open_masks, _, full = self._masks()
        co_target = full & ~uni.encode_known(subset)
        acc = 0
        for u in open_masks:
            if u & ~co_target == 0:
                acc |= u
        return uni.decode(full & ~acc)

    def boundary(self, subset: Iterable[Point]) -> OpenSet:
        """closure(S) minus interior(S)."""
        return self.closure(subset) - self.interior(subset)

    def exterior(self, subset: Iterable[Point]) -> OpenSet:
        """The interior of the complement of ``subset``."""
        return self.interior(self._points - frozenset(subset))

    def is_dense(self, subset: Iterable[Point]) -> bool:
        """Whether the closure of ``subset`` is the whole space."""
        return self.closure(subset) == self._points

    # ------------------------------------------------------------------
    # neighbourhoods (the Alexandrov structure the paper relies on)
    # ------------------------------------------------------------------
    def minimal_open(self, point: Point) -> OpenSet:
        """The smallest open set containing ``point``.

        In the specialisation topology of the paper this is exactly
        ``S_e``; in the generalisation topology it is ``G_e``.  Finite
        spaces always have minimal opens because the intersection of all
        open neighbourhoods is a finite intersection.
        """
        if point not in self._points:
            raise TopologyError(f"{point!r} is not a point of the space")
        cached = self._min_open_cache.get(point)
        if cached is not None:
            return cached
        if self._minimal_masks is not None:
            # Mask-form space: decode just the one asked-for minimal open.
            uni = self._kernel_state[0]
            out = uni.decode(self._minimal_masks[uni.index_of(point)])
            self._min_open_cache[point] = out
            return out
        # Fill the whole cache in one kernel pass: the minimal open of x
        # is the intersection of the opens containing x, and one sweep
        # over the mask family computes it for every point at once.
        uni, open_masks, _, full = self._masks()
        minimal = minimal_opens_of_family(full, open_masks)
        for bit, mask in minimal.items():
            self._min_open_cache.setdefault(uni.point_at(bit), uni.decode(mask))
        return self._min_open_cache[point]

    def neighbourhoods(self, point: Point) -> frozenset[OpenSet]:
        """All open sets containing ``point``."""
        if point not in self._points:
            raise TopologyError(f"{point!r} is not a point of the space")
        return frozenset(u for u in self.opens if point in u)

    def is_open_cover(self, family: Iterable[Iterable[Point]]) -> bool:
        """Whether ``family`` consists of opens whose union is the carrier.

        Section 3.1 observes that ``S = {S_e}`` is an open cover of ``E``;
        section 3.2 observes the same for ``G = {G_e}``.
        """
        union: set[Point] = set()
        for member in family:
            fs = frozenset(member)
            if fs not in self.opens:
                return False
            union |= fs
        return union == set(self._points)

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether the space cannot be split into two disjoint nonempty opens."""
        for u in self.opens:
            if u and u != self._points and (self._points - u) in self.opens:
                return False
        return True

    def connected_components(self) -> frozenset[OpenSet]:
        """The partition of the carrier into maximal connected subsets.

        For finite (Alexandrov) spaces the components are the connected
        components of the graph linking each point to its minimal open
        neighbours.
        """
        adjacency: dict[Point, set[Point]] = {p: set() for p in self._points}
        for p in self._points:
            for q in self.minimal_open(p):
                adjacency[p].add(q)
                adjacency[q].add(p)
        seen: set[Point] = set()
        components: list[OpenSet] = []
        for start in self._points:
            if start in seen:
                continue
            stack = [start]
            component: set[Point] = set()
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(adjacency[node] - component)
            seen |= component
            components.append(frozenset(component))
        return frozenset(components)


def _powerset(points: frozenset[Point]) -> list[frozenset[Point]]:
    """All subsets of ``points``.  Exponential; used for tiny carriers only."""
    subsets: list[frozenset[Point]] = [frozenset()]
    for p in points:
        subsets += [s | {p} for s in subsets]
    return subsets
