"""Standard constructions: subspace, product, disjoint sum, quotient.

The paper's extension space (section 4) is carved out of product spaces of
attribute domains, and view types (section 2) induce subspaces of the
intension topology; these constructions make those moves available
generically.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from itertools import product as iter_product

from repro.errors import TopologyError
from repro.topology.space import FiniteSpace

Point = Hashable


def subspace(space: FiniteSpace, points: Iterable[Point]) -> FiniteSpace:
    """The subspace topology on ``points``: opens are traces of opens."""
    carrier = frozenset(points)
    if not carrier <= space.points:
        stray = sorted(map(repr, carrier - space.points))
        raise TopologyError(f"subspace points not in carrier: {stray}")
    opens = frozenset(u & carrier for u in space.opens)
    return FiniteSpace(carrier, opens)


def product(left: FiniteSpace, right: FiniteSpace) -> FiniteSpace:
    """The product topology on pairs (base: products of opens)."""
    points = frozenset(iter_product(left.points, right.points))
    base = [frozenset(iter_product(u, v)) for u in left.opens for v in right.opens]
    from repro.topology.generation import unions_of

    return FiniteSpace(points, unions_of(base) | {points})


def disjoint_union(left: FiniteSpace, right: FiniteSpace) -> FiniteSpace:
    """The coproduct: points tagged 0/1, opens are unions of tagged opens."""
    points = frozenset({(0, p) for p in left.points} | {(1, p) for p in right.points})
    opens = frozenset(
        frozenset({(0, p) for p in u} | {(1, q) for q in v})
        for u in left.opens
        for v in right.opens
    )
    return FiniteSpace(points, opens)


def quotient(space: FiniteSpace, blocks: Mapping[Point, Hashable]) -> FiniteSpace:
    """The quotient topology under the partition described by ``blocks``.

    ``blocks[p]`` names the equivalence class of ``p``; a set of classes is
    open iff its preimage is open.
    """
    missing = space.points - frozenset(blocks)
    if missing:
        raise TopologyError(f"quotient map undefined on: {sorted(map(repr, missing))}")
    classes = frozenset(blocks[p] for p in space.points)
    opens: set[frozenset[Hashable]] = set()
    # Enumerate candidate open sets of classes by checking preimages.
    candidates: list[frozenset[Hashable]] = [frozenset()]
    for cls in sorted(classes, key=repr):
        candidates += [c | {cls} for c in candidates]
    for candidate in candidates:
        preimage = frozenset(p for p in space.points if blocks[p] in candidate)
        if space.is_open(preimage):
            opens.add(candidate)
    return FiniteSpace(classes, opens)
