"""Presheaves on finite topological spaces.

Section 6 of the paper announces: "we use sheaf theory to study the
continuity problems in databases, i.e. updates of both intension and
extension".  The machinery of section 4 — extension sets ``E_e(s)`` indexed
by entity types together with restriction maps ``rho(h, f, e)`` satisfying

    rho(f, e, e) o rho(h, f, e) = rho(h, e, e)          (corollary b)

— is exactly a presheaf on the specialisation topology.  This module gives
the generic notion so that :mod:`repro.core.mappings` can *construct* that
presheaf and tests can verify the functor laws independently.

A presheaf ``F`` assigns to every open set ``U`` a set ``F(U)`` of
*sections* and to every inclusion ``V subseteq U`` a restriction map
``res[U, V] : F(U) -> F(V)`` such that restriction along ``U = U`` is the
identity and restrictions compose.  A presheaf is a *sheaf* when compatible
sections over a cover glue uniquely.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Mapping

from repro.errors import PresheafError
from repro.topology.space import FiniteSpace

Point = Hashable
Open = frozenset


class Presheaf:
    """A presheaf of finite sets on a finite space.

    Parameters
    ----------
    space:
        The base space.
    sections:
        ``sections[U]`` is the (finite, hashable-element) set assigned to
        the open set ``U``.  Every open of ``space`` must be covered.
    restrictions:
        ``restrictions[(U, V)]`` for ``V subseteq U`` maps elements of
        ``sections[U]`` to elements of ``sections[V]``.  Only pairs with
        ``V != U`` need be supplied; identities are filled in.  Missing
        composable pairs are completed by composition when unambiguous.
    """

    def __init__(self,
                 space: FiniteSpace,
                 sections: Mapping[Open, Iterable],
                 restrictions: Mapping[tuple[Open, Open], Mapping]):
        self.space = space
        self.sections: dict[Open, frozenset] = {}
        for u in space.opens:
            if u not in sections:
                raise PresheafError(f"no section set supplied for open {set(u)}")
            self.sections[u] = frozenset(sections[u])
        self.restrictions: dict[tuple[Open, Open], dict] = {}
        for (u, v), res in restrictions.items():
            u, v = frozenset(u), frozenset(v)
            if not v <= u:
                raise PresheafError(f"restriction {set(u)} -> {set(v)} is not along an inclusion")
            self.restrictions[(u, v)] = dict(res)
        for u in space.opens:
            self.restrictions.setdefault((u, u), {s: s for s in self.sections[u]})

    # ------------------------------------------------------------------
    # law checking
    # ------------------------------------------------------------------
    def check_functor_laws(self) -> list[str]:
        """Return human-readable violations of the presheaf laws (empty = ok).

        Checks: restriction maps are total and land in the right set;
        identity restrictions are identities; restriction composes along
        chains ``W subseteq V subseteq U`` whenever all three maps exist.
        """
        problems: list[str] = []
        for (u, v), res in self.restrictions.items():
            for s in self.sections[u]:
                if s not in res:
                    problems.append(f"res[{set(u)}->{set(v)}] undefined on {s!r}")
                elif res[s] not in self.sections[v]:
                    problems.append(f"res[{set(u)}->{set(v)}]({s!r}) lands outside F(V)")
        for u in self.space.opens:
            identity = self.restrictions.get((u, u), {})
            for s in self.sections[u]:
                if identity.get(s) != s:
                    problems.append(f"identity restriction on {set(u)} moves {s!r}")
        pairs = set(self.restrictions)
        for (u, v) in pairs:
            for (v2, w) in pairs:
                if v2 != v or (u, w) not in pairs or u == v or v == w:
                    continue
                outer = self.restrictions[(v, w)]
                inner = self.restrictions[(u, v)]
                direct = self.restrictions[(u, w)]
                for s in self.sections[u]:
                    via = outer.get(inner.get(s))
                    if via != direct.get(s):
                        problems.append(
                            f"composition fails on {s!r}: "
                            f"{set(u)}->{set(v)}->{set(w)} gives {via!r}, "
                            f"direct gives {direct.get(s)!r}"
                        )
        return problems

    def is_presheaf(self) -> bool:
        """Whether all functor laws hold."""
        return not self.check_functor_laws()

    # ------------------------------------------------------------------
    # sheaf condition
    # ------------------------------------------------------------------
    def restrict(self, u: Open, v: Open, section):
        """Apply the restriction map F(U) -> F(V) to a section."""
        key = (frozenset(u), frozenset(v))
        if key not in self.restrictions:
            raise PresheafError(f"no restriction map {set(u)} -> {set(v)}")
        return self.restrictions[key][section]

    def compatible_families(self, cover: list[Open]) -> list[dict[Open, object]]:
        """All cover-indexed section families agreeing on overlaps.

        Compatibility is checked through every common open subset ``W`` of
        a pair of cover members for which both restriction maps exist.
        """
        cover = [frozenset(u) for u in cover]
        families: list[dict[Open, object]] = [{}]
        for u in cover:
            families = [{**f, u: s} for f in families for s in self.sections[u]]
        compatible: list[dict[Open, object]] = []
        for family in families:
            ok = True
            for i, u in enumerate(cover):
                for v in cover[i + 1:]:
                    for w in self.space.opens:
                        if not (w <= u and w <= v):
                            continue
                        if (u, w) in self.restrictions and (v, w) in self.restrictions:
                            if self.restrict(u, w, family[u]) != self.restrict(v, w, family[v]):
                                ok = False
                                break
                    if not ok:
                        break
                if not ok:
                    break
            if ok:
                compatible.append(family)
        return compatible

    def gluing_failures(self, u: Open, cover: list[Open]) -> list[str]:
        """Violations of the sheaf condition for ``u`` and an open cover of it.

        For every compatible family there must exist exactly one section of
        ``F(U)`` restricting to it.  Returns one message per failure.
        """
        u = frozenset(u)
        cover = [frozenset(v) for v in cover]
        if frozenset().union(*cover) != u:
            raise PresheafError("the supplied family does not cover U")
        for v in cover:
            if (u, v) not in self.restrictions:
                raise PresheafError(f"no restriction map {set(u)} -> {set(v)}")
        problems: list[str] = []
        for family in self.compatible_families(cover):
            gluings = [
                s for s in self.sections[u]
                if all(self.restrict(u, v, s) == family[v] for v in cover)
            ]
            if not gluings:
                problems.append(f"no gluing for compatible family {family!r}")
            elif len(gluings) > 1:
                problems.append(f"non-unique gluing for family {family!r}: {gluings!r}")
        return problems


def presheaf_from_function(space: FiniteSpace,
                           assign: Callable[[Open], Iterable],
                           restrict: Callable[[Open, Open, object], object]) -> Presheaf:
    """Build a presheaf from callables (convenience for generated spaces)."""
    sections = {u: frozenset(assign(u)) for u in space.opens}
    restrictions: dict[tuple[Open, Open], dict] = {}
    for u in space.opens:
        for v in space.opens:
            if v <= u:
                restrictions[(u, v)] = {s: restrict(u, v, s) for s in sections[u]}
    return Presheaf(space, sections, restrictions)
