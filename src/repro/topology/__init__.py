"""Finite-topology substrate for the intension/extension model.

The paper builds its semantic model on three topological ingredients:
subbase-generated topologies (section 3.1), the Alexandrov correspondence
between finite spaces and ISA preorders (sections 3.1-3.2), and
presheaf-style families of extension mappings (sections 4 and 6).  This
package implements each of them for arbitrary finite carriers.
"""

from repro.topology.space import FiniteSpace
from repro.topology.generation import (
    intersections_of,
    unions_of,
    topology_from_subbase,
    topology_from_base,
    is_base_for,
    is_subbase_for,
    minimal_base,
    redundant_in_subbase,
    irredundant_subbases,
    space_with_subbase_member,
    space_without_subbase_member,
    space_with_point,
    space_without_point,
    space_with_renamed_point,
)
from repro.topology.order import (
    specialisation_preorder,
    alexandrov_space,
    is_preorder,
    hasse_edges,
    topological_sort,
    t0_quotient,
)
from repro.topology.maps import SpaceMap, identity_map, constant_map, monotone_iff_continuous
from repro.topology.separation import is_t0, is_t1, is_t2, is_discrete, indistinguishable_pairs
from repro.topology.constructions import subspace, product, disjoint_union, quotient
from repro.topology.presheaf import Presheaf, presheaf_from_function

__all__ = [
    "FiniteSpace",
    "intersections_of",
    "unions_of",
    "topology_from_subbase",
    "topology_from_base",
    "is_base_for",
    "is_subbase_for",
    "minimal_base",
    "redundant_in_subbase",
    "irredundant_subbases",
    "space_with_subbase_member",
    "space_without_subbase_member",
    "space_with_point",
    "space_without_point",
    "space_with_renamed_point",
    "specialisation_preorder",
    "alexandrov_space",
    "is_preorder",
    "hasse_edges",
    "topological_sort",
    "t0_quotient",
    "SpaceMap",
    "identity_map",
    "constant_map",
    "monotone_iff_continuous",
    "is_t0",
    "is_t1",
    "is_t2",
    "is_discrete",
    "indistinguishable_pairs",
    "subspace",
    "product",
    "disjoint_union",
    "quotient",
    "Presheaf",
    "presheaf_from_function",
]
