"""The Alexandrov correspondence between finite spaces and preorders.

Every finite topological space determines a *specialisation preorder*
``x <= y  iff  x in closure({y})`` (equivalently: every open containing x
contains y ... orientation fixed below), and every preorder determines an
Alexandrov topology whose opens are the up-sets.  The two constructions are
mutually inverse on finite carriers.

This correspondence is the mathematical heart of the paper: the ISA
(generalisation/specialisation) hierarchy over entity types *is* the
specialisation preorder of the intension topology, and proper subset
hierarchies in the family ``L`` are exactly the strict order relations.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.topology.space import FiniteSpace

Point = Hashable


def specialisation_preorder(space: FiniteSpace) -> dict[Point, frozenset[Point]]:
    """Map each point to the set of points it is below.

    We orient the preorder as ``x <= y  iff  x in minimal_open(y)``:
    x belongs to every open neighbourhood of y.  In the paper's
    specialisation topology, ``f <= e`` therefore means ``f in S_e``, i.e.
    f is a specialisation of e.

    Returns
    -------
    dict
        ``up[x]`` is ``{y | x <= y}`` — the points whose every
        neighbourhood contains ``x``.
    """
    up: dict[Point, frozenset[Point]] = {}
    for x in space.points:
        up[x] = frozenset(y for y in space.points if x in space.minimal_open(y))
    return up


def alexandrov_space(points: Iterable[Point],
                     up: Mapping[Point, Iterable[Point]]) -> FiniteSpace:
    """The Alexandrov topology of a preorder.

    ``up[x]`` must list the points ``y`` with ``x <= y`` (including x
    itself).  Opens are the down-closed sets under ``<=`` read as
    "x below y"; equivalently, a set ``U`` is open iff whenever ``y in U``
    and ``x <= y`` then ... we take the convention matching
    :func:`specialisation_preorder`: ``U`` is open iff for every ``y in U``
    all ``x`` with ``x <= y`` are in ``U`` — i.e. opens are down-sets,
    and ``minimal_open(y) = {x | x <= y}``.
    """
    pts = frozenset(points)
    below: dict[Point, set[Point]] = {p: set() for p in pts}
    for x, ys in up.items():
        for y in ys:
            below[y].add(x)
    for p in pts:
        below[p].add(p)

    minimal_opens = {p: frozenset(below[p]) for p in pts}
    if any(not mo <= pts for mo in minimal_opens.values()):
        # Stray points in ``up``: route through the validating
        # constructor so the caller gets the usual TopologyError.
        from repro.topology.generation import unions_of

        return FiniteSpace(pts, unions_of(minimal_opens.values()) | {pts})

    from repro.kernel import Universe, close_under_union, iter_bits

    uni = Universe(pts)
    carrier = uni.full_mask()
    masks = [uni.encode_strict(minimal_opens[uni.point_at(i)])
             for i in range(len(uni))]
    transitive = all(
        masks[q] & ~masks[p] == 0
        for p in range(len(masks)) for q in iter_bits(masks[p])
    )
    if not transitive:
        # Not a genuine preorder: the union closure of the below-sets need
        # not be intersection-closed, so let the validating constructor
        # decide (and raise) exactly as the naive route did.
        from repro.topology.generation import unions_of

        return FiniteSpace(pts, unions_of(minimal_opens.values()) | {pts})
    opens = close_under_union(masks)
    opens.add(carrier)
    # The down-sets of a preorder are closed under union and intersection
    # by construction, so the space is built on the trusted path with its
    # minimal-open cache pre-filled.
    return FiniteSpace._trusted(pts, uni.decode_many(opens),
                                {p: frozenset(mo) for p, mo in minimal_opens.items()})


def is_preorder(points: Iterable[Point], up: Mapping[Point, Iterable[Point]]) -> bool:
    """Whether ``up`` encodes a reflexive, transitive relation on ``points``."""
    pts = frozenset(points)
    rel = {p: frozenset(up.get(p, ())) & pts for p in pts}
    for p in pts:
        if p not in rel[p]:
            return False
    for x in pts:
        for y in rel[x]:
            if not rel[y] <= rel[x]:
                return False
    return True


def hasse_edges(points: Iterable[Point],
                up: Mapping[Point, Iterable[Point]]) -> frozenset[tuple[Point, Point]]:
    """The covering relation of a partial order given as up-sets.

    An edge ``(x, y)`` means ``x < y`` with no ``z`` strictly between.
    These edges are the arrows of the paper's ISA diagrams (child ISA
    parent, e.g. ``manager -> employee``).
    """
    pts = frozenset(points)
    strict: dict[Point, frozenset[Point]] = {
        p: frozenset(q for q in up.get(p, ()) if q != p and q in pts) for p in pts
    }
    edges: set[tuple[Point, Point]] = set()
    for x in pts:
        for y in strict[x]:
            if not any(y in strict[z] for z in strict[x] if z != y):
                edges.add((x, y))
    return frozenset(edges)


def topological_sort(points: Iterable[Point],
                     up: Mapping[Point, Iterable[Point]]) -> list[Point]:
    """A linear extension of the order: below-points come first.

    Deterministic (ties broken by ``repr``) so renders are stable.
    """
    pts = frozenset(points)
    remaining = {p: {q for q in up.get(p, ()) if q != p and q in pts} for p in pts}
    result: list[Point] = []
    while remaining:
        ready = sorted((p for p, above in remaining.items() if not above), key=repr)
        if not ready:
            raise ValueError("relation is cyclic; not a partial order")
        for p in reversed(ready):
            result.append(p)
            del remaining[p]
        for above in remaining.values():
            above.difference_update(ready)
    result.reverse()
    return result


def is_t0(space: FiniteSpace) -> bool:
    """T0 separation: distinct points have distinct neighbourhood systems.

    The Entity Type Axiom makes the specialisation topology T0: two entity
    types with the same attribute set (hence the same minimal open) are
    forbidden.  This predicate lets tests state the connection directly.
    """
    minimal = [space.minimal_open(p) for p in sorted(space.points, key=repr)]
    return len(set(minimal)) == len(minimal)


def t0_quotient(space: FiniteSpace) -> tuple[FiniteSpace, dict[Point, frozenset[Point]]]:
    """Identify topologically indistinguishable points.

    Returns the quotient space (points are frozensets of identified
    originals) and the projection map.  Applied to a schema violating the
    Entity Type Axiom, the quotient classes are exactly the synonym groups
    the paper says should be merged.
    """
    classes: dict[frozenset[Point], set[Point]] = {}
    for p in space.points:
        key = space.minimal_open(p)
        classes.setdefault(key, set()).add(p)
    blocks = {p: frozenset(members) for members in classes.values() for p in members}
    new_points = frozenset(blocks.values())
    new_opens = frozenset(
        frozenset(blocks[p] for p in u) for u in space.opens
    )
    return FiniteSpace(new_points, new_opens), blocks
