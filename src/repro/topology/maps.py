"""Maps between finite topological spaces.

Section 4 of the paper describes the relation between database intension
and extension as "an injective mapping between two topological spaces";
section 6 announces a sheaf-theoretic study of continuity under schema
updates.  This module supplies the required machinery: continuity, openness,
embeddings and homeomorphisms for concrete (dict-backed) maps.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping

from repro.errors import TopologyError
from repro.topology.space import FiniteSpace

Point = Hashable


class SpaceMap:
    """A function between the carriers of two finite spaces.

    Parameters
    ----------
    source, target:
        The spaces between which the map runs.
    mapping:
        A dict assigning a target point to every source point.
    """

    __slots__ = ("source", "target", "mapping")

    def __init__(self, source: FiniteSpace, target: FiniteSpace,
                 mapping: Mapping[Point, Point]):
        missing = source.points - frozenset(mapping)
        if missing:
            raise TopologyError(f"map undefined on points: {sorted(map(repr, missing))}")
        stray = {mapping[p] for p in source.points} - target.points
        if stray:
            raise TopologyError(f"map hits points outside target: {sorted(map(repr, stray))}")
        self.source = source
        self.target = target
        self.mapping = {p: mapping[p] for p in source.points}

    def __call__(self, point: Point) -> Point:
        return self.mapping[point]

    def image(self, subset=None) -> frozenset[Point]:
        """The image of ``subset`` (default: the whole source carrier)."""
        pts = self.source.points if subset is None else frozenset(subset)
        return frozenset(self.mapping[p] for p in pts if p in self.mapping)

    def preimage(self, subset) -> frozenset[Point]:
        """The preimage of a set of target points."""
        target_set = frozenset(subset)
        return frozenset(p for p in self.source.points if self.mapping[p] in target_set)

    # ------------------------------------------------------------------
    # structural properties
    # ------------------------------------------------------------------
    def is_injective(self) -> bool:
        return len(self.image()) == len(self.source.points)

    def is_surjective(self) -> bool:
        return self.image() == self.target.points

    def is_bijective(self) -> bool:
        return self.is_injective() and self.is_surjective()

    def is_continuous(self) -> bool:
        """Preimages of opens are open."""
        return all(self.source.is_open(self.preimage(u)) for u in self.target.opens)

    def is_open_map(self) -> bool:
        """Images of opens are open."""
        return all(self.target.is_open(self.image(u)) for u in self.source.opens)

    def is_embedding(self) -> bool:
        """Injective, continuous, and a homeomorphism onto its image.

        This is the property the paper requires of the intension-to-
        extension mapping: the source structure is preserved exactly
        inside the target.
        """
        if not (self.is_injective() and self.is_continuous()):
            return False
        from repro.topology.constructions import subspace

        img_space = subspace(self.target, self.image())
        inverse = {self.mapping[p]: p for p in self.source.points}
        return SpaceMap(img_space, self.source, inverse).is_continuous()

    def is_homeomorphism(self) -> bool:
        """Bijective, continuous, with a continuous inverse."""
        if not self.is_bijective() or not self.is_continuous():
            return False
        inverse = {v: k for k, v in self.mapping.items()}
        return SpaceMap(self.target, self.source, inverse).is_continuous()

    def compose(self, other: "SpaceMap") -> "SpaceMap":
        """``self after other``: first ``other``, then ``self``."""
        if other.target is not self.source and other.target != self.source:
            raise TopologyError("composition mismatch: other.target != self.source")
        return SpaceMap(other.source, self.target,
                        {p: self.mapping[other.mapping[p]] for p in other.source.points})


def identity_map(space: FiniteSpace) -> SpaceMap:
    """The identity map on a space (always a homeomorphism)."""
    return SpaceMap(space, space, {p: p for p in space.points})


def constant_map(source: FiniteSpace, target: FiniteSpace, value: Point) -> SpaceMap:
    """The map sending every source point to ``value`` (always continuous)."""
    return SpaceMap(source, target, {p: value for p in source.points})


def monotone_iff_continuous(f: SpaceMap) -> bool:
    """Check the Alexandrov equivalence: continuity == order preservation.

    For finite spaces, ``f`` is continuous iff it is monotone for the
    specialisation preorders.  Returning True means the two verdicts agree
    (whether both positive or both negative); this backs the paper's free
    interchange between ISA-hierarchy language and topology language.
    """
    from repro.topology.order import specialisation_preorder

    up_src = specialisation_preorder(f.source)
    up_tgt = specialisation_preorder(f.target)
    monotone = all(
        f(y) in up_tgt[f(x)]
        for x in f.source.points
        for y in up_src[x]
    )
    return monotone == f.is_continuous()
