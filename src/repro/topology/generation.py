"""Generating topologies from subbases and bases.

Section 3.1 of the paper generates the intension topology ``T`` from the
subbase ``S = {S_e | e in E}``: the family ``L`` of all *finite
intersections* of subbase elements is a base, and arbitrary unions of base
elements form the topology.  This module implements that construction for
arbitrary finite set families, plus the inverse questions the paper raises:
is a given family a subbase for a given topology, and which subbase members
are redundant (so that the designer may "choose a subbase which reflects the
bias to the Universe of Discourse")?

The hot constructions route through :mod:`repro.kernel`: points are
interned as bit positions, set families become ``int`` masks, and
generation exploits the Alexandrov structure (minimal opens via the
specialisation preorder) instead of closing the full family ``L``.  The
original frozenset implementations are retained as ``*_naive`` reference
oracles; ``tests/test_kernel_equivalence.py`` checks both routes agree on
randomized inputs.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from itertools import combinations
from typing import FrozenSet

from repro.kernel import (
    Universe,
    add_point_masks,
    add_subbase_member_masks,
    close_under_intersection,
    close_under_union,
    minimal_open_masks,
    minimal_opens_of_family,
    remove_point_masks,
    remove_subbase_member_masks,
    topology_masks_from_subbase,
)
from repro.topology.space import FiniteSpace

Point = Hashable
SetFamily = FrozenSet[FrozenSet[Point]]


def _freeze(sets: Iterable[Iterable[Point]]) -> frozenset[frozenset[Point]]:
    return frozenset(frozenset(s) for s in sets)


def intersections_of(subbase: Iterable[Iterable[Point]],
                     carrier: Iterable[Point]) -> SetFamily:
    """All finite intersections of subbase members (the paper's family ``L``).

    The empty intersection is the whole carrier by convention, so the
    result always contains ``carrier``.
    """
    uni = Universe(carrier)
    masks = [uni.encode_known(s) for s in subbase]
    return uni.decode_many(close_under_intersection(masks, uni.full_mask()))


def intersections_of_naive(subbase: Iterable[Iterable[Point]],
                           carrier: Iterable[Point]) -> SetFamily:
    """Reference oracle for :func:`intersections_of` (frozenset frontier)."""
    carrier_fs = frozenset(carrier)
    family = _freeze(subbase)
    closed: set[frozenset[Point]] = {carrier_fs}
    frontier: set[frozenset[Point]] = {carrier_fs}
    while frontier:
        new: set[frozenset[Point]] = set()
        for partial in frontier:
            for member in family:
                candidate = partial & member
                if candidate not in closed:
                    new.add(candidate)
        closed |= new
        frontier = new
    return frozenset(closed)


def unions_of(base: Iterable[Iterable[Point]]) -> SetFamily:
    """Close a family under arbitrary (here: finite) unions.

    The empty union contributes the empty set.
    """
    uni = Universe()
    masks = [uni.encode(s) for s in base]
    return uni.decode_many(close_under_union(masks))


def unions_of_naive(base: Iterable[Iterable[Point]]) -> SetFamily:
    """Reference oracle for :func:`unions_of` (frozenset frontier)."""
    family = sorted(_freeze(base), key=len)
    closed: set[frozenset[Point]] = {frozenset()}
    frontier: set[frozenset[Point]] = {frozenset()}
    while frontier:
        new: set[frozenset[Point]] = set()
        for partial in frontier:
            for member in family:
                candidate = partial | member
                if candidate not in closed:
                    new.add(candidate)
        closed |= new
        frontier = new
    return frozenset(closed)


def topology_from_subbase(points: Iterable[Point],
                          subbase: Iterable[Iterable[Point]]) -> FiniteSpace:
    """The coarsest topology on ``points`` in which every subbase member is open.

    This is the exact construction of section 3.1 — finite intersections
    (family ``L``) form a base, unions of base members form the topology —
    computed on the minimal base instead: the minimal open of ``x`` is the
    intersection of the subbase members containing ``x``, and the opens
    are exactly the unions of minimal opens.  The result is closed under
    union and intersection by construction, so the space skips
    re-validation; :func:`topology_from_subbase_naive` is the oracle.
    """
    uni = Universe(points)
    carrier = uni.full_mask()
    masks = [uni.encode_known(s) for s in subbase]
    minimal = minimal_open_masks(carrier, masks)
    opens = close_under_union(minimal.values())
    opens.add(carrier)
    minimal_sets = {uni.point_at(bit): uni.decode(m) for bit, m in minimal.items()}
    return FiniteSpace._trusted(frozenset(uni.points), uni.decode_many(opens),
                                minimal_sets)


def topology_from_subbase_naive(points: Iterable[Point],
                                subbase: Iterable[Iterable[Point]]) -> FiniteSpace:
    """Reference oracle: close under intersections, then unions, validate."""
    pts = frozenset(points)
    base = intersections_of_naive(subbase, pts)
    opens = unions_of_naive(base)
    return FiniteSpace(pts, opens)


def topology_from_base(points: Iterable[Point],
                       base: Iterable[Iterable[Point]]) -> FiniteSpace:
    """The topology generated by closing ``base`` under unions.

    Unlike :func:`topology_from_subbase` the family is *not* first closed
    under intersections; callers must supply a genuine base (the result is
    validated by :class:`FiniteSpace`, so a non-base raises).
    """
    pts = frozenset(points)
    opens = unions_of(base) | {pts}
    return FiniteSpace(pts, opens)


def is_base_for(family: Iterable[Iterable[Point]], space: FiniteSpace) -> bool:
    """Whether ``family`` is a base of ``space``.

    A family of opens is a base iff every open set is a union of members.
    """
    members = _freeze(family)
    if any(m not in space.opens for m in members):
        return False
    uni = Universe(space.points)
    member_masks = [uni.encode_strict(m) for m in members]
    for u in space.opens:
        target = uni.encode_strict(u)
        covered = 0
        for m in member_masks:
            if m & ~target == 0:
                covered |= m
        if covered != target:
            return False
    return True


def is_subbase_for(family: Iterable[Iterable[Point]], space: FiniteSpace) -> bool:
    """Whether ``family`` generates exactly the topology of ``space``."""
    generated = topology_from_subbase(space.points, family)
    return generated.opens == space.opens


def minimal_base(space: FiniteSpace) -> SetFamily:
    """The unique minimal base of a finite space: the minimal opens.

    Finite (Alexandrov) spaces have a canonical smallest base, namely
    ``{minimal_open(x) | x in X}``.  In the paper's specialisation topology
    this base is ``{S_e | e in E}`` itself whenever the Entity Type Axiom
    holds — every entity type is the focus of its own minimal open.
    """
    return frozenset(space.minimal_open(p) for p in space.points)


def minimal_base_naive(space: FiniteSpace) -> SetFamily:
    """Reference oracle for :func:`minimal_base`: per-point scan of opens."""
    out: set[frozenset[Point]] = set()
    for p in space.points:
        best = space.points
        for u in space.opens:
            if p in u and len(u) < len(best):
                best = u
        out.add(best)
    return frozenset(out)


# ----------------------------------------------------------------------
# incremental maintenance: derive an edited space from a generated one
#
# The paper's §4/§6 programme treats schema evolution as mappings between
# successive topological spaces; these helpers maintain a generated
# topology across subbase and carrier edits by patching the minimal-open
# table and the open family (see repro.kernel.topology) instead of
# regenerating from the subbase.  The full rebuild —
# ``topology_from_subbase`` on the edited family — is the reference
# oracle for every one of them, and the differential suite drives both
# routes.
# ----------------------------------------------------------------------

def _space_state(space: FiniteSpace) -> tuple[Universe, set[int], dict[int, int], int]:
    """The interned opens and minimal-open masks of a space.

    A space produced by one of the patch routes below is already in mask
    form (pre-filled kernel state and minimal masks), so a *chain* of
    edits re-reads it without re-encoding anything; other spaces pay one
    encode plus one minimal-opens sweep.
    """
    uni, open_masks, mask_set, full = space._masks()
    if space._minimal_masks is not None:
        return uni, set(mask_set), dict(space._minimal_masks), full
    minimal = minimal_opens_of_family(full, open_masks)
    return uni, set(mask_set), minimal, full


def _patched_space(uni: Universe, points: frozenset[Point],
                   minimal: dict[int, int], opens: set[int]) -> FiniteSpace:
    """Wrap patched masks in a trusted, lazily-decoded :class:`FiniteSpace`."""
    return FiniteSpace._from_masks(uni, points, opens, minimal)


def space_with_subbase_member(space: FiniteSpace,
                              member: Iterable[Point]) -> FiniteSpace:
    """The topology generated by ``subbase(space) + [member]``, patched.

    ``member`` is clipped to the carrier (the generation convention).
    Oracle: :func:`topology_from_subbase` over the grown family.
    """
    uni, opens, minimal, full = _space_state(space)
    member_mask = uni.encode_known(member)
    new_minimal, new_opens = add_subbase_member_masks(
        full, minimal, opens, member_mask)
    new_opens.add(full)
    return _patched_space(uni, space.points, new_minimal, new_opens)


def space_without_subbase_member(space: FiniteSpace,
                                 remaining: Iterable[Iterable[Point]],
                                 member: Iterable[Point]) -> FiniteSpace:
    """The topology generated by the subbase with ``member`` removed.

    ``remaining`` is the family *after* the removal (the caller knows
    which subbase generated ``space``; the space itself does not).
    Oracle: :func:`topology_from_subbase` over ``remaining``.
    """
    uni, opens, minimal, full = _space_state(space)
    remaining_masks = [uni.encode_known(m) for m in remaining]
    new_minimal, new_opens = remove_subbase_member_masks(
        full, remaining_masks, minimal, opens, uni.encode_known(member))
    new_opens.add(full)
    new_opens.add(0)
    return _patched_space(uni, space.points, new_minimal, new_opens)


def space_with_point(space: FiniteSpace, point: Point,
                     covered_by: Iterable[Point],
                     min_open: Iterable[Point]) -> FiniteSpace:
    """The space grown by one carrier point, patched.

    ``min_open`` is the new point's minimal open neighbourhood (the
    point itself may be omitted; it is added), and ``covered_by`` the
    existing points whose minimal open gains the new point.  Both must
    come from one coherent specialisation preorder (attribute
    containment, in the paper's spaces).  Oracle: regeneration from the
    edited subbase.
    """
    uni, opens, minimal, _ = _space_state(space)
    # The patched masks are relative to the space's interned bit order,
    # so the grown universe must reproduce it exactly before appending.
    grown = Universe(uni.points)
    bit_index = grown.intern(point)
    min_mask = grown.encode_strict(min_open) | (1 << bit_index)
    cover_mask = grown.encode_strict(covered_by)
    new_minimal, new_opens = add_point_masks(
        minimal, opens, bit_index, min_mask, cover_mask)
    # The new carrier needs no explicit add: the old carrier contains
    # min_open's other points, so the patch emits carrier | bit itself.
    return _patched_space(grown, space.points | {point}, new_minimal,
                          new_opens)


def space_without_point(space: FiniteSpace, point: Point) -> FiniteSpace:
    """The subspace on the carrier minus ``point``, patched.

    For the paper's attribute-containment spaces this is exactly the
    topology the shrunken schema regenerates: the specialisation
    preorder restricts pointwise, so the subbase of the remaining types
    generates the subspace topology.  Oracle: regeneration.
    """
    uni, opens, minimal, _ = _space_state(space)
    new_minimal, new_opens = remove_point_masks(
        minimal, opens, uni.index_of(point))
    return _patched_space(uni, space.points - {point}, new_minimal, new_opens)


def space_with_renamed_point(space: FiniteSpace, old: Point,
                             new: Point) -> FiniteSpace:
    """The space with one carrier point relabeled (structure unchanged).

    A pure rename is mask-identity: the open and minimal masks carry
    over untouched under a universe that reproduces the old bit order
    with the point relabeled, so a rename in the middle of an edit
    chain stays in mask form.  The decoded route remains as fallback
    for the corner where ``new`` collides with a point the universe
    interned earlier (possible only via a previously removed point's
    hole — live duplicates are excluded by the carrier).
    """
    uni, open_masks, mask_set, full = space._masks()
    if new not in uni:
        renamed = Universe(new if p == old else p for p in uni.points)
        if space._minimal_masks is not None:
            minimal = dict(space._minimal_masks)
        else:
            minimal = minimal_opens_of_family(full, open_masks)
        return FiniteSpace._from_masks(
            renamed, (space.points - {old}) | {new}, mask_set, minimal)

    def relabel(s: frozenset[Point]) -> frozenset[Point]:
        return frozenset(new if p == old else p for p in s)

    minimal_sets = {
        (new if p == old else p): relabel(space.minimal_open(p))
        for p in space.points
    }
    return FiniteSpace._trusted(
        relabel(space.points),
        frozenset(relabel(u) for u in space.opens),
        minimal_sets,
    )


def _opens_masks(uni: Universe, subbase_masks: list[int]) -> frozenset[int]:
    """The generated topology as a frozenset of masks (no decoding)."""
    return frozenset(topology_masks_from_subbase(uni.full_mask(), subbase_masks))


def redundant_in_subbase(points: Iterable[Point],
                         subbase: Iterable[Iterable[Point]]) -> SetFamily:
    """Subbase members removable without changing the generated topology.

    A member is *redundant* when the remaining family still generates the
    same topology — the paper calls the corresponding entity types
    "constructed types".  Redundancy is evaluated per member against the
    full family (removing several members at once may or may not preserve
    the topology; see :func:`irredundant_subbases`).
    """
    uni = Universe(points)
    family = _freeze(subbase)
    # Masks only drive the topology comparisons; membership and the
    # returned sets stay at the level of the original family (two
    # members may clip to the same mask yet each be removable alone).
    mask_of = {member: uni.encode_known(member) for member in family}
    reference = _opens_masks(uni, list(mask_of.values()))
    redundant: set[frozenset[Point]] = set()
    for member in family:
        rest = [mask_of[m] for m in family if m != member]
        if _opens_masks(uni, rest) == reference:
            redundant.add(member)
    return frozenset(redundant)


def irredundant_subbases(points: Iterable[Point],
                         subbase: Iterable[Iterable[Point]],
                         limit: int | None = None) -> list[SetFamily]:
    """All inclusion-minimal subfamilies generating the same topology.

    The paper: "the subbase per definition [is not] unique ... This gives
    the freedom to choose a subbase for T which reflects the bias to the
    Universe of Discourse."  This function enumerates the designer's
    choices.  Exponential in the family size; ``limit`` caps the number of
    answers for large inputs.
    """
    uni = Universe(points)
    family = sorted(_freeze(subbase), key=lambda s: (len(s), sorted(map(repr, s))))
    # Combos, minimality checks, and answers run over the original
    # members; masks only drive the generated-topology comparisons.
    mask_of = {member: uni.encode_known(member) for member in family}
    reference = _opens_masks(uni, list(mask_of.values()))
    answers: list[SetFamily] = []
    for size in range(len(family) + 1):
        for combo in combinations(family, size):
            candidate = frozenset(combo)
            if _opens_masks(uni, [mask_of[m] for m in combo]) != reference:
                continue
            if any(prior <= candidate for prior in answers):
                continue
            answers.append(candidate)
            if limit is not None and len(answers) >= limit:
                return answers
    return answers
