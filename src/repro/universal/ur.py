"""A minimal Universal Relation engine (the Maier baseline).

The paper's introduction targets this model: "Under the Universal
Relationship model the database is defined by a single relation.
Consequently all actions on the database require a projection first. ...
there is no proper separation between semantics at the intensional level
and semantics at the extensional level.  This leads to one approach where
Maier introduces 'placeholders': members of a set that might not be
members of that set after all (sic)."

We implement exactly the behaviour being argued against: the universal
scheme, a weak (placeholder-padded) instance, and window functions; the
view-update ambiguity it induces is measured in
:mod:`repro.universal.view_update`.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable

from repro.errors import RelationError
from repro.relational import Relation, Tuple, join_all, project


class Placeholder:
    """A Maier placeholder: a unique unknown occupying a universal slot."""

    _counter = itertools.count()

    __slots__ = ("ident", "attribute")

    def __init__(self, attribute: str):
        self.ident = next(Placeholder._counter)
        self.attribute = attribute

    def __repr__(self) -> str:
        return f"_|_{self.attribute}:{self.ident}"

    def __hash__(self) -> int:
        return hash((Placeholder, self.ident))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Placeholder) and other.ident == self.ident


def is_placeholder(value: object) -> bool:
    """Whether a universal-instance slot holds an unknown."""
    return isinstance(value, Placeholder)


class UniversalRelation:
    """The single-relation view of a multi-relation database.

    Parameters
    ----------
    relations:
        The stored base relations (any schemas; their union is the
        universal scheme U).
    """

    def __init__(self, relations: Iterable[Relation]):
        self.relations: list[Relation] = list(relations)
        if not self.relations:
            raise RelationError("a universal relation needs at least one base relation")
        self.scheme: frozenset[str] = frozenset().union(
            *(r.schema for r in self.relations)
        )

    @classmethod
    def from_extension(cls, db) -> "UniversalRelation":
        """Adapt a :class:`~repro.core.extension.DatabaseExtension`."""
        return cls(db.R(e) for e in db.schema.sorted_types())

    # ------------------------------------------------------------------
    # instances
    # ------------------------------------------------------------------
    def pure_join(self) -> Relation:
        """The natural join of every base relation.

        Dangling tuples vanish — the information loss the weak instance
        exists to paper over.
        """
        return join_all(self.relations)

    def weak_instance(self) -> Relation:
        """One universal row per base tuple, unknowns filled with placeholders.

        This is the simplest representative instance: no chase-driven
        placeholder identification is attempted, matching the "squint a
        little" spirit the paper quotes.
        """
        rows = []
        for relation in self.relations:
            for t in relation.tuples:
                padded = t.as_dict()
                for a in self.scheme - relation.schema:
                    padded[a] = Placeholder(a)
                rows.append(Tuple(padded))
        return Relation(self.scheme, rows)

    # ------------------------------------------------------------------
    # window functions
    # ------------------------------------------------------------------
    def window(self, attrs: Iterable[str]) -> Relation:
        """The window ``[X]``: total X-rows derivable from the instance.

        A weak-instance row contributes iff it is placeholder-free on
        every requested attribute.  Joinable combinations of base tuples
        contribute through :meth:`pure_join` as well; the union of the two
        sources is returned.
        """
        wanted = frozenset(attrs)
        stray = wanted - self.scheme
        if stray:
            raise RelationError(f"window on attributes outside U: {sorted(stray)}")
        rows = [
            t.project(wanted)
            for t in self.weak_instance().tuples
            if all(not is_placeholder(t[a]) for a in wanted)
        ]
        joined = self.pure_join()
        if wanted <= joined.schema:
            rows += [t.project(wanted) for t in joined.tuples]
        return Relation(wanted, rows)

    def window_schemas(self) -> list[frozenset[str]]:
        """The base schemas — the 'objects' a window can draw from."""
        return [r.schema for r in self.relations]
