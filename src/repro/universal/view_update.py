"""View-update ambiguity under the Universal Relation (experiment E12).

The axiom model's View Axiom guarantees one translation per view update
(:func:`repro.core.views.translation_count` is constantly 1).  Under the
Universal Relation a user updates a *window* — a set of attributes — and
the system must guess which base relations to touch.  This module
enumerates the candidate translations so the ambiguity can be counted and
compared.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from itertools import combinations

from repro.errors import RelationError
from repro.relational import Relation, Tuple, project
from repro.universal.ur import UniversalRelation


def covering_translations(ur: UniversalRelation,
                          attrs: Iterable[str]) -> list[frozenset[int]]:
    """All minimal sets of base relations that could receive an insertion.

    An insertion into window ``X`` must make the new row derivable, so the
    chosen relations' schemas must jointly cover ``X``.  Returned as
    index sets into ``ur.relations``; minimality is by set inclusion.
    """
    wanted = frozenset(attrs)
    stray = wanted - ur.scheme
    if stray:
        raise RelationError(f"attributes outside the universal scheme: {sorted(stray)}")
    schemas = ur.window_schemas()
    indices = [i for i, s in enumerate(schemas) if s & wanted]
    answers: list[frozenset[int]] = []
    for size in range(1, len(indices) + 1):
        for combo in combinations(indices, size):
            chosen = frozenset(combo)
            if any(prior <= chosen for prior in answers):
                continue
            covered = frozenset().union(*(schemas[i] for i in chosen)) & wanted
            if covered == wanted:
                answers.append(chosen)
    return answers


def insertion_translations(ur: UniversalRelation,
                           row: Mapping) -> list[dict[int, Tuple]]:
    """Concrete candidate translations of inserting ``row`` into its window.

    Each translation maps base-relation indices to the tuples that would
    be inserted (projections of the row; attributes the row does not
    supply are the placeholders Maier needs).  The *length of this list*
    is the ambiguity the View Axiom eliminates.
    """
    t = row if isinstance(row, Tuple) else Tuple(dict(row))
    out: list[dict[int, Tuple]] = []
    for cover in covering_translations(ur, t.schema):
        translation: dict[int, Tuple] = {}
        for i in sorted(cover):
            schema = ur.relations[i].schema
            known = schema & t.schema
            values = {a: t[a] for a in known}
            from repro.universal.ur import Placeholder

            for a in schema - known:
                values[a] = Placeholder(a)
            translation[i] = Tuple(values)
        out.append(translation)
    return out


def deletion_translations(ur: UniversalRelation,
                          row: Mapping) -> list[dict[int, Tuple]]:
    """Candidate translations of deleting ``row`` from its window.

    The row disappears only if every derivation of it is cut; each base
    tuple projecting onto the row is an independent candidate deletion,
    and any hitting set of the derivations works — we return the
    single-tuple candidates per relation, the usual source of ambiguity.
    """
    t = row if isinstance(row, Tuple) else Tuple(dict(row))
    out: list[dict[int, Tuple]] = []
    for i, relation in enumerate(ur.relations):
        overlap = relation.schema & t.schema
        if not overlap:
            continue
        for candidate in relation.tuples:
            if candidate.project(overlap) == t.project(overlap):
                out.append({i: candidate})
    return out


def ambiguity_report(ur: UniversalRelation, row: Mapping) -> dict[str, int]:
    """Counts for E12's comparison table."""
    return {
        "insertion_translations": len(insertion_translations(ur, row)),
        "deletion_translations": len(deletion_translations(ur, row)),
    }


def window_side_effects(ur: UniversalRelation, attrs: Iterable[str],
                        translation: dict[int, Tuple]) -> dict[frozenset[str], Relation]:
    """Windows whose contents change under a chosen translation.

    Applying a translation touches base relations shared by many windows;
    this measures the collateral visibility — the "semantic bonds"
    breakage the paper attributes to unconstrained projection.
    """
    before = {w: ur.window(w) for w in {frozenset(attrs)} | set(map(frozenset, ur.window_schemas()))}
    patched = list(ur.relations)
    for i, t in translation.items():
        patched[i] = patched[i].with_tuples([t])
    after_ur = UniversalRelation(patched)
    changed: dict[frozenset[str], Relation] = {}
    for w, old in before.items():
        new = after_ur.window(w)
        if new != old:
            changed[w] = new
    return changed
