"""The Universal Relation baseline (Maier 1983) the paper argues against."""

from repro.universal.ur import Placeholder, UniversalRelation, is_placeholder
from repro.universal.view_update import (
    ambiguity_report,
    covering_translations,
    deletion_translations,
    insertion_translations,
    window_side_effects,
)

__all__ = [
    "Placeholder",
    "UniversalRelation",
    "is_placeholder",
    "ambiguity_report",
    "covering_translations",
    "deletion_translations",
    "insertion_translations",
    "window_side_effects",
]
