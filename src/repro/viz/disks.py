"""The section-2 disk figure as a character matrix.

The paper draws each attribute as a disk and each entity instance as a
cut across the disks of its type: "Taking a single cut, as shown, results
in an instance of an entity type."  The faithful text rendering is a
matrix with one column per attribute disk and one row (cut) per entity
type, marking which disks the cut crosses.
"""

from __future__ import annotations

from repro.core.schema import Schema

FILLED = "●"
EMPTY = "·"


def disk_matrix(schema: Schema) -> str:
    """Entity-type cuts over attribute disks."""
    attrs = sorted(schema.used_property_names())
    name_width = max(len(e.name) for e in schema.sorted_types())
    header = " " * (name_width + 2) + "  ".join(f"{a:^{len(a)}}" for a in attrs)
    lines = [header]
    for e in schema.sorted_types():
        cells = "  ".join(
            f"{(FILLED if a in e.attributes else EMPTY):^{len(a)}}" for a in attrs
        )
        lines.append(f"{e.name:<{name_width}}  {cells}")
    return "\n".join(lines)


def instance_cut(db, type_name: str) -> str:
    """Render the cuts (instances) of one entity type with their values."""
    e = db.schema[type_name]
    attrs = sorted(e.attributes)
    rows = sorted(db.R(e).tuples, key=repr)
    if not rows:
        return f"{type_name}: (no instances)"
    widths = {
        a: max(len(a), *(len(str(t[a])) for t in rows))
        for a in attrs
    }
    header = "  ".join(f"{a:<{widths[a]}}" for a in attrs)
    lines = [f"cuts through {type_name}:", header,
             "  ".join("-" * widths[a] for a in attrs)]
    for t in rows:
        lines.append("  ".join(f"{str(t[a]):<{widths[a]}}" for a in attrs))
    return "\n".join(lines)
