"""Text renderings of the paper's tables.

The section-2 table lists each entity type with its attribute set; the
section-3 material adds the S/G/CO columns.  Output is deterministic
(sorted) so tests can golden-match it and benches can print it verbatim.
"""

from __future__ import annotations

from repro.core.contributors import canonical_contributors
from repro.core.generalisation import GeneralisationStructure
from repro.core.schema import Schema
from repro.core.specialisation import SpecialisationStructure


def _format_rows(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines += [fmt.format(*row) for row in rows]
    return "\n".join(lines)


def entity_table(schema: Schema) -> str:
    """The paper's section-2 table: entity vs attribute set.

    Also prints the ``A = {...}`` and ``E = {...}`` header lines exactly
    as the paper introduces them.
    """
    attrs = ", ".join(sorted(schema.used_property_names()))
    names = ", ".join(e.name for e in schema.sorted_types())
    rows = [
        [e.name, "{" + ", ".join(sorted(e.attributes)) + "}"]
        for e in schema.sorted_types()
    ]
    table = _format_rows(["entity", "attribute set"], rows)
    return f"A = {{{attrs}}}\nE = {{{names}}}\n\n{table}"


def specialisation_table(schema: Schema) -> str:
    """``V_a`` and ``S_e`` listings for section 3.1."""
    spec = SpecialisationStructure(schema)
    v_rows = [
        [f"V_{a}", "{" + ", ".join(sorted(e.name for e in schema.using(a))) + "}"]
        for a in sorted(schema.used_property_names())
    ]
    s_rows = [
        [f"S_{e.name}", "{" + ", ".join(sorted(f.name for f in spec.S(e))) + "}"]
        for e in schema.sorted_types()
    ]
    return (
        _format_rows(["usage set", "entity types"], v_rows)
        + "\n\n"
        + _format_rows(["specialisations", "entity types"], s_rows)
    )


def generalisation_table(schema: Schema) -> str:
    """``G_e`` listings for section 3.2."""
    gen = GeneralisationStructure(schema)
    rows = [
        [f"G_{e.name}", "{" + ", ".join(sorted(f.name for f in gen.G(e))) + "}"]
        for e in schema.sorted_types()
    ]
    return _format_rows(["generalisations", "entity types"], rows)


def contributor_table(schema: Schema) -> str:
    """``CO_e`` listings for section 3.3."""
    rows = []
    for e in schema.sorted_types():
        cos = canonical_contributors(schema, e)
        shown = "{" + ", ".join(sorted(c.name for c in cos)) + "}" if cos else "(primitive)"
        rows.append([f"CO_{e.name}", shown])
    return _format_rows(["contributors", "entity types"], rows)


def extension_table(db) -> str:
    """Relation cardinalities plus consistency verdicts for a state."""
    rows = []
    for e in db.schema.sorted_types():
        rows.append([e.name, str(len(db.R(e)))])
    verdicts = (
        f"containment: {'ok' if db.satisfies_containment() else 'VIOLATED'}\n"
        f"extension axiom: {'ok' if db.satisfies_extension_axiom() else 'VIOLATED'}"
    )
    return _format_rows(["relation", "instances"], rows) + "\n\n" + verdicts
