"""The containment (Venn) diagram of section 3.1, as an ASCII hierarchy.

The paper projects its disk structure onto "the more concise ven-diagram":
nested regions showing, e.g., *manager* inside *employee* inside *person*,
with *worksfor* straddling *employee* and *department*.  An ASCII forest
renders the same proper-subset hierarchy; types with several direct
generalisations (the straddlers) appear under each of them, marked.
"""

from __future__ import annotations

from repro.core.contributors import canonical_contributors
from repro.core.schema import Schema
from repro.core.specialisation import SpecialisationStructure


def isa_forest(schema: Schema) -> str:
    """Render the ISA hierarchy as an indented forest.

    Children are the direct specialisations; a node with several parents
    is annotated ``(also under ...)`` after its first appearance.
    """
    spec = SpecialisationStructure(schema)
    children: dict = {e: [] for e in schema}
    for child, parent in spec.isa_hasse():
        children[parent].append(child)
    for kids in children.values():
        kids.sort()
    roots = sorted(spec.roots())
    parents_of = {e: sorted(p for c, p in spec.isa_hasse() if c == e) for e in schema}

    lines: list[str] = []
    seen: set = set()

    def walk(node, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("`-- " if is_last else "|-- ")
        note = ""
        if node in seen and len(parents_of[node]) > 1:
            others = ", ".join(p.name for p in parents_of[node])
            note = f"  (shared: under {others})"
        lines.append(f"{prefix}{connector}{node.name}{note}")
        if node in seen:
            return
        seen.add(node)
        kids = children[node]
        for i, kid in enumerate(kids):
            extension = "" if is_root else ("    " if is_last else "|   ")
            walk(kid, prefix + extension, i == len(kids) - 1, False)

    for root in roots:
        walk(root, "", True, True)
    return "\n".join(lines)


def nested_regions(schema: Schema) -> str:
    """A bracket rendering of the subset regions, one line per type.

    ``manager c= employee c= person`` style chains make the "proper
    subset hierarchies in L" readable at a glance.
    """
    spec = SpecialisationStructure(schema)
    lines = []
    for e in schema.sorted_types():
        ups = sorted(
            (g for g in schema if g.attributes < e.attributes),
            key=lambda g: len(g.attributes),
        )
        chain = " c= ".join([e.name] + [g.name for g in reversed(ups)])
        lines.append(chain)
    return "\n".join(lines)


def contributor_diagram(schema: Schema) -> str:
    """Arrows from each compound type to its contributors (section 3.3)."""
    lines = []
    for e in schema.sorted_types():
        cos = sorted(canonical_contributors(schema, e))
        if cos:
            targets = ", ".join(c.name for c in cos)
            lines.append(f"{e.name} --> {targets}")
    return "\n".join(lines)
