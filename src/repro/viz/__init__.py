"""Deterministic text renderings of the paper's tables and figures."""

from repro.viz.tables import (
    contributor_table,
    entity_table,
    extension_table,
    generalisation_table,
    specialisation_table,
)
from repro.viz.venn import contributor_diagram, isa_forest, nested_regions
from repro.viz.disks import disk_matrix, instance_cut

__all__ = [
    "contributor_table",
    "entity_table",
    "extension_table",
    "generalisation_table",
    "specialisation_table",
    "contributor_diagram",
    "isa_forest",
    "nested_regions",
    "disk_matrix",
    "instance_cut",
]
