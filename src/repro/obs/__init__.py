"""repro.obs — dependency-free observability for the serving stack.

:mod:`repro.obs.metrics` holds the thread-safe instrument registry
(counters, gauges, fixed-bucket latency histograms with p50/p95/p99
summaries); :mod:`repro.obs.trace` the span tracer with its ring buffer
of recent traces and the zero-cost :data:`NULL_TRACER`.

The store engine, WAL, server, replica and cluster layers all accept an
optional registry/tracer pair (``attach_observability``); nothing here
imports those layers back, so the kernel and store stay importable
without any serving machinery.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WalProbe,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "WalProbe",
]
