"""Lightweight span tracing for the commit pipeline and the wire.

A :class:`Tracer` keeps a ring buffer of *completed* root traces, each a
plain JSON-codable dict::

    {"name": "server.dispatch", "start": ..., "end": ...,
     "duration": ..., "tags": {"op": "commit"},
     "spans": [ ...child dicts, same shape... ]}

Three entry points, cheapest first:

* ``tracer.record(trace)`` — append a prebuilt dict.  The store engine
  uses this on the commit hot path: it captures raw timestamps inline
  and assembles the trace *after* the critical section, so tracing
  costs one dict build + one deque append per commit.
* ``tracer.event(name, tags)`` — a zero-duration marker; the fault
  harness stamps injected faults into the same timeline this way.
* ``tracer.span(name, **tags)`` — a context manager for structural
  paths (server dispatch, replica sync, elections).  Spans nest via a
  thread-local stack: a span entered while another is open on the same
  thread becomes its child and folds into the parent's dict on exit;
  only root spans land in the ring.

:data:`NULL_TRACER` is the disabled tracer: ``span`` returns a shared
inert context manager, ``record``/``event`` drop their input, queries
return empty.  Code holds a tracer attribute unconditionally and never
branches on enablement.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed section; its own context manager (no contextlib
    indirection on the serving path)."""

    __slots__ = ("tracer", "name", "tags", "start", "end", "parent",
                 "children")

    def __init__(self, tracer: "Tracer", name: str, tags: dict):
        self.tracer = tracer
        self.name = name
        self.tags = tags
        self.start = 0.0
        self.end = 0.0
        self.parent: Span | None = None
        self.children: list[dict] = []

    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        self.parent = stack[-1] if stack else None
        stack.append(self)
        self.start = self.tracer.clock()
        return self

    def __exit__(self, *exc) -> None:
        self.end = self.tracer.clock()
        stack = self.tracer._stack()
        # Robust under interleaving (asyncio callbacks can close spans
        # out of order): remove this span wherever it sits, not only
        # when it is the top of the stack.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is self:
                del stack[i]
                break
        done = self.to_dict()
        if self.parent is not None:
            self.parent.children.append(done)
        else:
            self.tracer.record(done)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.end - self.start,
            "tags": self.tags,
            "spans": self.children,
        }


class Tracer:
    """Ring buffer of recent traces with thread-local span nesting."""

    enabled = True

    def __init__(self, capacity: int = 256,
                 clock: Callable[[], float] = time.perf_counter):
        self.capacity = capacity
        self.clock = clock
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **tags) -> Span:
        return Span(self, name, tags)

    def record(self, trace: dict) -> None:
        """Append a prebuilt trace dict to the ring (the fast path)."""
        with self._lock:
            self._ring.append(trace)

    def event(self, name: str, tags: dict | None = None) -> dict:
        """A zero-duration marker in the same timeline as the spans."""
        now = self.clock()
        trace = {"name": name, "start": now, "end": now, "duration": 0.0,
                 "tags": dict(tags) if tags else {}, "spans": []}
        self.record(trace)
        return trace

    def recent(self, n: int | None = None) -> list[dict]:
        """The most recent traces, oldest first (last ``n`` if given)."""
        with self._lock:
            items = list(self._ring)
        return items if n is None else items[len(items) - min(n, len(items)):]

    def slowest(self, n: int = 5, prefix: str = "") -> list[dict]:
        """The ``n`` longest recent traces (optionally filtered by name
        prefix), slowest first."""
        with self._lock:
            items = list(self._ring)
        if prefix:
            items = [t for t in items if t["name"].startswith(prefix)]
        items.sort(key=lambda t: -t["duration"])
        return items[:n]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)


class _NullSpan:
    """A shared inert context manager; do not mutate its ``tags``."""

    __slots__ = ()
    name = ""
    start = 0.0
    end = 0.0
    duration = 0.0

    @property
    def tags(self) -> dict:
        return {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


class NullTracer:
    """Tracer-shaped nothing: the zero-cost disabled path."""

    enabled = False
    capacity = 0
    _span = _NullSpan()

    def span(self, name: str, **tags) -> _NullSpan:
        return self._span

    def record(self, trace: dict) -> None:
        return None

    def event(self, name: str, tags: dict | None = None) -> None:
        return None

    def recent(self, n: int | None = None) -> list[dict]:
        return []

    def slowest(self, n: int = 5, prefix: str = "") -> list[dict]:
        return []

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()
