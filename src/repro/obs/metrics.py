"""Dependency-free metrics: counters, gauges, fixed-bucket histograms.

The registry is the one place runtime counts live.  PRs 5-9 grew ad-hoc
integer attributes (``StoreServer._commits``, ``ClientPool._evicted``,
``ReadBalancer.reads`` ...) that only tests ever read; this module gives
them a shared, thread-safe home that the ``metrics`` wire op and the
``repro metrics`` CLI can serve uniformly.

Design points:

* **Locked instruments.**  ``+= 1`` on a plain attribute is not atomic
  once increments cross the server's executor boundary, so every
  instrument takes a tiny per-instrument lock.  The cost is ~0.3us per
  update — bounded end-to-end by ``benchmarks/bench_a14_obs.py``.
* **Fixed-bucket histograms.**  Latency observations land in a fixed
  ladder of upper bounds (binary-search insert, O(log #buckets));
  percentiles report the *upper bound* of the bucket holding the
  rank-th sample, so p50/p95/p99 are conservative and never invent
  values between samples.  Observations past the last bound fall into
  an overflow bucket whose percentile reports the observed maximum.
* **Injectable clock.**  ``MetricsRegistry(clock=...)`` threads one
  time source through everything built on the registry (slow-commit
  gating, WAL fsync probes), so tests and the fault harness drive
  metrics deterministically with a fake clock.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from math import ceil
from typing import Callable, Iterable

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "WalProbe",
]

# Upper bounds (seconds) for latency histograms: 20us .. 5s in roughly
# half-decade steps.  The low end resolves the in-memory commit gate
# (tens of microseconds); the high end covers fsync stalls and chaos
# delays.
DEFAULT_BUCKETS: tuple[float, ...] = (
    20e-6, 50e-6, 100e-6, 200e-6, 500e-6,
    1e-3, 2e-3, 5e-3, 10e-3, 20e-3, 50e-3, 100e-3,
    200e-3, 500e-3, 1.0, 2.0, 5.0,
)


class Counter:
    """A monotonically increasing count.

    ``inc`` is locked so concurrent increments (server event loop vs.
    executor threads) never drop an update; reading ``value`` is a bare
    attribute load.
    """

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self._value})"


class Gauge:
    """A point-in-time level: set it, nudge it, read it."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self._value})"


class Histogram:
    """Fixed-bucket latency histogram with conservative percentiles.

    Buckets are *upper bounds*; an observation lands in the first bucket
    whose bound is >= the value (found by binary search).  ``percentile``
    returns the bound of the bucket holding the rank-th sample — for the
    overflow bucket (past the last bound) it returns the observed
    maximum, so a pathological outlier is reported exactly rather than
    clamped.  An empty histogram has ``None`` percentiles.
    """

    __slots__ = ("name", "buckets", "_counts", "_overflow", "_lock",
                 "_count", "_sum", "_min", "_max")

    def __init__(self, name: str,
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.name = name
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts = [0] * len(self.buckets)
        self._overflow = 0
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        i = bisect_left(self.buckets, value)
        with self._lock:
            if i < len(self._counts):
                self._counts[i] += 1
            else:
                self._overflow += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    def _percentile_locked(self, q: float) -> float | None:
        if self._count == 0:
            return None
        rank = max(1, ceil(q * self._count / 100.0))
        seen = 0
        for bound, n in zip(self.buckets, self._counts):
            seen += n
            if seen >= rank:
                return bound
        return self._max

    def percentile(self, q: float) -> float | None:
        """Upper bound of the bucket holding the ``q``-th percentile
        sample (observed max past the last bound; ``None`` when empty)."""
        with self._lock:
            return self._percentile_locked(q)

    def summary(self) -> dict:
        """count/sum/min/max plus p50/p95/p99, one consistent snapshot."""
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "p50": self._percentile_locked(50),
                "p95": self._percentile_locked(95),
                "p99": self._percentile_locked(99),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={self._count})"


class MetricsRegistry:
    """Thread-safe get-or-create registry of named instruments.

    ``counter``/``gauge``/``histogram`` return the existing instrument
    under a name or create it — callers hold the returned object and
    update it lock-free of the registry (each instrument locks itself).
    ``snapshot()`` renders everything as one JSON-codable dict, the
    payload of the ``metrics`` wire op.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str,
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name, buckets)
            return inst

    def snapshot(self) -> dict:
        """Every instrument's current reading, sorted by name."""
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        return {
            "counters": {n: c.value for n, c in sorted(counters)},
            "gauges": {n: g.value for n, g in sorted(gauges)},
            "histograms": {n: h.summary() for n, h in sorted(histograms)},
        }

    def to_dict(self) -> dict:
        """Alias of :meth:`snapshot` for serialization call sites."""
        return self.snapshot()


class WalProbe:
    """Duck-typed hook a :class:`~repro.store.wal.WriteAheadLog` consults
    on ``append``: counts records and bytes, times the fsync so the
    commit pipeline attributes the fsync phase separately from the
    buffered write, and remembers the last fsync cost for the
    slow-commit log.
    """

    __slots__ = ("clock", "appends", "bytes", "fsyncs", "last_fsync")

    def __init__(self, registry: MetricsRegistry,
                 prefix: str = "store.wal"):
        self.clock = registry.clock
        self.appends = registry.counter(f"{prefix}.appends")
        self.bytes = registry.counter(f"{prefix}.appended_bytes")
        self.fsyncs = registry.histogram("store.commit.fsync_seconds")
        self.last_fsync = 0.0

    def observe_append(self, nbytes: int, fsync_s: float) -> None:
        self.appends.inc()
        self.bytes.inc(nbytes)
        if fsync_s > 0.0:
            self.fsyncs.observe(fsync_s)
        self.last_fsync = fsync_s
