"""Array-based chase for the lossless-join test.

Rows are flat lists of symbol ids: ids below ``n_attrs`` are the
distinguished symbols ``a_1 .. a_n`` (one per attribute), higher ids are
the non-distinguished ``b_{ij}``.  Equating symbols goes through a
union-find with path halving whose union rule prefers the smaller id, so
distinguished symbols always survive a merge — the classical preference
rule for free.  Each FD application partitions the rows by their (current)
left-hand-side symbols with one dict pass instead of comparing all row
pairs.
"""

from __future__ import annotations


class UnionFind:
    """Union-find over ``0..n-1`` with path halving; smaller root wins."""

    __slots__ = ("parent",)

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> int:
        """Merge the classes of ``a`` and ``b``; the smaller root survives."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if rb < ra:
            ra, rb = rb, ra
        self.parent[rb] = ra
        return ra


IndexFD = tuple[tuple[int, ...], tuple[int, ...]]  # (lhs indices, rhs indices)


def chase_rows(n_attrs: int,
               parts: list[tuple[int, ...]],
               fds: list[IndexFD],
               max_rounds: int = 10_000) -> tuple[list[list[int]], UnionFind]:
    """Chase the decomposition tableau to a fixpoint.

    ``parts[i]`` lists the attribute indices row ``i`` is distinguished
    on.  Returns the rows (symbol ids as initially laid out) and the
    union-find carrying the equalities; resolve a cell with
    ``uf.find(row[a])``.
    """
    n_rows = len(parts)
    rows: list[list[int]] = []
    for i, part in enumerate(parts):
        base = n_attrs * (i + 1)
        row = [base + a for a in range(n_attrs)]
        for a in part:
            row[a] = a
        rows.append(row)
    uf = UnionFind(n_attrs * (n_rows + 1))
    find = uf.find
    union = uf.union
    for _ in range(max_rounds):
        changed = False
        for lhs, rhs in fds:
            groups: dict[tuple[int, ...], list[int]] = {}
            for row in rows:
                key = tuple(find(row[a]) for a in lhs)
                rep = groups.get(key)
                if rep is None:
                    groups[key] = row
                else:
                    for b in rhs:
                        s1, s2 = find(rep[b]), find(row[b])
                        if s1 != s2:
                            union(s1, s2)
                            changed = True
        if not changed:
            break
    return rows, uf


def is_lossless_indices(n_attrs: int,
                        parts: list[tuple[int, ...]],
                        fds: list[IndexFD],
                        max_rounds: int = 10_000) -> bool:
    """Whether some chased row becomes all-distinguished.

    Distinguished ids are exactly ``0..n_attrs-1`` and the union rule
    keeps roots minimal, so a cell is distinguished iff its root id is
    below ``n_attrs``.
    """
    rows, uf = chase_rows(n_attrs, parts, fds, max_rounds)
    find = uf.find
    return any(all(find(s) < n_attrs for s in row) for row in rows)
