"""Mask-level functional-dependency reasoning.

Attribute sets become ``int`` masks over an attribute :class:`~repro.kernel.universe.Universe`;
closure uses the Beeri–Bernstein counter algorithm: each FD keeps a count
of left-hand-side attributes not yet derived, an index maps every
attribute to the FDs awaiting it, and a worklist of newly derived
attributes drives counts to zero.  Total work is linear in the size of
the dependency set per query, versus the quadratic sweep-until-stable of
the naive closure loop.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.kernel.bitops import iter_bits
from repro.kernel.universe import Universe

MaskFD = tuple[int, int]  # (lhs mask, rhs mask)


def closure_mask(start: int, fds: list[MaskFD], n_bits: int) -> int:
    """The attribute closure of ``start`` under mask-encoded ``fds``."""
    closure = start
    counts: list[int] = []
    waiting: list[list[int]] = [[] for _ in range(n_bits)]
    queue: list[int] = []
    for i, (lhs, rhs) in enumerate(fds):
        missing = lhs & ~start
        counts.append(missing.bit_count())
        if missing:
            for a in iter_bits(missing):
                waiting[a].append(i)
        else:
            fresh = rhs & ~closure
            if fresh:
                closure |= fresh
                queue.append(fresh)
    while queue:
        for a in iter_bits(queue.pop()):
            for i in waiting[a]:
                counts[i] -= 1
                if counts[i] == 0:
                    fresh = fds[i][1] & ~closure
                    if fresh:
                        closure |= fresh
                        queue.append(fresh)
    return closure


class FDKernel:
    """A reusable compiled view of one FD set.

    Interning the attribute names and encoding the FDs once lets callers
    that issue many closure queries against the same dependencies
    (implication sweeps, candidate-key search, cover minimisation) pay
    the encoding cost a single time.
    """

    __slots__ = ("universe", "fds")

    def __init__(self, fds: Iterable, attrs: Iterable = ()):
        self.universe = Universe()
        for a in attrs:
            self.universe.intern(a)
        self.fds: list[MaskFD] = [
            (self.universe.encode(fd.lhs), self.universe.encode(fd.rhs))
            for fd in fds
        ]

    def closure_mask_of(self, start: int) -> int:
        return closure_mask(start, self.fds, len(self.universe))

    def closure(self, attrs: Iterable) -> frozenset:
        """The attribute-set closure of ``attrs`` (object level)."""
        start = self.universe.encode(attrs)
        # encode() may have interned new attributes; n_bits reflects that.
        return self.universe.decode(
            closure_mask(start, self.fds, len(self.universe))
        )

    def implies(self, fd) -> bool:
        """Whether the compiled FD set entails ``fd``."""
        rhs = self.universe.encode(fd.rhs)
        start = self.universe.encode(fd.lhs)
        return rhs & ~closure_mask(start, self.fds, len(self.universe)) == 0

    def is_superkey(self, attrs: Iterable, schema: Iterable) -> bool:
        """Whether ``attrs`` determines every attribute of ``schema``."""
        target = self.universe.encode(schema)
        start = self.universe.encode(attrs)
        return target & ~closure_mask(start, self.fds, len(self.universe)) == 0
