"""Interning of hashable points as bit positions.

A :class:`Universe` is the bridge between the object-level API (points are
arbitrary hashables: strings, ``EntityType``s, instance pairs) and the
mask-level kernels in this package.  Interning assigns each distinct point
a bit position in insertion order; set families then become families of
``int`` masks and every hot operation is a word operation.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.kernel.bitops import iter_bits

Point = Hashable


class Universe:
    """A bijection between points and bit positions.

    Positions are assigned by first intern, so two universes built from
    the same point sequence encode identically.  Carriers wider than a
    machine word are handled transparently: masks are Python ints.
    """

    __slots__ = ("_index", "_points")

    def __init__(self, points: Iterable[Point] = ()):
        self._index: dict[Point, int] = {}
        self._points: list[Point] = []
        for p in points:
            self.intern(p)

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def intern(self, point: Point) -> int:
        """The bit position of ``point``, assigning a fresh one if new."""
        idx = self._index.get(point)
        if idx is None:
            idx = len(self._points)
            self._index[point] = idx
            self._points.append(point)
        return idx

    def index_of(self, point: Point) -> int:
        """The bit position of an already-interned point (KeyError if not)."""
        return self._index[point]

    def point_at(self, index: int) -> Point:
        """The point interned at bit position ``index``."""
        return self._points[index]

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, point: Point) -> bool:
        return point in self._index

    def __iter__(self) -> Iterator[Point]:
        return iter(self._points)

    @property
    def points(self) -> tuple[Point, ...]:
        """All interned points in bit-position order."""
        return tuple(self._points)

    def full_mask(self) -> int:
        """The mask with every interned point's bit set."""
        return (1 << len(self._points)) - 1

    # ------------------------------------------------------------------
    # encode / decode
    # ------------------------------------------------------------------
    def encode(self, points: Iterable[Point]) -> int:
        """Mask of ``points``, interning any that are new."""
        mask = 0
        index = self._index
        for p in points:
            idx = index.get(p)
            if idx is None:
                idx = self.intern(p)
            mask |= 1 << idx
        return mask

    def encode_known(self, points: Iterable[Point]) -> int:
        """Mask of the already-interned members of ``points``.

        Unknown points are silently dropped — the clipping semantics the
        set-level generation code applies by intersecting with the
        carrier.
        """
        mask = 0
        index = self._index
        for p in points:
            idx = index.get(p)
            if idx is not None:
                mask |= 1 << idx
        return mask

    def encode_strict(self, points: Iterable[Point]) -> int:
        """Mask of ``points``; raises ``KeyError`` on any unknown point."""
        mask = 0
        index = self._index
        for p in points:
            mask |= 1 << index[p]
        return mask

    def decode(self, mask: int) -> frozenset[Point]:
        """The set of points whose bits are set in ``mask``."""
        pts = self._points
        return frozenset(pts[i] for i in iter_bits(mask))

    def decode_many(self, masks: Iterable[int]) -> frozenset[frozenset[Point]]:
        """Decode a family of masks, deduplicating shared members."""
        cache: dict[int, frozenset[Point]] = {}
        out = set()
        for m in masks:
            s = cache.get(m)
            if s is None:
                s = cache[m] = self.decode(m)
            out.add(s)
        return frozenset(out)
