"""Batch constraint engine and shared extension interning.

The paper's design axioms are *set-of-constraints* statements: an
Extension or Integrity axiom audit probes one database state against many
FDs, MVDs, and join dependencies at once.  :class:`CheckSet` compiles a
heterogeneous constraint set against one interned instance and evaluates
it in a single sweep — constraints are grouped by their left-hand-side
attribute set, so each partition index is built once (and cached on the
instance) and every constraint sharing it is judged inside the same group
loop, with optional kernel-side witnesses (violating row pairs, missing
swap rows, spurious join rows) as raw id rows.

:class:`ExtensionKernel` lifts the interning from one relation to a whole
``DatabaseExtension``: every relation is interned against *one symbol
table per attribute name*, so the cross-relation comparisons behind the
Containment Condition and the Extension Axiom — projections of a
specialisation landing inside a generalisation, compound rows embedding
in their contributor join — are pure id-space hash lookups with no
per-pair translation tables.  Membership of a full-width tuple in the
contributor join factorises through the components
(``t in R_1 * ... * R_n`` iff every projection ``pi_i(t)`` is in
``R_i``), so the Extension Axiom check never materialises the join.

Layering: like the rest of :mod:`repro.kernel`, this module never imports
the object level.  ``CheckSet`` wraps an :class:`InstanceKernel`;
``ExtensionKernel`` consumes a ``{name: relation-shaped object}`` mapping
and produces raw verdicts and id rows for the :mod:`repro.core` layer to
decode.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Mapping

from repro.kernel.instance import AttrName, IdRow, InstanceKernel, join_id_rows

# Module-level sweep counters.  The kernel never imports the serving
# layers, so it cannot hold a reference to a metrics registry; instead
# the counts accumulate here and the server samples them into its
# registry snapshot (``kernel.sweep.*`` metrics).  One short lock per
# CheckSet call, not per row — negligible against the sweep itself.
_SWEEP_LOCK = threading.Lock()
_SWEEP_COUNTS = {"runs": 0, "rechecks": 0, "groups_swept": 0,
                 "dirty_groups": 0}


def _count_sweep(key: str, n: int = 1) -> None:
    with _SWEEP_LOCK:
        _SWEEP_COUNTS[key] += n


def sweep_counts() -> dict[str, int]:
    """A snapshot of the process-wide :class:`CheckSet` sweep counters:
    full ``run`` sweeps, incremental ``recheck`` passes, lhs-groups
    walked by full sweeps, and dirty lhs-groups re-judged by rechecks."""
    with _SWEEP_LOCK:
        return dict(_SWEEP_COUNTS)


def reset_sweep_counts() -> None:
    """Zero the sweep counters (test isolation)."""
    with _SWEEP_LOCK:
        for key in _SWEEP_COUNTS:
            _SWEEP_COUNTS[key] = 0


def dirty_group_keys(idx_sets: Iterable[tuple[int, ...]],
                     rows: Iterable[IdRow],
                     ) -> dict[tuple[int, ...], set[IdRow]]:
    """The group keys a row delta touches, per grouping column tuple.

    This is the granularity of incremental constraint re-evaluation
    (:meth:`CheckSet.recheck` re-sweeps exactly these lhs-groups) and of
    the store's optimistic conflict detection: two updates can interact
    with a grouped sweep only where their key sets for some grouping
    overlap, so disjoint key footprints commute.
    """
    rows = list(rows)
    return {
        idxs: {tuple(row[i] for i in idxs) for row in rows}
        for idxs in idx_sets
    }


class BatchVerdict:
    """One constraint's outcome: the verdict plus raw id-row witnesses.

    ``witness`` is a tuple whose element shape depends on the constraint
    kind — ``(row, row)`` pairs for FDs, missing full-width rows for
    MVDs, spurious full-width rows for JDs — and is empty unless the
    sweep ran with ``witnesses=True``.
    """

    __slots__ = ("ok", "witness")

    def __init__(self, ok: bool, witness: tuple = ()):
        self.ok = ok
        self.witness = witness

    def __repr__(self) -> str:
        return f"BatchVerdict(ok={self.ok}, witnesses={len(self.witness)})"


class CheckSet:
    """A compiled heterogeneous constraint set over one interned instance.

    Add constraints under caller-chosen keys, then :meth:`run` the whole
    set: FDs and MVDs are grouped by their lhs column tuple so each
    partition is walked once for all of them, and JDs reuse the
    instance's cached id-level projections.  Verdict-only runs drop a
    violated constraint from the sweep immediately; witness runs keep
    scanning to collect every witness.

    Running with ``record=True`` additionally remembers, per constraint,
    *which* lhs-groups violated it; :meth:`recheck` then re-judges a
    delta-derived successor instance by re-sweeping only the lhs-groups
    the delta touched, merging the recorded verdicts for the rest.
    """

    __slots__ = ("instance", "_fds", "_mvds", "_jds", "_keys", "_violating")

    def __init__(self, instance: InstanceKernel):
        self.instance = instance
        self._fds: list[tuple] = []    # (key, lhs_idxs, rhs_idxs)
        self._mvds: list[tuple] = []   # (key, x_idxs, y_idxs, z_idxs)
        self._jds: list[tuple] = []    # (key, tuple of component idx tuples)
        self._keys: set = set()
        # key -> set of violating lhs keys (JDs use the sentinel key ()),
        # populated by run(record=True) and kept current by recheck().
        self._violating: dict | None = None

    def _claim(self, key) -> None:
        if key in self._keys:
            raise ValueError(f"duplicate CheckSet key: {key!r}")
        self._keys.add(key)

    def add_fd(self, key, lhs_attrs: Iterable[AttrName],
               rhs_attrs: Iterable[AttrName]) -> "CheckSet":
        """Register ``lhs -> rhs`` under ``key``."""
        self._claim(key)
        inst = self.instance
        self._fds.append(
            (key, inst.indices_of(lhs_attrs), inst.indices_of(rhs_attrs))
        )
        return self

    def add_mvd(self, key, lhs_attrs: Iterable[AttrName],
                rhs_attrs: Iterable[AttrName]) -> "CheckSet":
        """Register ``lhs ->> rhs`` (universe = the instance schema)."""
        self._claim(key)
        x, y, z = self.instance.mvd_indices(lhs_attrs, rhs_attrs)
        self._mvds.append((key, x, y, z))
        return self

    def add_jd(self, key,
               components: Iterable[Iterable[AttrName]]) -> "CheckSet":
        """Register ``JD[components]`` (components must cover the schema)."""
        self._claim(key)
        inst = self.instance
        self._jds.append(
            (key, tuple(inst.indices_of(c) for c in components))
        )
        return self

    def lhs_index_sets(self) -> tuple[tuple[int, ...], ...]:
        """The distinct grouping column tuples of the compiled FDs and
        MVDs — the granularity :func:`dirty_group_keys` (and therefore
        :meth:`recheck` and the store's conflict footprints) works at."""
        return tuple(self._grouped_entries())

    def _grouped_entries(self) -> dict[tuple[int, ...], list[list]]:
        """FD/MVD entries grouped by lhs column tuple.

        Entry layout: ``[key, kind, cols, ok, witness-list, violating-keys]``.
        """
        by_lhs: dict[tuple[int, ...], list[list]] = {}
        for key, lhs, rhs in self._fds:
            by_lhs.setdefault(lhs, []).append([key, "fd", rhs, True, [], set()])
        for key, x, y, z in self._mvds:
            by_lhs.setdefault(x, []).append(
                [key, "mvd", (y, z), True, [], set()])
        return by_lhs

    def run(self, witnesses: bool = False, record: bool = False) -> dict:
        """Evaluate every registered constraint in one grouped sweep.

        With ``record=True`` the sweep never retires a violated
        constraint early: it visits every lhs-group and remembers the
        violating group keys, arming :meth:`recheck`.
        """
        results: dict = {}
        recorded: dict = {} if record else None
        by_lhs = self._grouped_entries()
        _count_sweep("runs")
        if by_lhs:
            _count_sweep("groups_swept", len(by_lhs))
        for lhs, entries in by_lhs.items():
            self._sweep_lhs_group(lhs, entries, witnesses, record)
            for key, _, _, ok, wit, vkeys in entries:
                results[key] = BatchVerdict(ok, tuple(wit))
                if record:
                    recorded[key] = vkeys
        row_set = self.instance.row_set
        for key, parts in self._jds:
            if witnesses:
                joined = self.instance.joined_projection_rows(list(parts))
                spurious = joined - row_set
                verdict = BatchVerdict(not spurious, tuple(spurious))
            else:
                verdict = BatchVerdict(self.instance._joins_back(list(parts)))
            results[key] = verdict
            if record:
                recorded[key] = set() if verdict.ok else {()}
        if record:
            self._violating = recorded
        return results

    def _sweep_lhs_group(self, lhs: tuple[int, ...], entries: list[list],
                         witnesses: bool, record: bool = False) -> None:
        """One walk over the lhs partition, judging every entry in it."""
        rows = self.instance.rows
        live = list(entries)
        for group_key, group in self.instance.partition(lhs).items():
            if len(group) < 2 or not live:
                if not live:
                    break
                continue
            group_rows = [rows[r] for r in group]
            still = []
            for entry in live:
                kind = entry[1]
                if kind == "fd":
                    violated = self._judge_fd(group_rows, entry, witnesses)
                else:
                    violated = self._judge_mvd(group_rows, entry, witnesses)
                if violated:
                    entry[3] = False
                    if record:
                        entry[5].add(group_key)
                # Witness and recording runs keep scanning every group;
                # verdict-only runs retire a constraint at its first
                # violation.
                if witnesses or record or not violated:
                    still.append(entry)
            live = still

    # ------------------------------------------------------------------
    # incremental re-evaluation
    # ------------------------------------------------------------------
    def rebound(self, instance: InstanceKernel) -> "CheckSet":
        """A copy of this compiled set bound to a successor instance.

        ``instance`` must be delta-derived from (and therefore share the
        symbol tables and attribute layout of) the instance this set was
        compiled against — the compiled column indices and the recorded
        violating lhs keys stay meaningful only in that shared id space.
        The copy owns its recorded state, so rechecking it never mutates
        the original (which may still serve other successors).
        """
        twin = object.__new__(CheckSet)
        twin.instance = instance
        twin._fds = self._fds
        twin._mvds = self._mvds
        twin._jds = self._jds
        twin._keys = self._keys
        twin._violating = None if self._violating is None else {
            key: set(vkeys) for key, vkeys in self._violating.items()
        }
        return twin

    def recheck(self, added_rows: Iterable[IdRow] = (),
                removed_rows: Iterable[IdRow] = ()) -> dict:
        """Re-judge after a row delta, sweeping only dirty lhs-groups.

        Requires a prior :meth:`run` with ``record=True`` (possibly on
        an ancestor instance, carried over via :meth:`rebound`).
        ``added_rows``/``removed_rows`` are the full-width id rows the
        delta touched; every FD/MVD is re-judged only at the lhs keys
        those rows project to, while the recorded verdicts stand for
        every other group.  JDs are global (any delta can create or
        destroy spurious join rows), so they re-join in full.  The
        recorded state is updated, so rechecks chain.
        """
        if self._violating is None:
            raise ValueError("recheck needs a prior run(record=True)")
        changed = tuple(added_rows) + tuple(removed_rows)
        results: dict = {}
        rows = self.instance.rows
        by_lhs = self._grouped_entries()
        dirty_keys = dirty_group_keys(by_lhs, changed)
        _count_sweep("rechecks")
        dirty_total = sum(len(keys) for keys in dirty_keys.values())
        if dirty_total:
            _count_sweep("dirty_groups", dirty_total)
        for lhs, entries in by_lhs.items():
            dirty = dirty_keys[lhs]
            part = self.instance.partition(lhs) if dirty else {}
            judged: dict[tuple, list | None] = {
                key: part.get(key) for key in dirty
            }
            for entry in entries:
                key = entry[0]
                vkeys = self._violating[key] - dirty
                for group_key, group in judged.items():
                    if group is None or len(group) < 2:
                        continue
                    group_rows = [rows[r] for r in group]
                    if entry[1] == "fd":
                        violated = self._judge_fd(group_rows, entry, False)
                    else:
                        violated = self._judge_mvd(group_rows, entry, False)
                    if violated:
                        vkeys.add(group_key)
                self._violating[key] = vkeys
                results[key] = BatchVerdict(not vkeys)
        for key, parts in self._jds:
            ok = self.instance._joins_back(list(parts))
            self._violating[key] = set() if ok else {()}
            results[key] = BatchVerdict(ok)
        return results

    @staticmethod
    def _judge_fd(group_rows: list[IdRow], entry: list,
                  witnesses: bool) -> bool:
        rhs = entry[2]
        if not witnesses:
            first = group_rows[0]
            for row in group_rows[1:]:
                for i in rhs:
                    if row[i] != first[i]:
                        return True
            return False
        buckets: dict[IdRow, list[IdRow]] = {}
        for row in group_rows:
            buckets.setdefault(tuple(row[i] for i in rhs), []).append(row)
        if len(buckets) < 2:
            return False
        wit = entry[4]
        blocks = list(buckets.values())
        for bi, block in enumerate(blocks):
            for other in blocks[bi + 1:]:
                for ra in block:
                    for rb in other:
                        wit.append((ra, rb))
        return True

    @staticmethod
    def _judge_mvd(group_rows: list[IdRow], entry: list,
                   witnesses: bool) -> bool:
        y, z = entry[2]
        ys = {tuple(row[i] for i in y) for row in group_rows}
        zs = {tuple(row[i] for i in z) for row in group_rows}
        if len(ys) * len(zs) == len(group_rows):
            return False
        if witnesses:
            wit = entry[4]
            present = set(group_rows)
            base = list(group_rows[0])
            for yv in ys:
                for i, v in zip(y, yv):
                    base[i] = v
                for zv in zs:
                    for i, v in zip(z, zv):
                        base[i] = v
                    candidate = tuple(base)
                    if candidate not in present:
                        wit.append(candidate)
        return True


class ExtensionKernel:
    """Shared per-attribute interning across all relations of an extension.

    Every relation is interned through one ``{attr: (table, symbols)}``
    map, so equal values of one attribute receive equal ids in *every*
    relation and cross-relation row comparisons need no translation.
    Relations (and therefore instances) are immutable; a
    ``DatabaseExtension`` builds one kernel lazily and keeps it for life.
    """

    __slots__ = ("shared", "instances")

    def __init__(self, relations: Mapping[str, object]):
        self.shared: dict[AttrName, tuple[dict, list]] = {}
        self.instances: dict[str, InstanceKernel] = {
            name: InstanceKernel(rel, shared=self.shared)
            for name, rel in sorted(relations.items())
        }

    def instance(self, name: str) -> InstanceKernel:
        """The shared-space interned instance of relation ``name``."""
        return self.instances[name]

    # ------------------------------------------------------------------
    # cross-relation id-space operations
    # ------------------------------------------------------------------
    def project_named(self, name: str,
                      attrs: Iterable[AttrName]) -> set[IdRow]:
        """Distinct id rows of ``pi_attrs(R_name)``, columns in sorted
        attribute order, in the shared symbol space (cached)."""
        inst = self.instances[name]
        return inst.projection(inst.indices_of(attrs))

    def stray_projection(self, s_name: str, e_attrs: Iterable[AttrName],
                         e_name: str) -> set[IdRow]:
        """``pi_e(R_s) - R_e`` as id rows — the Containment Condition's
        violation set for one (specialisation, generalisation) pair.

        Both sides are full-width rows over ``e_attrs`` in sorted order
        and share every attribute's symbol table, so the difference is a
        plain set subtraction.
        """
        return self.project_named(s_name, e_attrs) - \
            self.instances[e_name].row_set

    def join_named(self, names: Iterable[str],
                   ) -> tuple[tuple[AttrName, ...], set[IdRow]]:
        """The n-ary natural join of whole relations, in id space.

        Column labels are attribute *names* (``join_id_rows`` treats
        labels opaquely), which is sound exactly because the symbol
        spaces coincide per attribute.  Returns the sorted output
        attributes and the joined rows.
        """
        names = list(names)
        first = self.instances[names[0]]
        attrs: tuple = first.attrs
        rows: set[IdRow] = first.row_set
        for name in names[1:]:
            inst = self.instances[name]
            if rows:
                attrs, rows = join_id_rows(attrs, rows, inst.attrs,
                                           inst.row_set)
            else:
                # An empty intermediate join stays empty, but the output
                # schema must still be the full attribute union.
                attrs = tuple(sorted(set(attrs) | set(inst.attrs)))
        return attrs, rows

    def compound_report(self, e_name: str, contributor_names: Iterable[str],
                        ) -> tuple[list[IdRow], list[list[IdRow]]]:
        """The Extension Axiom's two failure modes for one compound type.

        Returns ``(unsupported, collisions)`` over full-width id rows of
        ``R_e``: rows whose contributor projection is missing from the
        contributor join, and groups of >=2 rows sharing one contributor
        combination.  Join membership of a row spanning the combined
        attributes factorises through the components, so each contributor
        costs one projected-key lookup per compound row and the join
        itself is never materialised.
        """
        e_inst = self.instances[e_name]
        probes = []
        combined: set[AttrName] = set()
        for c_name in contributor_names:
            c_inst = self.instances[c_name]
            combined.update(c_inst.attrs)
            probes.append((e_inst.indices_of(c_inst.attrs), c_inst.row_set))
        image_idxs = e_inst.indices_of(combined)
        unsupported: list[IdRow] = []
        groups: dict[IdRow, list[IdRow]] = {}
        for row in e_inst.rows:
            for idxs, c_rows in probes:
                if tuple(row[i] for i in idxs) not in c_rows:
                    unsupported.append(row)
                    break
            groups.setdefault(
                tuple(row[i] for i in image_idxs), []
            ).append(row)
        collisions = [g for g in groups.values() if len(g) > 1]
        return unsupported, collisions

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    def decode_named(self, attrs: Iterable[AttrName], rows: Iterable[IdRow]):
        """Decode id rows over ``attrs`` (sorted-attribute column order)
        into sorted ``(attr, value)`` item tuples via the shared tables."""
        names = tuple(sorted(attrs))
        columns = tuple(self.shared[a][1] for a in names)
        width = range(len(names))
        for row in rows:
            yield tuple((names[p], columns[p][row[p]]) for p in width)
