"""Word-level primitives shared by the bitset kernels.

Masks are plain Python ``int``s: bit ``i`` set means "element ``i`` is in
the set".  Python integers are arbitrary-precision, so carriers larger
than a machine word spill into multi-limb integers transparently — the
kernels never need a separate big-set representation.  All hot loops in
this package stay on ``int`` operations (``&``, ``|``, ``^``,
``bit_count``) which CPython executes in C.
"""

from __future__ import annotations

from collections.abc import Iterator


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bit_indices(mask: int) -> list[int]:
    """The set bit positions of ``mask`` as a list (ascending)."""
    return list(iter_bits(mask))


def popcount(mask: int) -> int:
    """Number of set bits (delegates to ``int.bit_count``)."""
    return mask.bit_count()


def is_subset(a: int, b: int) -> bool:
    """Whether the set encoded by ``a`` is contained in ``b``."""
    return a & ~b == 0


def close_under(op, masks, seeds: set[int]) -> set[int]:
    """Close ``seeds`` under ``op`` with every member of ``masks``.

    Frontier-deduplicated fixpoint: each newly produced mask is combined
    with every family member exactly once, so the cost is
    ``O(|result| * |masks|)`` int operations rather than the repeated
    full-product sweeps of the naive closure.
    """
    family = list(dict.fromkeys(masks))
    closed = set(seeds)
    frontier = list(closed)
    while frontier:
        new: list[int] = []
        for partial in frontier:
            for member in family:
                candidate = op(partial, member)
                if candidate not in closed:
                    closed.add(candidate)
                    new.append(candidate)
        frontier = new
    return closed


def close_under_intersection(masks, carrier: int) -> set[int]:
    """All finite intersections of ``masks`` (clipped to ``carrier``).

    The empty intersection contributes ``carrier`` itself, mirroring the
    paper's convention for the base family ``L``.
    """
    return close_under(int.__and__, [m & carrier for m in masks], {carrier})


def close_under_union(masks) -> set[int]:
    """All unions of submasks of ``masks``; the empty union contributes 0."""
    return close_under(int.__or__, masks, {0})
