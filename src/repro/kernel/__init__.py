"""Bitset semantics kernel.

The hot paths of the reproduction — subbase→topology generation (§3.1),
attribute/FD closure (§5), and the chase behind the View and Extension
Axioms — all reduce to operations on small finite set families.  This
package interns points as bit positions (:class:`Universe`) and runs the
algorithms on ``int`` masks and flat arrays; the object-level modules in
:mod:`repro.topology` and :mod:`repro.relational` route through these
kernels behind their existing signatures and keep their original
implementations as ``*_naive`` reference oracles (cross-validated in
``tests/test_kernel_equivalence.py``).  See ``README.md`` in this
directory for the architecture notes.
"""

from repro.kernel.bitops import (
    bit_indices,
    close_under_intersection,
    close_under_union,
    is_subset,
    iter_bits,
    popcount,
)
from repro.kernel.batch import (
    BatchVerdict,
    CheckSet,
    ExtensionKernel,
    dirty_group_keys,
)
from repro.kernel.chase import UnionFind, chase_rows, is_lossless_indices
from repro.kernel.delta import (
    InstanceDelta,
    KernelDelta,
    derive_extension_kernel,
    derive_instance,
)
from repro.kernel.fd import FDKernel, closure_mask
from repro.kernel.instance import InstanceKernel, join_id_rows, join_interned
from repro.kernel.topology import (
    add_point_masks,
    add_subbase_member_masks,
    base_masks_from_subbase,
    extend_union_closure,
    minimal_open_masks,
    minimal_opens_of_family,
    remove_point_masks,
    remove_subbase_member_masks,
    topology_masks_from_subbase,
    union_closure_masks,
)
from repro.kernel.universe import Universe

__all__ = [
    "Universe",
    "UnionFind",
    "FDKernel",
    "InstanceKernel",
    "BatchVerdict",
    "CheckSet",
    "ExtensionKernel",
    "InstanceDelta",
    "KernelDelta",
    "derive_instance",
    "derive_extension_kernel",
    "dirty_group_keys",
    "join_id_rows",
    "join_interned",
    "closure_mask",
    "chase_rows",
    "is_lossless_indices",
    "iter_bits",
    "bit_indices",
    "popcount",
    "is_subset",
    "close_under_intersection",
    "close_under_union",
    "minimal_open_masks",
    "minimal_opens_of_family",
    "base_masks_from_subbase",
    "topology_masks_from_subbase",
    "union_closure_masks",
    "extend_union_closure",
    "add_subbase_member_masks",
    "remove_subbase_member_masks",
    "add_point_masks",
    "remove_point_masks",
]
