"""Incremental derivation of kernel objects across database updates.

The object level treats every database state as an immutable value: an
``insert``/``delete``/``replace`` produces a *new* ``DatabaseExtension``,
and until now each new state re-interned every relation from zero.  The
paper's §4/§6 reading is different — successive states are related by a
mapping, not strangers — and the kernel can exploit exactly that: the
per-attribute symbol tables of :class:`~repro.kernel.batch.ExtensionKernel`
are **append-only**, so a successor state's kernel can share its
predecessor's tables by reference and patch only what changed.

Sharing contract (why this is sound):

* Symbol tables only grow.  An id assigned to a value never moves, so a
  predecessor's interned rows stay valid when a successor appends new
  symbols to the shared tables, and id rows of the two states remain
  directly comparable.
* Untouched relations share their :class:`InstanceKernel` objects by
  reference — rows, row sets, and every cached partition/projection
  index come along for free.
* A touched relation gets a *patched* instance: the new row list is the
  old one minus the removed id rows plus the added ones, and every
  cached partition/projection index is patched in the size of the delta
  (plus one remap pass when rows were removed) instead of being rebuilt
  from the object level.

The functions here return the raw id-row changes
(:class:`InstanceDelta`) alongside each derived object, because the
dirty-context audit layer (``CheckSet.recheck``, the chained caches on
``DatabaseExtension``) needs to know which lhs-groups an update touched.

Layering: like the rest of :mod:`repro.kernel`, nothing here imports the
object level.  Added and removed rows arrive as sorted ``(attr, value)``
item tuples — the exact shape ``Tuple`` iteration produces — and leave
as id rows in the shared symbol space.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.kernel.batch import ExtensionKernel
from repro.kernel.instance import IdRow, InstanceKernel, intern_row


class InstanceDelta:
    """The id rows one derivation step actually added and removed.

    Both are in the instance's (shared) symbol space; rows whose
    insertion was a no-op (already present) or whose removal could not
    match (value never interned, row absent) are filtered out, so the
    delta describes the real set difference between the two states.
    """

    __slots__ = ("added", "removed")

    def __init__(self, added: tuple = (), removed: tuple = ()):
        self.added = added
        self.removed = removed

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)

    def __repr__(self) -> str:
        return f"InstanceDelta(+{len(self.added)}, -{len(self.removed)})"


class KernelDelta:
    """Per-relation :class:`InstanceDelta` of one kernel derivation step.

    ``instances[name]`` is ``None`` for a wholesale-replaced relation
    (its rows were re-interned, no row-level delta exists); relation
    names absent from the mapping were untouched.
    """

    __slots__ = ("instances",)

    def __init__(self, instances: Mapping[str, InstanceDelta | None]):
        self.instances = dict(instances)

    def __repr__(self) -> str:
        return f"KernelDelta({sorted(self.instances)})"


def _encode_known(tables: list, items) -> IdRow | None:
    """Encode a row without growing the tables; ``None`` when some value
    was never interned (such a row cannot be present in the instance)."""
    row = []
    for pos, (_, value) in enumerate(items):
        sid = tables[pos].get(value)
        if sid is None:
            return None
        row.append(sid)
    return tuple(row)


def derive_instance(parent: InstanceKernel,
                    added_items: Iterable = (),
                    removed_items: Iterable = (),
                    ) -> tuple[InstanceKernel, InstanceDelta]:
    """The successor instance ``(parent - removed) + added``, patched.

    ``added_items``/``removed_items`` are rows as sorted ``(attr,
    value)`` item tuples over the parent's schema.  The derived instance
    shares the parent's attribute layout and symbol tables by reference
    (append-only, so the parent stays valid) and carries patched copies
    of every partition/projection index the parent had cached — each
    patched in ``O(|delta|)`` per index, plus one remap pass over the
    row list when rows were removed.

    Returns the instance together with the :class:`InstanceDelta` of id
    rows that actually changed.  A no-op delta returns the parent
    itself.
    """
    tables, symbols = parent.tables, parent.symbols
    removed: set[IdRow] = set()
    for items in removed_items:
        row = _encode_known(tables, items)
        if row is not None and row in parent.row_set:
            removed.add(row)
    added: list[IdRow] = []
    added_set: set[IdRow] = set()
    for items in added_items:
        row = intern_row(tables, symbols, items)
        if row in added_set:
            continue
        if row in parent.row_set and row not in removed:
            continue
        added_set.add(row)
        added.append(row)
    if not added and not removed:
        return parent, InstanceDelta()

    old_rows = parent.rows
    if removed:
        new_rows: list[IdRow] = []
        remap: list[int] = []
        for row in old_rows:
            if row in removed:
                remap.append(-1)
            else:
                remap.append(len(new_rows))
                new_rows.append(row)
    else:
        new_rows = list(old_rows)
        remap = None
    base = len(new_rows)
    new_rows.extend(added)
    inst = InstanceKernel._from_parts(parent, new_rows)

    for idxs, part in parent._partitions.items():
        if remap is None:
            new_part = {key: list(group) for key, group in part.items()}
        else:
            new_part = {}
            for key, group in part.items():
                kept = [remap[r] for r in group if remap[r] >= 0]
                if kept:
                    new_part[key] = kept
        for i, row in enumerate(added):
            new_part.setdefault(
                tuple(row[j] for j in idxs), []
            ).append(base + i)
        inst._partitions[idxs] = new_part
    for idxs, proj in parent._projections.items():
        part = inst._partitions.get(idxs)
        if part is not None:
            # A projection onto idxs is exactly the key set of the
            # partition on idxs.
            inst._projections[idxs] = set(part)
        elif remap is None:
            grown = set(proj)
            for row in added:
                grown.add(tuple(row[j] for j in idxs))
            inst._projections[idxs] = grown
        else:
            # A removed row may or may not have been a key's last
            # support; without the partition's counts, rebuild from the
            # (id-level) rows — still no object-level work.
            inst._projections[idxs] = {
                tuple(row[j] for j in idxs) for row in new_rows
            }
    return inst, InstanceDelta(tuple(added), tuple(removed))


def derive_extension_kernel(parent: ExtensionKernel,
                            patches: Mapping[str, tuple] = {},
                            replacements: Mapping[str, object] = {},
                            ) -> tuple[ExtensionKernel, KernelDelta]:
    """The successor state's kernel, derived from ``parent``.

    ``patches`` maps relation names to ``(added_items, removed_items)``
    row-delta pairs (sorted item tuples); ``replacements`` maps names to
    whole relation-shaped objects that are re-interned from scratch —
    against the *shared* tables, so cross-relation id comparability is
    preserved.  Untouched relations share their instances by reference.

    Returns the kernel plus the :class:`KernelDelta` describing what
    changed at the id level (``None`` entries for replacements).
    """
    kern = object.__new__(ExtensionKernel)
    kern.shared = parent.shared
    instances = dict(parent.instances)
    deltas: dict[str, InstanceDelta | None] = {}
    for name, (added, removed) in patches.items():
        inst, delta = derive_instance(instances[name], added, removed)
        instances[name] = inst
        deltas[name] = delta
    for name, rel in replacements.items():
        instances[name] = InstanceKernel(rel, shared=parent.shared)
        deltas[name] = None
    kern.instances = instances
    return kern, KernelDelta(deltas)
