"""Kernel-interned relation instances.

The instance-level predicates of the section-6 programme — ``holds_in``
for FDs, the MVD swap closure, JD reconstruction, and the instance
lossless-join check — all reduce to grouping and joining rows on
attribute subsets.  Running them over dict-backed ``Tuple`` objects pays
a projection (sort + hash) per tuple per query.  This module interns a
:class:`~repro.relational.relation.Relation` once into a column-major
array of small integer *symbol ids* over per-attribute symbol tables;
the predicates then operate on plain ``tuple[int, ...]`` keys, and
per-attribute-set partition indexes are cached on the interned instance
(the LHS-partition idea of :mod:`repro.kernel.chase`, lifted to concrete
rows).

Layering: like :mod:`repro.kernel.universe`, this module never imports
the object level.  It consumes any relation-shaped object (``.schema``
plus ``.tuples`` yielding sorted ``(attr, value)`` items) and produces
raw data — verdicts, id rows, or sorted item tuples ready for a trusted
``Tuple`` constructor — so the :mod:`repro.relational` modules can route
through it without an import cycle.

Caching and invalidation: relations are immutable values, so an
interned instance can never go stale — every derived relation
(``with_tuples``, repairs, projections) is a new object and interns
fresh (or is patched from its predecessor by :mod:`repro.kernel.delta`).
:meth:`InstanceKernel.of` memoises instances on the relation itself in a
bounded LRU table; partition and projection indexes live on the instance
and share its lifetime.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable, Iterable

AttrName = str
Value = Hashable
IdRow = tuple  # tuple[int, ...] — one interned row, columns in sorted-attr order


def intern_row(tables: list, symbols: list, items) -> IdRow:
    """Intern one row of sorted ``(attr, value)`` items (get-or-append).

    The single definition of the interning protocol: ids are assigned
    per attribute in first-seen order and only ever appended, shared by
    fresh construction here and by the patch path in
    :mod:`repro.kernel.delta` (whose soundness *depends* on the two
    routes agreeing).
    """
    row = []
    for pos, (_, value) in enumerate(items):
        table = tables[pos]
        sid = table.get(value)
        if sid is None:
            sid = len(table)
            table[value] = sid
            symbols[pos].append(value)
        row.append(sid)
    return tuple(row)


class InstanceKernel:
    """A column-major interned view of one relation.

    ``attrs`` is the sorted attribute tuple; ``rows[r][i]`` is the symbol
    id of row ``r`` in column ``i``; ``symbols[i]`` decodes ids of column
    ``i`` back to values and ``tables[i]`` encodes values to ids.  Ids
    are assigned per attribute in first-seen order, so equality of values
    within a column is exactly equality of ids.
    """

    __slots__ = ("attrs", "attr_index", "rows", "row_set", "n_rows",
                 "symbols", "tables", "_partitions", "_projections")

    def __init__(self, relation, shared: dict | None = None):
        attrs = sorted(relation.schema)
        self.attrs: tuple[AttrName, ...] = tuple(attrs)
        self.attr_index: dict[AttrName, int] = {a: i for i, a in enumerate(attrs)}
        if shared is None:
            tables: list[dict[Value, int]] = [{} for _ in attrs]
            symbols: list[list[Value]] = [[] for _ in attrs]
        else:
            # Shared interning (one symbol space per attribute *name*,
            # spanning every relation of a DatabaseExtension): the caller
            # owns ``shared`` and hands each column its per-attribute
            # table/decode pair, so id rows of different relations are
            # directly comparable on shared attributes with no
            # translation tables.  Ids may be sparse for any one relation.
            tables, symbols = [], []
            for a in attrs:
                table, syms = shared.setdefault(a, ({}, []))
                tables.append(table)
                symbols.append(syms)
        # Tuple iterates its items sorted by attribute name, which is
        # exactly the column order of ``attrs``.
        rows: list[IdRow] = [
            intern_row(tables, symbols, t) for t in relation.tuples
        ]
        self.rows = rows
        self.row_set: set[IdRow] = set(rows)
        self.n_rows = len(rows)
        self.symbols = symbols
        self.tables = tables
        self._partitions: dict[tuple[int, ...], dict[IdRow, list[int]]] = {}
        self._projections: dict[tuple[int, ...], set[IdRow]] = {}

    # ------------------------------------------------------------------
    # memoised construction
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, relation) -> "InstanceKernel":
        """The interned instance of ``relation``, memoised.

        Relations are immutable, so entries never go stale; the table is
        bounded with least-recently-used eviction (a hot update loop
        interleaving two relations must not thrash the whole memo the
        way a wholesale flush would).
        """
        inst = _INSTANCE_MEMO.get(relation)
        if inst is None:
            if len(_INSTANCE_MEMO) >= _INSTANCE_MEMO_CAP:
                _INSTANCE_MEMO.popitem(last=False)
            inst = cls(relation)
            _INSTANCE_MEMO[relation] = inst
        else:
            _INSTANCE_MEMO.move_to_end(relation)
        return inst

    @classmethod
    def _from_parts(cls, parent: "InstanceKernel",
                    rows: list[IdRow]) -> "InstanceKernel":
        """A sibling instance over ``rows``, sharing ``parent``'s columns.

        The delta layer (:mod:`repro.kernel.delta`) derives a successor
        state's instance by patching the predecessor's row list; the
        attribute layout and the per-attribute symbol tables are shared
        by reference, which is sound because tables are append-only —
        ids already assigned never move.  Caches start empty; the caller
        patches them from the parent's.
        """
        inst = object.__new__(cls)
        inst.attrs = parent.attrs
        inst.attr_index = parent.attr_index
        inst.rows = rows
        inst.row_set = set(rows)
        inst.n_rows = len(rows)
        inst.symbols = parent.symbols
        inst.tables = parent.tables
        inst._partitions = {}
        inst._projections = {}
        return inst

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def indices_of(self, attrs: Iterable[AttrName]) -> tuple[int, ...]:
        """The sorted column positions of ``attrs`` (KeyError if absent)."""
        index = self.attr_index
        return tuple(sorted(index[a] for a in attrs))

    def partition(self, idxs: tuple[int, ...]) -> dict[IdRow, list[int]]:
        """Row numbers grouped by their key on columns ``idxs``, cached."""
        part = self._partitions.get(idxs)
        if part is None:
            part = {}
            for r, row in enumerate(self.rows):
                part.setdefault(tuple(row[i] for i in idxs), []).append(r)
            self._partitions[idxs] = part
        return part

    def projection(self, idxs: tuple[int, ...]) -> set[IdRow]:
        """The distinct id rows of the projection onto columns ``idxs``, cached."""
        proj = self._projections.get(idxs)
        if proj is None:
            proj = {tuple(row[i] for i in idxs) for row in self.rows}
            self._projections[idxs] = proj
        return proj

    # ------------------------------------------------------------------
    # instance-level predicates
    # ------------------------------------------------------------------
    def fd_holds(self, lhs_attrs: Iterable[AttrName],
                 rhs_attrs: Iterable[AttrName]) -> bool:
        """Whether every lhs-group agrees on the rhs columns."""
        rhs = self.indices_of(rhs_attrs)
        if not rhs:
            return True
        lhs = self.indices_of(lhs_attrs)
        rows = self.rows
        for group in self.partition(lhs).values():
            if len(group) < 2:
                continue
            first = rows[group[0]]
            for r in group[1:]:
                row = rows[r]
                if any(row[i] != first[i] for i in rhs):
                    return False
        return True

    def mvd_indices(self, lhs_attrs: Iterable[AttrName],
                    rhs_attrs: Iterable[AttrName],
                    ) -> tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]]:
        """The ``(X, Y, Z)`` column blocks of ``lhs ->> rhs``:
        ``X = lhs``, ``Y = rhs - lhs``, ``Z`` the remaining columns.
        Shared by the single-check route and the batch engine so the
        block derivation cannot drift between them."""
        lhs = frozenset(lhs_attrs)
        x = self.indices_of(lhs)
        y = self.indices_of(frozenset(rhs_attrs) - lhs)
        in_xy = set(x) | set(y)
        z = tuple(i for i in range(len(self.attrs)) if i not in in_xy)
        return x, y, z

    def mvd_holds(self, lhs_attrs: Iterable[AttrName],
                  rhs_attrs: Iterable[AttrName]) -> bool:
        """The swap-closure semantics of ``lhs ->> rhs``, by counting.

        Within an lhs-group the rows are pairs ``(y, z)`` over the
        disjoint column blocks ``Y = rhs - lhs`` and ``Z = rest``; the
        group is closed under swaps iff it is the full product of its
        Y- and Z-projections, i.e. ``|group| == |Y's| * |Z's|``.  One
        pass per group instead of the naive quadratic swap enumeration.
        """
        x, y, z = self.mvd_indices(lhs_attrs, rhs_attrs)
        rows = self.rows
        for group in self.partition(x).values():
            size = len(group)
            if size < 2:
                continue
            ys = {tuple(rows[r][i] for i in y) for r in group}
            zs = {tuple(rows[r][i] for i in z) for r in group}
            if len(ys) * len(zs) != size:
                return False
        return True

    def jd_holds(self, components: Iterable[Iterable[AttrName]]) -> bool:
        """Whether joining the projections onto ``components`` recovers
        exactly the interned rows (components must cover the schema)."""
        return self._joins_back([self.indices_of(c) for c in components])

    def joins_back(self, parts: Iterable[Iterable[AttrName]]) -> bool:
        """The instance lossless-join check over attribute-set ``parts``."""
        return self._joins_back([self.indices_of(p) for p in parts])

    def _joins_back(self, idx_parts: list[tuple[int, ...]]) -> bool:
        if not idx_parts:
            # The empty join is the zero-ary TRUE relation {()}.
            return self.row_set == {()}
        return self.joined_projection_rows(idx_parts) == self.row_set

    def joined_projection_rows(self, idx_parts: list[tuple[int, ...]]) -> set[IdRow]:
        """The id rows of the join of the projections onto ``idx_parts``.

        When the parts cover the schema the result is full-width (columns
        in attribute order), so ``result - row_set`` is exactly the set of
        spurious rows the reconstruction manufactures.
        """
        attrs, rows = idx_parts[0], self.projection(idx_parts[0])
        for idxs in idx_parts[1:]:
            attrs, rows = join_id_rows(attrs, rows, idxs, self.projection(idxs))
            if not rows:
                break
        return rows

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    def decode_row(self, row: IdRow):
        """One full-width id row as sorted ``(attr, value)`` items."""
        symbols = self.symbols
        return tuple(
            (a, symbols[i][row[i]]) for i, a in enumerate(self.attrs)
        )

    def project_items(self, attrs: Iterable[AttrName]):
        """The distinct projected rows, decoded to sorted item tuples.

        Deduplication happens at the id level; each distinct row is
        decoded once, ready for a trusted ``Tuple`` constructor.
        """
        idxs = self.indices_of(attrs)
        names = tuple(self.attrs[i] for i in idxs)
        columns = tuple(self.symbols[i] for i in idxs)
        width = range(len(idxs))
        for key in self.projection(idxs):
            yield tuple((names[p], columns[p][key[p]]) for p in width)


def join_id_rows(a_attrs: tuple[int, ...], a_rows: Iterable[IdRow],
                 b_attrs: tuple[int, ...], b_rows: Iterable[IdRow],
                 ) -> tuple[tuple[int, ...], set[IdRow]]:
    """Natural join of two id-row sets from the *same* interned instance.

    Both sides share the parent's per-attribute symbol tables, so the
    join is a pure integer hash join on the shared columns; the result is
    keyed over the sorted union of the column positions.
    """
    a_pos = {attr: p for p, attr in enumerate(a_attrs)}
    b_pos = {attr: p for p, attr in enumerate(b_attrs)}
    shared = tuple(attr for attr in b_attrs if attr in a_pos)
    a_key = tuple(a_pos[attr] for attr in shared)
    b_key = tuple(b_pos[attr] for attr in shared)
    out_attrs = tuple(sorted(set(a_attrs) | set(b_attrs)))
    picks = tuple(
        (True, a_pos[attr]) if attr in a_pos else (False, b_pos[attr])
        for attr in out_attrs
    )
    index: dict[IdRow, list[IdRow]] = {}
    for row in b_rows:
        index.setdefault(tuple(row[p] for p in b_key), []).append(row)
    out: set[IdRow] = set()
    for ra in a_rows:
        matches = index.get(tuple(ra[p] for p in a_key))
        if not matches:
            continue
        for rb in matches:
            out.add(tuple(ra[p] if left else rb[p] for left, p in picks))
    return out_attrs, out


def join_interned(left: InstanceKernel, right: InstanceKernel):
    """Natural join of two independently interned relations.

    The two symbol spaces differ, so the shared columns are bridged by a
    per-attribute translation of right ids into left ids (built once, in
    the size of the right symbol table); a right value the left relation
    never saw cannot join and its rows are skipped.  Yields the joined
    rows as sorted ``(attr, value)`` item tuples, distinct by
    construction (a left row and the right-only block determine the
    output row).
    """
    shared_names = [a for a in right.attrs if a in left.attr_index]
    r_shared = tuple(right.attr_index[a] for a in shared_names)
    translations = [
        [left.tables[left.attr_index[a]].get(v) for v in right.symbols[rp]]
        for a, rp in zip(shared_names, r_shared)
    ]
    l_key = tuple(left.attr_index[a] for a in shared_names)
    r_only = tuple(p for p, a in enumerate(right.attrs)
                   if a not in left.attr_index)
    out_names = sorted(set(left.attrs) | set(right.attrs))
    picks = tuple(
        (True, left.attr_index[a]) if a in left.attr_index
        else (False, right.attr_index[a])
        for a in out_names
    )
    index = left.partition(l_key)
    l_rows = left.rows
    l_symbols, r_symbols = left.symbols, right.symbols
    for r_row in right.rows:
        key = []
        for trans, rp in zip(translations, r_shared):
            lid = trans[r_row[rp]]
            if lid is None:
                break
            key.append(lid)
        else:
            for li in index.get(tuple(key), ()):
                l_row = l_rows[li]
                yield tuple(
                    (a, l_symbols[p][l_row[p]] if left_side
                     else r_symbols[p][r_row[p]])
                    for a, (left_side, p) in zip(out_names, picks)
                )


_INSTANCE_MEMO: OrderedDict = OrderedDict()
_INSTANCE_MEMO_CAP = 256
