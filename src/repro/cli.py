"""Command-line interface: inspect, audit, render, and serve databases.

Usage (after installation)::

    python -m repro.cli inspect db.json            # tables + figures
    python -m repro.cli check db.json [--json]     # axiom + constraint audit
    python -m repro.cli topology db.json           # S/G/CO and subbase report
    python -m repro.cli fd db.json --closure       # dependency closure
    python -m repro.cli example employee out.json  # write the paper's example
    python -m repro.cli serve db.json --wal w.log  # run store traffic
    python -m repro.cli serve db.json --wal w.log --listen :7071
                                                   # network store server
    python -m repro.cli replica w.log --listen :7072
                                                   # WAL-tailing read replica
    python -m repro.cli replica w.log --once       # one sync + lag report
    python -m repro.cli promote w.log --listen :7073
                                                   # failover: next epoch
    python -m repro.cli supervise w.log --id r1 --primary :7071
                                                   # self-healing failover loop
    python -m repro.cli log w.log                  # print the WAL history
    python -m repro.cli replay w.log --verify      # rebuild + audit from WAL
    python -m repro.cli checkpoint w.log           # append a checkpoint
    python -m repro.cli gc w.log                   # prune checkpointed segments
    python -m repro.cli metrics :7071 --watch 2    # live telemetry snapshot
    python -m repro.cli trace :7071 -n 5           # slowest recent traces

Documents use the JSON format of :mod:`repro.io`; ``serve``/``log``/
``replay``/``checkpoint``/``gc`` drive the versioned store of
:mod:`repro.store` and share the ``check --json`` audit-report shape, so
CI can consume every audit surface uniformly.  ``serve --listen`` and
``replica`` expose a store over the wire protocol of
:mod:`repro.server` (see ``src/repro/server/README.md``).  A WAL path may be a
single file or a segment directory (``wal.000001.jsonl``, …); replay
starts from the newest checkpoint unless ``--full`` asks for v0.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import io
from repro.core import (
    ArmstrongEngine,
    check_all,
    designer_bias_report,
)
from repro.viz import (
    contributor_table,
    disk_matrix,
    entity_table,
    extension_table,
    generalisation_table,
    isa_forest,
    specialisation_table,
)


def _cmd_inspect(args: argparse.Namespace) -> int:
    db, _ = io.load(args.document)
    print(entity_table(db.schema))
    print()
    print(disk_matrix(db.schema))
    print()
    print(isa_forest(db.schema))
    print()
    print(extension_table(db))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    db, constraints = io.load(args.document)
    report = check_all(db.schema, db, constraints=constraints.constraints,
                       contributors=db.contributors)
    problems = constraints.report(db)
    ok = report.ok() and not problems
    if args.json:
        print(json.dumps(io.report_to_dict(report, problems),
                         indent=2, sort_keys=True))
        return 0 if ok else 1
    print(report.render())
    for name, messages in problems.items():
        for message in messages:
            print(f"[constraint {name}] {message}")
    print("verdict:", "CONSISTENT" if ok else "VIOLATIONS FOUND")
    return 0 if ok else 1


def _cmd_topology(args: argparse.Namespace) -> int:
    db, _ = io.load(args.document)
    schema = db.schema
    print(specialisation_table(schema))
    print()
    print(generalisation_table(schema))
    print()
    print(contributor_table(schema))
    print()
    bias = designer_bias_report(schema)
    print("essential entity types:",
          sorted(e.name for e in bias["essential"]))
    print("derivable (constructed) candidates:",
          sorted(e.name for e in bias["redundant"]))
    return 0


def _cmd_fd(args: argparse.Namespace) -> int:
    db, constraints = io.load(args.document)
    premises = constraints.functional_dependencies()
    if not premises:
        print("no functional dependencies declared in the document")
        return 0
    print("declared dependencies:")
    for fd in premises:
        print(f"  {fd!r}")
    if args.closure:
        engine = ArmstrongEngine(db.schema, premises)
        derived = sorted(engine.nontrivial_derived(), key=repr)
        print(f"\nnon-trivial closure ({len(derived)} dependencies):")
        for fd in derived:
            print(f"  {fd!r}")
    from repro.core.fd import holds

    broken = [fd for fd in premises if not holds(fd, db)]
    print("\nall declared dependencies hold in the state"
          if not broken else f"\nVIOLATED: {broken}")
    return 0 if not broken else 1


def _cmd_example(args: argparse.Namespace) -> int:
    if args.name != "employee":
        print(f"unknown example {args.name!r}; available: employee",
              file=sys.stderr)
        return 2
    from repro.core.employee import employee_constraints, employee_extension

    db = employee_extension()
    io.save(args.output, db, employee_constraints(db.schema))
    print(f"wrote the paper's employee database to {args.output}")
    return 0


def _parse_listen(listen: str) -> tuple[str, int]:
    """``HOST:PORT`` (``:PORT`` binds localhost; port 0 picks one)."""
    host, _, port = listen.rpartition(":")
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise SystemExit(f"--listen wants HOST:PORT, got {listen!r}")


def _serve_until_interrupt(server, banner: str) -> int:
    import time

    host, port = server.start_background()
    print(f"{banner} on {host}:{port} (ctrl-C to stop)")
    try:
        while True:
            time.sleep(1)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run generated session traffic against a store built from the
    document — the smallest end-to-end serving exercise: N worker
    threads, optimistic commits, optional WAL, and a final audit.  With
    ``--listen``, serve the store over the wire protocol instead."""
    import random
    import threading
    import time

    from repro.errors import CommitRejected, TransactionConflict
    from repro.store import SessionService, StoreEngine, WriteAheadLog
    from repro.workloads import random_txn_specs

    db, constraints = io.load(args.document)
    wal = args.wal
    if wal is not None and args.segment_records is not None:
        wal = WriteAheadLog(wal, segment_records=args.segment_records)
    engine = StoreEngine(db, constraints, validation=args.mode,
                         wal=wal, checkpoint_every=args.checkpoint_every)
    if args.listen is not None:
        from repro.server import StoreServer

        host, port = _parse_listen(args.listen)
        try:
            return _serve_until_interrupt(
                StoreServer(engine, host, port,
                            max_connections=args.max_connections,
                            idle_timeout=args.idle_timeout),
                f"serving {args.document} ({engine.validation} mode)")
        finally:
            engine.close()
    service = SessionService(engine)
    rng = random.Random(args.seed)
    specs = random_txn_specs(rng, db, args.txns)
    shards = [specs[i::args.threads] for i in range(args.threads)]
    counts = {"rejected": 0, "conflicts": 0}
    tally = threading.Lock()
    errors: list[BaseException] = []

    def worker(shard):
        session = service.session()
        rejected = conflicts = 0
        for ops in shard:
            try:
                session.run(ops)
            except CommitRejected:
                rejected += 1
            except TransactionConflict:
                conflicts += 1  # retries exhausted under contention
            except BaseException as exc:  # re-raised after join
                errors.append(exc)
                break
        with tally:
            counts["rejected"] += rejected
            counts["conflicts"] += conflicts

    threads = [threading.Thread(target=worker, args=(shard,))
               for shard in shards]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    # Committed count comes from graph growth (authoritative under
    # concurrency — a no-op commit returns a head another writer may
    # have just advanced, so per-thread attribution would race).
    counts["committed"] = len(engine.graph) - 1
    counts["noop"] = (args.txns - counts["committed"] - counts["rejected"]
                      - counts["conflicts"])
    report = engine.audit()
    engine.close()
    summary = {
        "txns": args.txns,
        "threads": args.threads,
        "mode": engine.validation,
        **counts,
        "versions": len(engine.graph),
        "head": engine.head_version().vid,
        "seconds": round(elapsed, 4),
        "commits_per_s": round(counts["committed"] / elapsed, 1)
        if elapsed else None,
        "audit": io.report_to_dict(report),
    }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        for key in ("txns", "threads", "mode", "committed", "rejected",
                    "conflicts", "noop", "versions", "head", "seconds",
                    "commits_per_s"):
            print(f"{key}: {summary[key]}")
        print("final audit:", "CONSISTENT" if report.ok()
              else report.render())
    return 0 if report.ok() else 1


def _cmd_replica(args: argparse.Namespace) -> int:
    """Tail a primary's WAL as a read replica.

    ``--once`` syncs to the current end of the log and prints the
    staleness/lag report — with ``--max-lag-bytes N`` the exit status
    doubles as a staleness alarm (non-zero when the replica is more
    than N log bytes behind), so external monitors can alert on stale
    replicas with one invocation.  Otherwise the replica serves
    read-only wire traffic on ``--listen`` while a background task
    keeps following the log."""
    from repro.server import ReplicaEngine, StoreServer

    replica = ReplicaEngine(args.wal, from_checkpoint=not args.full,
                            verify=args.verify)
    replica.catch_up(timeout=args.timeout)
    if args.once:
        status = replica.status()
        bound = args.max_lag_bytes
        lag_ok = (bound is None
                  or int(status.get("behind_bytes", 0)) <= bound)
        status["max_lag_bytes"] = bound
        status["lag_ok"] = lag_ok
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            for key in ("role", "ready", "wal", "behind_bytes",
                        "max_lag_bytes", "lag_ok", "applied_records",
                        "seq", "versions", "branches"):
                if key in status and status[key] is not None:
                    print(f"{key}: {status[key]}")
        return 0 if replica.ready and lag_ok else 1
    host, port = _parse_listen(args.listen)
    return _serve_until_interrupt(
        StoreServer(replica, host, port, sync_interval=args.interval,
                    max_connections=args.max_connections,
                    idle_timeout=args.idle_timeout),
        f"replica of {args.wal}")


def _cmd_promote(args: argparse.Namespace) -> int:
    """Promote a WAL's tail into the next epoch — the failover step.

    Tails the log to its durable end (applying the torn-tail repair a
    crashed primary leaves behind), stamps the next epoch record, and
    either prints the takeover summary or, with ``--listen``, serves
    the promoted primary over the wire.  Any old-epoch primary still
    holding the log is fenced from the stamp onward."""
    from repro.server import ReplicaEngine, StoreServer, promote

    replica = ReplicaEngine(args.wal, from_checkpoint=not args.full,
                            verify=args.verify)
    engine = promote(replica, timeout=args.timeout, sync=args.sync,
                     segment_records=args.segment_records)
    summary = {"wal": str(args.wal), "epoch": engine.epoch,
               "seq": engine.graph.seq,
               "branches": engine.graph.branches()}
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"promoted {args.wal} to epoch {engine.epoch} "
              f"(seq {summary['seq']}, heads {summary['branches']})")
    if args.listen is None:
        engine.close()
        return 0
    host, port = _parse_listen(args.listen)
    try:
        return _serve_until_interrupt(
            StoreServer(engine, host, port,
                        max_connections=args.max_connections,
                        idle_timeout=args.idle_timeout),
            f"primary (epoch {engine.epoch}) over {args.wal}")
    finally:
        engine.close()


def _cmd_supervise(args: argparse.Namespace) -> int:
    """Run one replica's seat in the self-healing loop.

    A :class:`~repro.server.HealthMonitor` probes the primary (and any
    ``--peer`` replicas) over the wire ``status`` op; when the primary
    is declared dead the :class:`~repro.server.Coordinator` runs the
    deterministic election — most-caught-up WAL position wins, replica
    id breaks ties — and, if this replica wins, promotes it and (with
    ``--listen``) serves the new primary.  Losers keep tailing and
    re-pin to the winner's epoch.  ``--once`` runs a single supervision
    step and prints the state; ``--max-ticks`` bounds the loop (useful
    for scripted failover drills)."""
    import time

    from repro.server import (
        Coordinator,
        HealthMonitor,
        ReplicaEngine,
        StoreServer,
        wire_probe,
    )

    monitor = HealthMonitor(probe_interval=args.interval,
                            suspect_after=args.suspect_after,
                            dead_after=args.dead_after, seed=args.seed)
    monitor.add_peer(args.primary_id,
                     wire_probe(_parse_listen(args.primary),
                                timeout=args.probe_timeout))
    for spec in args.peer or ():
        peer_id, _, addr = spec.partition("=")
        if not peer_id or not addr:
            raise SystemExit(f"--peer wants ID=HOST:PORT, got {spec!r}")
        monitor.add_peer(peer_id, wire_probe(_parse_listen(addr),
                                             timeout=args.probe_timeout))
    replica = ReplicaEngine(args.wal, from_checkpoint=not args.full,
                            verify=args.verify)
    replica.catch_up(timeout=args.timeout)
    coordinator = Coordinator(args.id, replica, monitor,
                              primary_id=args.primary_id,
                              promote_timeout=args.timeout,
                              segment_records=args.segment_records)
    ticks = 0
    try:
        while True:
            event = coordinator.step()
            ticks += 1
            if event is not None and not args.json:
                detail = {k: v for k, v in event.items()
                          if k not in ("action", "replica_id")}
                print(f"[tick {ticks}] {event['action']} {detail}")
            if coordinator.role == "primary" or args.once:
                break
            if args.max_ticks is not None and ticks >= args.max_ticks:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    summary = coordinator.describe()
    summary["ticks"] = ticks
    summary["primary_state"] = (
        monitor.state(coordinator.primary_id)
        if coordinator.primary_id in monitor.peer_ids() else None)
    if args.json:
        print(json.dumps({**summary,
                          "events": coordinator.events},
                         indent=2, sort_keys=True))
    else:
        for key in ("replica_id", "role", "primary_id", "primary_state",
                    "epoch", "elections", "ticks"):
            print(f"{key}: {summary[key]}")
    if coordinator.role == "primary" and args.listen is not None:
        engine = coordinator.engine
        host, port = _parse_listen(args.listen)
        try:
            return _serve_until_interrupt(
                StoreServer(engine, host, port, cluster=monitor),
                f"promoted primary (epoch {engine.epoch}) over "
                f"{args.wal}")
        finally:
            engine.close()
    return 0


def _cmd_log(args: argparse.Namespace) -> int:
    """Print a write-ahead log's history, one line per record."""
    from repro.store import WriteAheadLog

    for record in WriteAheadLog.records(args.wal):
        if args.json:
            print(json.dumps(record, sort_keys=True))
            continue
        kind = record["type"]
        if kind == "snapshot":
            doc = record["document"]
            print(f"{record['version']}  snapshot  [{record['branch']}]  "
                  f"{len(doc.get('entity_types', {}))} types, "
                  f"{sum(map(len, doc.get('relations', {}).values()))} rows")
        elif kind == "branch":
            print(f"branch {record['name']!r} at {record['at']}")
        elif kind == "checkpoint":
            heads = ", ".join(
                f"{name}@{info['version']}"
                for name, info in sorted(record["branches"].items()))
            print(f"checkpoint  seq {record['seq']}  heads: {heads}")
        elif kind == "epoch":
            heads = ", ".join(
                f"{name}@{vid}"
                for name, vid in sorted(record.get("heads", {}).items()))
            print(f"epoch {record['epoch']}  (promotion)"
                  + (f"  seq {record['seq']}" if "seq" in record else "")
                  + (f"  heads: {heads}" if heads else ""))
        else:
            ops = ", ".join(
                f"{op['op']} {op['relation']}" for op in record["ops"])
            print(f"{record['version']}  <- {record['parent']}  "
                  f"[{record['branch']}]  {ops}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    """Rebuild the version graph from a WAL, audit the head, and
    optionally write it back out as a document."""
    from repro.store import StoreEngine

    engine = StoreEngine.replay(args.wal, verify=args.verify,
                                from_checkpoint=not args.full)
    heads = engine.graph.branches()
    report = engine.audit()
    if args.out:
        io.save(args.out, engine.state(), engine.constraint_set)
    if args.json:
        print(json.dumps({
            "versions": len(engine.graph),
            "branches": heads,
            "verified": args.verify,
            "audit": io.report_to_dict(report),
        }, indent=2, sort_keys=True))
    else:
        print(f"replayed {len(engine.graph)} versions; branches: {heads}")
        print("head audit:", "CONSISTENT" if report.ok()
              else report.render())
        if args.out:
            print(f"wrote head state to {args.out}")
    return 0 if report.ok() else 1


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    """Append a checkpoint record to a WAL: replay it (trusting the
    log), then write every branch head back as a full document — after
    which ``replay`` starts here and ``gc`` can drop older segments."""
    from repro.store import StoreEngine, WriteAheadLog, checkpoint_record

    engine = StoreEngine.replay(args.wal)
    record = checkpoint_record(engine.graph, engine.constraint_set)
    with WriteAheadLog(args.wal) as wal:
        wal.rotate()
        wal.append(record)
        segment = wal.current_segment
    summary = {
        "seq": record["seq"],
        "branches": {name: info["version"]
                     for name, info in sorted(record["branches"].items())},
        "segment": str(segment),
    }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        heads = ", ".join(f"{name}@{vid}"
                          for name, vid in summary["branches"].items())
        print(f"checkpointed seq {record['seq']} ({heads}) to {segment}")
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    """Prune WAL segments older than the newest checkpointed one.

    The replay-from-checkpoint comes first: segments are only dropped
    once the checkpoint has proven it can restore the store without
    them."""
    from pathlib import Path

    from repro.store import StoreEngine, WriteAheadLog

    engine = StoreEngine.replay(args.wal)  # proves the checkpoint restores
    victims: list[Path] = []
    if Path(args.wal).is_dir():
        segments = WriteAheadLog.segment_paths(args.wal)
        for i in range(len(segments) - 1, 0, -1):
            head = WriteAheadLog.first_record(segments[i])
            if head is not None and head.get("type") == "checkpoint":
                victims = segments[:i]
                break
    if victims and not args.dry_run:
        WriteAheadLog.prune(args.wal, archive=args.archive)
    remaining = [str(p) for p in WriteAheadLog.segment_paths(args.wal)]
    summary = {
        "versions": len(engine.graph),
        "branches": engine.graph.branches(),
        "pruned": [str(p) for p in victims],
        "remaining": remaining,
        "dry_run": args.dry_run,
    }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"replayed {len(engine.graph)} versions; "
              f"branches: {summary['branches']}")
        verb = "would prune" if args.dry_run else \
            "archived" if args.archive else "pruned"
        if victims:
            for p in summary["pruned"]:
                print(f"{verb}: {p}")
        else:
            print("nothing to prune (no checkpointed segment boundary)")
        print(f"{len(remaining)} segment(s) remain")
    return 0


def _fmt_seconds(value) -> str:
    """A duration for humans: seconds, milliseconds, or microseconds,
    whichever reads best."""
    if value is None:
        return "-"
    value = float(value)
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.0f}us"


def _render_metrics(payload: dict) -> str:
    """A ``metrics`` response as an aligned human-readable report."""
    snapshot = payload.get("metrics", {})
    lines: list[str] = []
    for section in ("counters", "gauges"):
        table = snapshot.get(section) or {}
        if not table:
            continue
        lines.append(f"{section}:")
        width = max(len(name) for name in table)
        for name, value in sorted(table.items()):
            shown = int(value) if float(value) == int(value) else value
            lines.append(f"  {name:<{width}}  {shown}")
    hists = snapshot.get("histograms") or {}
    if hists:
        lines.append("histograms:")
        width = max(len(name) for name in hists)
        lines.append(f"  {'':<{width}}  {'count':>7}  {'p50':>9}  "
                     f"{'p95':>9}  {'p99':>9}  {'max':>9}")
        for name, s in sorted(hists.items()):
            lines.append(
                f"  {name:<{width}}  {s.get('count', 0):>7}  "
                f"{_fmt_seconds(s.get('p50')):>9}  "
                f"{_fmt_seconds(s.get('p95')):>9}  "
                f"{_fmt_seconds(s.get('p99')):>9}  "
                f"{_fmt_seconds(s.get('max')):>9}")
    slow = payload.get("slow_commits") or []
    if slow:
        lines.append(f"slow commits ({len(slow)}, newest last):")
        for rec in slow[-5:]:
            phases = ", ".join(
                f"{name}={_fmt_seconds(value)}"
                for name, value in sorted(rec.get("phases", {}).items()))
            lines.append(f"  {rec.get('version')}  "
                         f"total={_fmt_seconds(rec.get('total'))}  "
                         f"groups={rec.get('group_count')}  [{phases}]")
    return "\n".join(lines) if lines else "no metrics recorded yet"


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Fetch and render a server's observability snapshot; ``--watch``
    polls forever (ctrl-C to stop)."""
    import time

    from repro.server import StoreClient

    host, port = _parse_listen(args.address)
    try:
        while True:
            with StoreClient(host, port) as client:
                payload = client.metrics()
            if args.json:
                print(json.dumps(payload, indent=2, sort_keys=True))
            else:
                print(_render_metrics(payload))
            if not args.watch:
                return 0
            time.sleep(args.watch)
            print()
    except (KeyboardInterrupt, BrokenPipeError):
        return 0
    except OSError as exc:
        print(f"error: cannot reach {host}:{port}: {exc}", file=sys.stderr)
        return 1


def _print_span(span: dict, depth: int) -> None:
    pad = "  " * depth
    tags = span.get("tags") or {}
    suffix = ""
    if tags:
        suffix = "  [" + " ".join(f"{k}={v}"
                                  for k, v in sorted(tags.items())) + "]"
    print(f"{pad}{span.get('name')}  "
          f"{_fmt_seconds(span.get('duration'))}{suffix}")
    for child in span.get("spans") or ():
        _print_span(child, depth + 1)


def _cmd_trace(args: argparse.Namespace) -> int:
    """Fetch the server's slowest recent traces and render them as
    indented span trees (``--json`` for the raw dicts)."""
    from repro.server import StoreClient

    host, port = _parse_listen(args.address)
    try:
        with StoreClient(host, port) as client:
            payload = client.metrics(traces=args.n)
    except BrokenPipeError:
        return 0
    except OSError as exc:
        print(f"error: cannot reach {host}:{port}: {exc}", file=sys.stderr)
        return 1
    traces = payload.get("traces") or []
    if args.json:
        print(json.dumps(traces, indent=2, sort_keys=True))
        return 0
    if not traces:
        print("no traces recorded yet")
        return 0
    for trace in traces:
        _print_span(trace, 0)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Siebes & Kersten (1987) axiom-model toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_inspect = sub.add_parser("inspect", help="render tables and figures")
    p_inspect.add_argument("document")
    p_inspect.set_defaults(func=_cmd_inspect)

    p_check = sub.add_parser("check", help="axiom and constraint audit")
    p_check.add_argument("document")
    p_check.add_argument("--json", action="store_true",
                         help="emit the audit report (verdicts + witnesses) "
                              "as machine-readable JSON")
    p_check.set_defaults(func=_cmd_check)

    p_topology = sub.add_parser("topology", help="S/G/CO and subbase report")
    p_topology.add_argument("document")
    p_topology.set_defaults(func=_cmd_topology)

    p_fd = sub.add_parser("fd", help="dependency report")
    p_fd.add_argument("document")
    p_fd.add_argument("--closure", action="store_true",
                      help="print the Armstrong closure")
    p_fd.set_defaults(func=_cmd_fd)

    p_example = sub.add_parser("example", help="write a bundled example document")
    p_example.add_argument("name")
    p_example.add_argument("output")
    p_example.set_defaults(func=_cmd_example)

    p_serve = sub.add_parser(
        "serve", help="run session traffic against a versioned store")
    p_serve.add_argument("document")
    p_serve.add_argument("--txns", type=int, default=100,
                         help="transactions to generate (default 100)")
    p_serve.add_argument("--threads", type=int, default=4,
                         help="concurrent writer sessions (default 4)")
    p_serve.add_argument("--mode", default="delta",
                         choices=("delta", "audit", "serial"),
                         help="commit validation mode (default delta)")
    p_serve.add_argument("--wal", default=None,
                         help="write-ahead log path (durable commits)")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="traffic generator seed (default 0)")
    p_serve.add_argument("--checkpoint-every", type=int, default=None,
                         metavar="N",
                         help="write a WAL checkpoint record after every "
                              "N commits (keeps replay O(recent))")
    p_serve.add_argument("--segment-records", type=int, default=None,
                         metavar="N",
                         help="rotate the WAL into numbered segments of "
                              "at most N records (path becomes a "
                              "directory)")
    p_serve.add_argument("--json", action="store_true",
                         help="emit the serving summary + audit as JSON")
    p_serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                         help="serve the store over the wire protocol "
                              "instead of running generated traffic "
                              "(':0' picks a free port)")
    p_serve.add_argument("--max-connections", type=int, default=64,
                         help="bound on simultaneous connections under "
                              "--listen (default 64)")
    p_serve.add_argument("--idle-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="close connections idle for this long "
                              "(default: never) so abandoned clients "
                              "stop pinning the connection cap")
    p_serve.set_defaults(func=_cmd_serve)

    p_replica = sub.add_parser(
        "replica", help="tail a primary's WAL as a read replica")
    p_replica.add_argument("wal")
    p_replica.add_argument("--listen", default="127.0.0.1:0",
                           metavar="HOST:PORT",
                           help="serve read-only wire traffic here "
                                "(default: localhost, free port)")
    p_replica.add_argument("--once", action="store_true",
                           help="sync to the end of the log, print the "
                                "staleness report, and exit")
    p_replica.add_argument("--interval", type=float, default=0.05,
                           metavar="SECONDS",
                           help="background sync cadence while serving "
                                "(default 0.05s)")
    p_replica.add_argument("--timeout", type=float, default=5.0,
                           help="initial catch-up budget in seconds "
                                "(default 5)")
    p_replica.add_argument("--full", action="store_true",
                           help="bootstrap from v0 instead of the newest "
                                "checkpoint")
    p_replica.add_argument("--verify", action="store_true",
                           help="re-gate every followed commit through "
                                "this replica's own axiom validation")
    p_replica.add_argument("--max-connections", type=int, default=64,
                           help="bound on simultaneous connections "
                                "(default 64)")
    p_replica.add_argument("--idle-timeout", type=float, default=None,
                           metavar="SECONDS",
                           help="close connections idle for this long "
                                "(default: never)")
    p_replica.add_argument("--max-lag-bytes", type=int, default=None,
                           metavar="N",
                           help="with --once: exit non-zero when the "
                                "replica is more than N log bytes "
                                "behind (a staleness alarm for "
                                "external monitors)")
    p_replica.add_argument("--json", action="store_true",
                           help="emit the --once staleness report as JSON")
    p_replica.set_defaults(func=_cmd_replica)

    p_promote = sub.add_parser(
        "promote", help="promote a WAL's tail to the next epoch "
                        "(failover)")
    p_promote.add_argument("wal")
    p_promote.add_argument("--listen", default=None, metavar="HOST:PORT",
                           help="serve the promoted primary here "
                                "(default: print the summary and exit)")
    p_promote.add_argument("--timeout", type=float, default=5.0,
                           help="catch-up budget in seconds (default 5)")
    p_promote.add_argument("--full", action="store_true",
                           help="bootstrap from v0 instead of the newest "
                                "checkpoint")
    p_promote.add_argument("--verify", action="store_true",
                           help="re-gate every followed commit through "
                                "the axiom validation while catching up")
    p_promote.add_argument("--sync", action="store_true",
                           help="fsync every commit on the promoted "
                                "primary")
    p_promote.add_argument("--segment-records", type=int, default=None,
                           metavar="N",
                           help="segment rotation bound for the promoted "
                                "primary's appends")
    p_promote.add_argument("--max-connections", type=int, default=64,
                           help="bound on simultaneous connections under "
                                "--listen (default 64)")
    p_promote.add_argument("--idle-timeout", type=float, default=None,
                           metavar="SECONDS",
                           help="close connections idle for this long "
                                "(default: never)")
    p_promote.add_argument("--json", action="store_true",
                           help="emit the takeover summary as JSON")
    p_promote.set_defaults(func=_cmd_promote)

    p_supervise = sub.add_parser(
        "supervise", help="run a replica's seat in the self-healing "
                          "failover loop")
    p_supervise.add_argument("wal")
    p_supervise.add_argument("--id", required=True, metavar="REPLICA_ID",
                             help="this replica's election id (ties on "
                                  "WAL position break toward the "
                                  "highest id)")
    p_supervise.add_argument("--primary", required=True,
                             metavar="HOST:PORT",
                             help="the current primary's address to "
                                  "probe")
    p_supervise.add_argument("--primary-id", default="primary",
                             help="the primary's peer id in the health "
                                  "view (default 'primary')")
    p_supervise.add_argument("--peer", action="append", default=[],
                             metavar="ID=HOST:PORT",
                             help="a fellow replica to probe and rank "
                                  "against (repeatable)")
    p_supervise.add_argument("--listen", default=None,
                             metavar="HOST:PORT",
                             help="serve the promoted primary here "
                                  "after winning an election")
    p_supervise.add_argument("--interval", type=float, default=0.5,
                             metavar="SECONDS",
                             help="probe/supervision cadence "
                                  "(default 0.5s)")
    p_supervise.add_argument("--suspect-after", type=int, default=2,
                             metavar="MISSES",
                             help="consecutive probe misses before a "
                                  "peer is suspect (default 2; one "
                                  "dropped frame never elects)")
    p_supervise.add_argument("--dead-after", type=int, default=4,
                             metavar="MISSES",
                             help="consecutive probe misses before a "
                                  "peer is dead and an election runs "
                                  "(default 4)")
    p_supervise.add_argument("--probe-timeout", type=float, default=1.0,
                             metavar="SECONDS",
                             help="per-probe dial/roundtrip budget "
                                  "(default 1)")
    p_supervise.add_argument("--timeout", type=float, default=5.0,
                             help="catch-up/promotion budget in "
                                  "seconds (default 5)")
    p_supervise.add_argument("--seed", type=int, default=0,
                             help="seeds the monitor's probe jitter "
                                  "(default 0)")
    p_supervise.add_argument("--max-ticks", type=int, default=None,
                             metavar="N",
                             help="stop after N supervision steps "
                                  "(default: run until promoted or "
                                  "interrupted)")
    p_supervise.add_argument("--once", action="store_true",
                             help="run one supervision step, print the "
                                  "state, and exit")
    p_supervise.add_argument("--full", action="store_true",
                             help="bootstrap from v0 instead of the "
                                  "newest checkpoint")
    p_supervise.add_argument("--verify", action="store_true",
                             help="re-gate every followed commit "
                                  "through the axiom validation")
    p_supervise.add_argument("--segment-records", type=int, default=None,
                             metavar="N",
                             help="segment rotation bound after "
                                  "promotion")
    p_supervise.add_argument("--json", action="store_true",
                             help="emit the final state (and event "
                                  "log) as JSON")
    p_supervise.set_defaults(func=_cmd_supervise)

    p_log = sub.add_parser("log", help="print a write-ahead log's history")
    p_log.add_argument("wal")
    p_log.add_argument("--json", action="store_true",
                       help="emit raw records as JSON lines")
    p_log.set_defaults(func=_cmd_log)

    p_replay = sub.add_parser(
        "replay", help="rebuild a store from its write-ahead log")
    p_replay.add_argument("wal")
    p_replay.add_argument("--verify", action="store_true",
                          help="re-validate every logged commit through "
                               "the axiom gate")
    p_replay.add_argument("--out", default=None,
                          help="write the replayed head state to a document")
    p_replay.add_argument("--full", action="store_true",
                          help="replay the whole log from v0 instead of "
                               "the newest checkpoint")
    p_replay.add_argument("--json", action="store_true",
                          help="emit the replay summary + audit as JSON")
    p_replay.set_defaults(func=_cmd_replay)

    p_checkpoint = sub.add_parser(
        "checkpoint", help="append a checkpoint record to a WAL")
    p_checkpoint.add_argument("wal")
    p_checkpoint.add_argument("--json", action="store_true",
                              help="emit the checkpoint summary as JSON")
    p_checkpoint.set_defaults(func=_cmd_checkpoint)

    p_gc = sub.add_parser(
        "gc", help="prune WAL segments behind the newest checkpoint")
    p_gc.add_argument("wal")
    p_gc.add_argument("--archive", default=None, metavar="DIR",
                      help="move pruned segments here instead of "
                           "deleting them")
    p_gc.add_argument("--dry-run", action="store_true",
                      help="report what would be pruned without touching "
                           "the log")
    p_gc.add_argument("--json", action="store_true",
                      help="emit the gc summary as JSON")
    p_gc.set_defaults(func=_cmd_gc)

    p_metrics = sub.add_parser(
        "metrics",
        help="a live server's observability snapshot (counters, "
             "commit-phase histograms, slow commits)")
    p_metrics.add_argument("address", metavar="HOST:PORT",
                           help="a serving store (serve --listen or a "
                                "replica)")
    p_metrics.add_argument("--json", action="store_true",
                           help="emit the raw snapshot as JSON")
    p_metrics.add_argument("--watch", type=float, default=0.0,
                           metavar="SECONDS",
                           help="re-poll every SECONDS (ctrl-C to stop)")
    p_metrics.set_defaults(func=_cmd_metrics)

    p_trace = sub.add_parser(
        "trace",
        help="a live server's slowest recent traces as span trees")
    p_trace.add_argument("address", metavar="HOST:PORT")
    p_trace.add_argument("-n", type=int, default=5,
                         help="how many traces to fetch (default 5)")
    p_trace.add_argument("--json", action="store_true",
                         help="emit the raw trace dicts as JSON")
    p_trace.set_defaults(func=_cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like other
        # well-behaved CLI tools.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
