"""Command-line interface: inspect, audit, and render database documents.

Usage (after installation)::

    python -m repro.cli inspect db.json            # tables + figures
    python -m repro.cli check db.json              # axiom + constraint audit
    python -m repro.cli topology db.json           # S/G/CO and subbase report
    python -m repro.cli fd db.json --closure       # dependency closure
    python -m repro.cli example employee out.json  # write the paper's example

Documents use the JSON format of :mod:`repro.io`.
"""

from __future__ import annotations

import argparse
import sys

from repro import io
from repro.core import (
    ArmstrongEngine,
    check_all,
    designer_bias_report,
)
from repro.viz import (
    contributor_table,
    disk_matrix,
    entity_table,
    extension_table,
    generalisation_table,
    isa_forest,
    specialisation_table,
)


def _cmd_inspect(args: argparse.Namespace) -> int:
    db, _ = io.load(args.document)
    print(entity_table(db.schema))
    print()
    print(disk_matrix(db.schema))
    print()
    print(isa_forest(db.schema))
    print()
    print(extension_table(db))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    db, constraints = io.load(args.document)
    report = check_all(db.schema, db, constraints=constraints.constraints,
                       contributors=db.contributors)
    print(report.render())
    problems = constraints.report(db)
    for name, messages in problems.items():
        for message in messages:
            print(f"[constraint {name}] {message}")
    ok = report.ok() and not problems
    print("verdict:", "CONSISTENT" if ok else "VIOLATIONS FOUND")
    return 0 if ok else 1


def _cmd_topology(args: argparse.Namespace) -> int:
    db, _ = io.load(args.document)
    schema = db.schema
    print(specialisation_table(schema))
    print()
    print(generalisation_table(schema))
    print()
    print(contributor_table(schema))
    print()
    bias = designer_bias_report(schema)
    print("essential entity types:",
          sorted(e.name for e in bias["essential"]))
    print("derivable (constructed) candidates:",
          sorted(e.name for e in bias["redundant"]))
    return 0


def _cmd_fd(args: argparse.Namespace) -> int:
    db, constraints = io.load(args.document)
    premises = constraints.functional_dependencies()
    if not premises:
        print("no functional dependencies declared in the document")
        return 0
    print("declared dependencies:")
    for fd in premises:
        print(f"  {fd!r}")
    if args.closure:
        engine = ArmstrongEngine(db.schema, premises)
        derived = sorted(engine.nontrivial_derived(), key=repr)
        print(f"\nnon-trivial closure ({len(derived)} dependencies):")
        for fd in derived:
            print(f"  {fd!r}")
    from repro.core.fd import holds

    broken = [fd for fd in premises if not holds(fd, db)]
    print("\nall declared dependencies hold in the state"
          if not broken else f"\nVIOLATED: {broken}")
    return 0 if not broken else 1


def _cmd_example(args: argparse.Namespace) -> int:
    if args.name != "employee":
        print(f"unknown example {args.name!r}; available: employee",
              file=sys.stderr)
        return 2
    from repro.core.employee import employee_constraints, employee_extension

    db = employee_extension()
    io.save(args.output, db, employee_constraints(db.schema))
    print(f"wrote the paper's employee database to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Siebes & Kersten (1987) axiom-model toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_inspect = sub.add_parser("inspect", help="render tables and figures")
    p_inspect.add_argument("document")
    p_inspect.set_defaults(func=_cmd_inspect)

    p_check = sub.add_parser("check", help="axiom and constraint audit")
    p_check.add_argument("document")
    p_check.set_defaults(func=_cmd_check)

    p_topology = sub.add_parser("topology", help="S/G/CO and subbase report")
    p_topology.add_argument("document")
    p_topology.set_defaults(func=_cmd_topology)

    p_fd = sub.add_parser("fd", help="dependency report")
    p_fd.add_argument("document")
    p_fd.add_argument("--closure", action="store_true",
                      help="print the Armstrong closure")
    p_fd.set_defaults(func=_cmd_fd)

    p_example = sub.add_parser("example", help="write a bundled example document")
    p_example.add_argument("name")
    p_example.add_argument("output")
    p_example.set_defaults(func=_cmd_example)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like other
        # well-behaved CLI tools.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
