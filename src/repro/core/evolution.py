"""Schema evolution analysis (sections 4 and 6).

"The relationship between database intension and extension ... is an
injective mapping between two topological spaces.  The main benefit is
that changes in the database intension can be translated directly into
information preserving properties of the database extension.  This makes a
formal analysis of an evolutionary database schema more tractable."

This module implements that programme concretely: a vocabulary of schema
changes, application with axiom revalidation, an intension-level analysis
(does the old topology embed in the new one?) and an extension-level
migration whose information preservation is decided by an actual
round-trip.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.entity_types import EntityType
from repro.core.extension import DatabaseExtension
from repro.core.schema import Schema
from repro.core.specialisation import SpecialisationStructure
from repro.errors import EvolutionError, SchemaError
from repro.relational import Relation
from repro.topology import SpaceMap


class SchemaChange(ABC):
    """One evolutionary step on the intension."""

    @abstractmethod
    def apply(self, schema: Schema) -> Schema:
        """The changed schema; raises when the result violates the axioms."""

    @abstractmethod
    def type_mapping(self, old: Schema, new: Schema) -> dict[EntityType, EntityType]:
        """Where each surviving old entity type went (by identity or rename)."""


@dataclass(frozen=True)
class AddEntityType(SchemaChange):
    """Introduce a new entity type (e.g. a newly recognised relationship)."""

    name: str
    attributes: frozenset[str]

    def apply(self, schema: Schema) -> Schema:
        return schema.with_entity_type(EntityType(self.name, self.attributes))

    def type_mapping(self, old: Schema, new: Schema) -> dict[EntityType, EntityType]:
        return {e: new[e.name] for e in old}


@dataclass(frozen=True)
class RemoveEntityType(SchemaChange):
    """Drop an entity type (its instances are forgotten)."""

    name: str

    def apply(self, schema: Schema) -> Schema:
        return schema.without_entity_type(self.name)

    def type_mapping(self, old: Schema, new: Schema) -> dict[EntityType, EntityType]:
        return {e: new[e.name] for e in old if e.name != self.name}


@dataclass(frozen=True)
class RenameEntityType(SchemaChange):
    """Rename a type — pure intension cosmetics, always preserving."""

    old_name: str
    new_name: str

    def apply(self, schema: Schema) -> Schema:
        target = schema[self.old_name]
        renamed = EntityType(self.new_name, target.attributes)
        return schema.without_entity_type(self.old_name).with_entity_type(renamed)

    def type_mapping(self, old: Schema, new: Schema) -> dict[EntityType, EntityType]:
        out = {}
        for e in old:
            out[e] = new[self.new_name if e.name == self.old_name else e.name]
        return out


@dataclass(frozen=True)
class AddAttribute(SchemaChange):
    """Extend one entity type with a new attribute.

    ``default`` supplies the value for existing instances during
    migration; it must belong to the attribute's value set.
    """

    type_name: str
    attribute: str
    default: object = None

    def apply(self, schema: Schema) -> Schema:
        target = schema[self.type_name]
        if self.attribute not in schema.universe:
            raise EvolutionError(
                f"attribute {self.attribute!r} is not in the universe; extend "
                "the universe first (new value sets are a separate design act)"
            )
        grown = EntityType(target.name, target.attributes | {self.attribute})
        return schema.without_entity_type(self.type_name).with_entity_type(grown)

    def type_mapping(self, old: Schema, new: Schema) -> dict[EntityType, EntityType]:
        return {e: new[e.name] for e in old}


@dataclass(frozen=True)
class RemoveAttribute(SchemaChange):
    """Shrink one entity type by an attribute (projection at migration)."""

    type_name: str
    attribute: str

    def apply(self, schema: Schema) -> Schema:
        target = schema[self.type_name]
        if self.attribute not in target.attributes:
            raise EvolutionError(
                f"{self.type_name!r} has no attribute {self.attribute!r}"
            )
        shrunk = EntityType(target.name, target.attributes - {self.attribute})
        return schema.without_entity_type(self.type_name).with_entity_type(shrunk)

    def type_mapping(self, old: Schema, new: Schema) -> dict[EntityType, EntityType]:
        return {e: new[e.name] for e in old}


@dataclass
class EvolutionReport:
    """The verdicts of one analysed change."""

    change: SchemaChange
    new_schema: Schema
    intension_embeds: bool
    migrated: DatabaseExtension | None
    information_preserved: bool
    notes: list[str] = field(default_factory=list)


def evolved_structure(structure, change: SchemaChange, new_schema: Schema):
    """The successor schema's structure, patched from ``structure``.

    Works for :class:`SpecialisationStructure` and its dual (both expose
    the same ``with_type_*`` derivation methods).  Every
    :class:`SchemaChange` edits one entity type, so the successor's
    intension topology is maintained incrementally — one point patch (or
    a remove+add pair for an attribute edit) against the built space —
    instead of being regenerated from its subbase; when the old space
    was never built, nothing is patched and the successor stays lazy.
    The regenerating constructor is the reference oracle.
    """
    old_schema = structure.schema
    if isinstance(change, AddEntityType):
        return structure.with_type_added(new_schema, new_schema[change.name])
    if isinstance(change, RemoveEntityType):
        return structure.with_type_removed(new_schema, old_schema[change.name])
    if isinstance(change, RenameEntityType):
        return structure.with_type_renamed(
            new_schema, old_schema[change.old_name], new_schema[change.new_name])
    if isinstance(change, (AddAttribute, RemoveAttribute)):
        # An attribute edit moves one point of the preorder: remove the
        # old type, then add it back with the changed attribute set.
        old_type = old_schema[change.type_name]
        mid_schema = old_schema.without_entity_type(change.type_name)
        mid = structure.with_type_removed(mid_schema, old_type)
        return mid.with_type_added(new_schema, new_schema[change.type_name])
    return type(structure)(new_schema)


def intension_map(old: Schema, new: Schema,
                  mapping: dict[EntityType, EntityType],
                  old_space=None, new_space=None) -> SpaceMap:
    """The induced map between the two specialisation spaces.

    ``old_space``/``new_space`` let callers supply already built (or
    incrementally derived) spaces; by default both are regenerated from
    their subbases.
    """
    if old_space is None:
        old_space = SpecialisationStructure(old).space
    if new_space is None:
        new_space = SpecialisationStructure(new).space
    missing = old_space.points - frozenset(mapping)
    if missing:
        raise EvolutionError(
            f"no destination for old types: {sorted(e.name for e in missing)}"
        )
    return SpaceMap(old_space, new_space, mapping)


def migrate(db: DatabaseExtension, change: SchemaChange) -> DatabaseExtension:
    """Carry the extension across a change.

    Surviving relations are copied; a grown type pads existing instances
    with the declared default; a shrunk type projects; a removed type's
    relation is dropped.
    """
    new_schema = change.apply(db.schema)
    mapping = change.type_mapping(db.schema, new_schema)
    relations: dict[str, Relation] = {}
    for old_type, new_type in mapping.items():
        rel = db.R(old_type)
        if new_type.attributes == old_type.attributes:
            relations[new_type.name] = Relation(new_type.attributes, rel.tuples)
        elif old_type.attributes < new_type.attributes:
            extra = new_type.attributes - old_type.attributes
            default = getattr(change, "default", None)
            if default is None and len(rel):
                raise EvolutionError(
                    f"growing {old_type.name!r} needs a default for {sorted(extra)}"
                )
            rows = []
            for t in rel.tuples:
                padded = t.as_dict()
                for a in extra:
                    padded[a] = default
                rows.append(padded)
            relations[new_type.name] = Relation(new_type.attributes, rows)
        else:
            from repro.relational import project

            relations[new_type.name] = project(rel, new_type.attributes)
    return DatabaseExtension(new_schema, relations)


def analyse(db: DatabaseExtension, change: SchemaChange) -> EvolutionReport:
    """Full analysis: apply, map intensions, migrate, check round-trip.

    *Information preserved* means every old relation is recoverable from
    the migrated state by name lookup and (for grown types) projection —
    the extensional counterpart of the intension embedding the paper
    points at.
    """
    notes: list[str] = []
    try:
        new_schema = change.apply(db.schema)
    except (SchemaError, EvolutionError) as exc:
        raise EvolutionError(f"change is not applicable: {exc}") from exc
    mapping = change.type_mapping(db.schema, new_schema)
    dropped = [e for e in db.schema if e not in mapping]
    for e in dropped:
        if len(db.R(e)):
            notes.append(
                f"dropping {e.name!r} forgets {len(db.R(e))} instance(s)"
            )
    try:
        # The old structure lives on the state (its space is built at
        # most once across repeated analyses) and the new space is
        # patched from it instead of regenerated.  Force the old space
        # *before* deriving, so even a first-time analysis patches
        # rather than regenerating both sides.
        old_space = db.spec.space
        new_spec = evolved_structure(db.spec, change, new_schema)
        space_map = intension_map(db.schema, new_schema, mapping,
                                  old_space=old_space,
                                  new_space=new_spec.space)
        embeds = space_map.is_embedding()
    except EvolutionError:
        embeds = False
    if not embeds:
        notes.append("the old intension space does not embed in the new one")

    try:
        migrated = migrate(db, change)
    except EvolutionError as exc:
        notes.append(str(exc))
        return EvolutionReport(change, new_schema, embeds, None, False, notes)

    preserved = not dropped or all(len(db.R(e)) == 0 for e in dropped)
    for old_type, new_type in mapping.items():
        original = db.R(old_type)
        arrived = migrated.R(new_type)
        if old_type.attributes <= new_type.attributes:
            from repro.relational import project

            recovered = project(arrived, old_type.attributes)
            if recovered != Relation(old_type.attributes, original.tuples):
                preserved = False
                notes.append(f"round-trip failed for {old_type.name!r}")
        else:
            lossy = len({t.project(new_type.attributes) for t in original.tuples}) \
                < len(original)
            if lossy:
                preserved = False
                notes.append(
                    f"shrinking {old_type.name!r} merged distinct instances"
                )
    return EvolutionReport(change, new_schema, embeds, migrated, preserved, notes)
