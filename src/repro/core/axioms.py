"""The six design axioms as machine-checkable validators (section 2).

Each axiom gets a checker returning a list of :class:`AxiomFinding`
diagnostics; :func:`check_all` aggregates them into an :class:`AxiomReport`
for a schema (intension-level axioms) or a full database state (adding the
extension-level axioms).  Constructors elsewhere already *enforce* several
of these; the checkers re-derive the verdicts independently so audits do
not rely on construction-time behaviour.

The extension-level checkers are *sweeps*, not single predicates: one
audit probes every compound type, every ISA pair, and every integrity
constraint against the same state.  They therefore run on the state's
shared-interned kernel (:attr:`DatabaseExtension.kernel`) and batch the
constraint checks through :class:`repro.kernel.CheckSet`, grouping
dependencies by context relation and determinant so each partition index
is built once for the whole audit.  ``check_*_naive`` counterparts retain
the per-constraint object-level routes as differential oracles (and as
the baseline of benchmark A7).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.attributes import AttributeUniverse, is_atomic_value
from repro.core.contributors import ContributorAssignment
from repro.core.entity_types import EntityType
from repro.core.extension import DatabaseExtension
from repro.core.fd import holds_naive as _entity_fd_holds_naive
from repro.core.integrity import (
    CardinalityConstraint,
    FunctionalConstraint,
    IntegrityConstraint,
    ParticipationConstraint,
    SubsetConstraint,
)
from repro.core.schema import Schema
from repro.core.views import EntityViewType
from repro.errors import DependencyError
from repro.kernel import CheckSet
from repro.relational.algebra import project_naive


@dataclass(frozen=True)
class AxiomFinding:
    """One diagnostic: which axiom, what's wrong, who is involved."""

    axiom: str
    message: str
    offenders: tuple = ()

    def __str__(self) -> str:
        return f"[{self.axiom}] {self.message}"


@dataclass
class AxiomReport:
    """Aggregated findings, queryable per axiom."""

    findings: list[AxiomFinding] = field(default_factory=list)

    def ok(self) -> bool:
        return not self.findings

    def by_axiom(self, axiom: str) -> list[AxiomFinding]:
        return [f for f in self.findings if f.axiom == axiom]

    def render(self) -> str:
        if self.ok():
            return "all axioms satisfied"
        return "\n".join(str(f) for f in self.findings)


def check_attribute_axiom(universe: AttributeUniverse) -> list[AxiomFinding]:
    """Each attribute: one property name, one atomic value set, atomic values.

    The sweep walks every value of every domain, which dominates
    repeated audits of large-domain states; universes are immutable, so
    the findings are memoised per universe (bounded, identity-keyed —
    the memo pins the universe so ids cannot be recycled underneath it).
    """
    cached = _ATTRIBUTE_AXIOM_MEMO.get(id(universe))
    if cached is not None and cached[0] is universe:
        return list(cached[1])
    findings = []
    for name in sorted(universe.property_names):
        domain = universe.domain(name)
        for value in domain.values:
            if not is_atomic_value(value):
                findings.append(AxiomFinding(
                    "Attribute Axiom",
                    f"property {name!r} admits decomposable value {value!r}",
                    (name, value),
                ))
    if len(_ATTRIBUTE_AXIOM_MEMO) >= _ATTRIBUTE_AXIOM_MEMO_CAP:
        _ATTRIBUTE_AXIOM_MEMO.clear()
    _ATTRIBUTE_AXIOM_MEMO[id(universe)] = (universe, tuple(findings))
    return findings


_ATTRIBUTE_AXIOM_MEMO: dict = {}
_ATTRIBUTE_AXIOM_MEMO_CAP = 64


def check_entity_type_axiom(entity_types: Iterable[EntityType]) -> list[AxiomFinding]:
    """No two entity types may share a property set."""
    findings = []
    seen: dict[frozenset[str], EntityType] = {}
    for et in sorted(entity_types):
        twin = seen.get(et.attributes)
        if twin is not None:
            findings.append(AxiomFinding(
                "Entity Type Axiom",
                f"{twin.name!r} and {et.name!r} share the property set "
                f"{sorted(et.attributes)}: synonyms or missing role attribute",
                (twin, et),
            ))
        else:
            seen[et.attributes] = et
    return findings


def check_relationship_axiom(schema: Schema,
                             contributors: ContributorAssignment) -> list[AxiomFinding]:
    """A relationship is an entity type; contributors are generalisations.

    Structurally, compound types being members of E discharges the axiom;
    the remaining checkable content is the contributor Property and that
    each compound's attribute set really unions its contributors' plus
    descriptive extras (it always does, set-theoretically — reported when
    a contributor is somehow not contained, which indicates an assignment
    constructed against a different schema).
    """
    findings = []
    for e in schema.sorted_types():
        for c in sorted(contributors.contributors(e)):
            if c not in schema:
                findings.append(AxiomFinding(
                    "Relationship Axiom",
                    f"contributor {c.name!r} of {e.name!r} is not an entity type",
                    (e, c),
                ))
            elif not c.attributes <= e.attributes:
                findings.append(AxiomFinding(
                    "Relationship Axiom",
                    f"contributor {c.name!r} is not a generalisation of {e.name!r}",
                    (e, c),
                ))
    return findings


def check_extension_axiom(db: DatabaseExtension) -> list[AxiomFinding]:
    """Compound extensions embed injectively in their contributor joins.

    The per-type reports run on the shared kernel (join membership
    factorised through the contributors); the object-level sweep is
    retained as :func:`check_extension_axiom_naive`.
    """
    return _extension_axiom_findings(db, DatabaseExtension.extension_axiom_violations)


def check_extension_axiom_naive(db: DatabaseExtension) -> list[AxiomFinding]:
    """Reference oracle for :func:`check_extension_axiom` (per-type
    contributor joins materialised at the object level)."""
    return _extension_axiom_findings(
        db, DatabaseExtension.extension_axiom_violations_naive
    )


def _extension_axiom_findings(db: DatabaseExtension, report_of) -> list[AxiomFinding]:
    findings = []
    for e in sorted(db.contributors.compound_types()):
        report = report_of(db, e)
        for t in report["unsupported"]:
            findings.append(AxiomFinding(
                "Extension Axiom",
                f"R_{e.name} tuple {t!r} is not supported by the contributor join",
                (e, t),
            ))
        for group in report["collisions"]:
            findings.append(AxiomFinding(
                "Extension Axiom",
                f"R_{e.name} tuples {group!r} share one contributor combination "
                "(injectivity fails)",
                (e, tuple(group)),
            ))
    return findings


def check_view_axiom(schema: Schema,
                     views: Iterable[EntityViewType]) -> list[AxiomFinding]:
    """Views are sets of existing entity types."""
    findings = []
    for view in views:
        for member in sorted(view.members):
            if member not in schema:
                findings.append(AxiomFinding(
                    "View Axiom",
                    f"view {view.name!r} aggregates {member.name!r}, which is "
                    "not an entity type of the schema",
                    (view, member),
                ))
    return findings


def check_integrity_axiom(schema: Schema,
                          constraints: Iterable[IntegrityConstraint],
                          db: DatabaseExtension | None = None) -> list[AxiomFinding]:
    """Constraints are predicates over entity types, implying an entity type.

    With a database state the audit additionally judges each well-typed
    constraint *against* the state: all entity-level dependencies are
    compiled into one :class:`~repro.kernel.CheckSet` per context
    relation (shared-interned, so constraints with a common determinant
    share its partition index) and the set-containment constraints run
    as id-space projections on the same kernel.  The per-constraint
    route is retained as :func:`check_integrity_axiom_naive`.
    """
    findings, checkable = _integrity_typing_findings(schema, constraints)
    if db is not None and checkable:
        ill_typed, judged = _split_ill_typed(checkable, schema)
        findings += ill_typed
        verdicts = _batch_constraint_verdicts(judged, db)
        findings += _violated_constraint_findings(judged, verdicts)
    return findings


def check_integrity_axiom_naive(schema: Schema,
                                constraints: Iterable[IntegrityConstraint],
                                db: DatabaseExtension | None = None) -> list[AxiomFinding]:
    """Reference oracle for :func:`check_integrity_axiom` (one
    object-level check per constraint)."""
    findings, checkable = _integrity_typing_findings(schema, constraints)
    if db is not None and checkable:
        ill_typed, judged = _split_ill_typed(checkable, schema)
        findings += ill_typed
        verdicts = [_constraint_holds_naive(c, db) for c in judged]
        findings += _violated_constraint_findings(judged, verdicts)
    return findings


def _integrity_typing_findings(schema: Schema,
                               constraints: Iterable[IntegrityConstraint],
                               ) -> tuple[list[AxiomFinding], list[IntegrityConstraint]]:
    """The classic typing findings plus the well-typed constraints."""
    findings = []
    checkable = []
    for constraint in constraints:
        well_typed = True
        for e in sorted(constraint.entity_types() | {constraint.context}):
            if e not in schema:
                findings.append(AxiomFinding(
                    "Integrity Axiom",
                    f"constraint {constraint.name!r} ranges over {e.name!r}, "
                    "which is not an entity type",
                    (constraint, e),
                ))
                well_typed = False
        if well_typed:
            checkable.append(constraint)
    return findings, checkable


def _constraint_fds(c: IntegrityConstraint) -> list:
    """The entity-level FDs a built-in constraint compiles to."""
    if isinstance(c, FunctionalConstraint):
        return [c.fd]
    if isinstance(c, CardinalityConstraint):
        return c.as_fds()
    return []


def _split_ill_typed(constraints: list[IntegrityConstraint], schema: Schema,
                     ) -> tuple[list[AxiomFinding], list[IntegrityConstraint]]:
    """Report FD-bearing constraints whose dependency typing is illegal.

    ``EntityFD`` values are deliberately unvalidated at construction
    ("constructed in bulk by generators before filtering"), so an audit
    may meet a constraint whose determinant or dependent is in the
    schema yet not a generalisation of the context.  Judging it against
    a state would raise mid-audit; instead the audit reports it as an
    Integrity Axiom finding and skips its verdict — the same policy as
    for constraints over missing entity types.
    """
    findings, judged = [], []
    for c in constraints:
        try:
            for fd in _constraint_fds(c):
                fd.validate(schema)
        except DependencyError as exc:
            findings.append(AxiomFinding(
                "Integrity Axiom",
                f"constraint {c.name!r} is ill-typed: {exc}",
                (c,),
            ))
            continue
        judged.append(c)
    return findings, judged


def _violated_constraint_findings(constraints: list[IntegrityConstraint],
                                  verdicts: list[bool]) -> list[AxiomFinding]:
    return [
        AxiomFinding(
            "Integrity Axiom",
            f"constraint {c.name!r} is violated in the current state",
            (c,),
        )
        for c, ok in zip(constraints, verdicts) if not ok
    ]


def _constraint_reads(c: IntegrityConstraint) -> frozenset[str] | None:
    """The relation names a built-in constraint's verdict depends on
    (``None`` for unknown kinds, whose ``holds`` may read anything)."""
    if isinstance(c, (FunctionalConstraint, CardinalityConstraint)):
        return frozenset({c.context.name})
    if isinstance(c, SubsetConstraint):
        return frozenset({c.special.name, c.general.name})
    if isinstance(c, ParticipationConstraint):
        return frozenset({c.relationship.name, c.member.name})
    return None


def _chain_delta_rows(db: DatabaseExtension, anc: DatabaseExtension,
                      name: str) -> tuple[list, list] | None:
    """Accumulated (added, removed) id rows of relation ``name`` between
    ``anc`` and ``db``, or ``None`` when the span is not patch-derived
    for it (a wholesale replace, a never-derived kernel, or ``anc`` not
    on the derivation path).

    Kernel derivation flattens whole update spans into one patch, so
    the walk hops from each derived state to its recorded derivation
    base (typically audit point to audit point) rather than stepping
    the per-update delta chain.
    """
    added: list = []
    removed: list = []
    node = db
    while node is not anc:
        kdelta, base = node._kernel_delta, node._kernel_base
        if kdelta is None or base is None:
            return None
        idelta = kdelta.instances.get(name)
        if idelta is not None:
            added += idelta.added
            removed += idelta.removed
        elif name in kdelta.instances:
            return None  # replaced wholesale on this span
        node = base
    return added, removed


def _batch_constraint_verdicts(constraints: list[IntegrityConstraint],
                               db: DatabaseExtension) -> list[bool]:
    """One verdict per constraint, batched on the shared kernel.

    Entity-level FDs are grouped into one ``CheckSet`` per context
    relation; subset/participation constraints are id-space projection
    containments; unknown constraint kinds fall back to their own
    ``holds``.

    Audits of an update chain are incremental: verdicts are cached per
    state, a successor reuses the nearest audited ancestor's verdict for
    every constraint whose relations did not change, and a dirty context
    whose compiled ``CheckSet`` survived from that ancestor re-sweeps
    only the lhs-groups the chain's id-row delta touched
    (:meth:`~repro.kernel.CheckSet.recheck`).
    """
    kern = db.kernel
    if db._constraint_cache is not None:
        # A repeat audit of an already-audited state: the state is its
        # own nearest audited ancestor at distance zero (empty dirty
        # set), matching the self-check-first behaviour of the
        # containment and Extension-Axiom caches.
        anc, dirty = db, frozenset()
    else:
        anc, dirty = db._dirty_since(
            lambda n: n._constraint_cache is not None)
    prior = anc._constraint_cache if anc is not None else None
    cache: dict = {}
    verdicts = [True] * len(constraints)
    checksets: dict[str, CheckSet] = {}
    next_key: dict[str, int] = {}
    fd_keys: list[list[tuple[str, int]]] = [[] for _ in constraints]
    judged_fd: list[int] = []
    for i, c in enumerate(constraints):
        reads = _constraint_reads(c)
        if (prior is not None and reads is not None and c in prior
                and not (reads & dirty)):
            verdicts[i] = cache[c] = prior[c]
            continue
        if isinstance(c, (FunctionalConstraint, CardinalityConstraint)):
            fds = _constraint_fds(c)
        elif isinstance(c, SubsetConstraint):
            verdicts[i] = cache[c] = not kern.stray_projection(
                c.special.name, c.general.attributes, c.general.name
            )
            continue
        elif isinstance(c, ParticipationConstraint):
            covered = kern.project_named(
                c.relationship.name, c.member.attributes
            )
            verdicts[i] = cache[c] = \
                kern.instance(c.member.name).row_set <= covered
            continue
        else:
            verdicts[i] = cache[c] = c.holds(db)
            continue
        # Typing was vetted by _split_ill_typed before verdicts are
        # requested, so compilation cannot raise here.
        judged_fd.append(i)
        for fd in fds:
            context = fd.context.name
            checkset = checksets.get(context)
            if checkset is None:
                checkset = checksets[context] = CheckSet(kern.instance(context))
            key = (context, next_key.get(context, 0))
            next_key[context] = key[1] + 1
            checkset.add_fd(key, fd.determinant.attributes,
                            fd.dependent.attributes)
            fd_keys[i].append(key)
    results: dict = {}
    for context, checkset in checksets.items():
        results.update(_run_context_checkset(db, anc, context, checkset))
    for i in judged_fd:
        verdicts[i] = cache[constraints[i]] = \
            all(results[k].ok for k in fd_keys[i])
    if anc is not None and anc is not db:
        # Carry clean contexts' compiled sets forward so a later audit
        # that dirties them can still recheck instead of re-sweeping.
        # Sharing is safe: recheck only ever runs on a rebound copy.
        for context, checkset in anc._checkset_cache.items():
            if context not in db._checkset_cache and context not in dirty:
                db._checkset_cache[context] = checkset
    db._constraint_cache = cache
    return verdicts


def _run_context_checkset(db: DatabaseExtension,
                          anc: DatabaseExtension | None,
                          context: str, compiled: CheckSet) -> dict:
    """Verdicts for one context's FD set: a dirty re-sweep of only the
    touched lhs-groups when the ancestor's compiled set and the chain's
    id-row delta allow it, a full recorded run otherwise."""
    if anc is not None:
        old = anc._checkset_cache.get(context)
        if (old is not None and old._violating is not None
                and old._fds == compiled._fds and not old._mvds
                and not old._jds):
            delta_rows = _chain_delta_rows(db, anc, context)
            if delta_rows is not None:
                rebound = old.rebound(compiled.instance)
                results = rebound.recheck(*delta_rows)
                db._checkset_cache[context] = rebound
                return results
    results = compiled.run(record=True)
    db._checkset_cache[context] = compiled
    return results


def _constraint_holds_naive(c: IntegrityConstraint, db: DatabaseExtension) -> bool:
    """The per-constraint object-level verdict (no kernel routes)."""
    if isinstance(c, FunctionalConstraint):
        return _entity_fd_holds_naive(c.fd, db)
    if isinstance(c, CardinalityConstraint):
        return all(_entity_fd_holds_naive(fd, db) for fd in c.as_fds())
    if isinstance(c, SubsetConstraint):
        return project_naive(
            db.R(c.special), c.general.attributes
        ).is_subset_of(db.R(c.general))
    if isinstance(c, ParticipationConstraint):
        covered = project_naive(db.R(c.relationship), c.member.attributes)
        return db.R(c.member).tuples <= covered.tuples
    return c.holds(db)


def check_containment(db: DatabaseExtension) -> list[AxiomFinding]:
    """The Containment Condition, reported in axiom style.

    Not one of the six axioms by name, but the section 4 condition the
    whole extension mapping rests on — included in full-state audits.
    Violations come from the shared kernel's id-space projections;
    :func:`check_containment_naive` retains the object-level sweep.
    """
    return _containment_findings(db.containment_violations())


def check_containment_naive(db: DatabaseExtension) -> list[AxiomFinding]:
    """Reference oracle for :func:`check_containment`."""
    return _containment_findings(db.containment_violations_naive())


def _containment_findings(violations) -> list[AxiomFinding]:
    return [
        AxiomFinding(
            "Containment Condition",
            f"pi_{e.name}^{s.name}(R_{s.name}) has {len(stray)} tuple(s) "
            f"outside R_{e.name}",
            (s, e),
        )
        for s, e, stray in violations
    ]


def check_all(schema: Schema,
              db: DatabaseExtension | None = None,
              views: Iterable[EntityViewType] = (),
              constraints: Iterable[IntegrityConstraint] = (),
              contributors: ContributorAssignment | None = None) -> AxiomReport:
    """Run every applicable checker and aggregate the findings.

    With a database state this is the paper's full audit — the
    Containment Condition, the Extension Axiom over every compound type,
    and every integrity constraint judged against the state — executed
    as batched sweeps over the state's shared-interned kernel.  The
    per-constraint object-level route is retained as
    :func:`check_all_naive` (the A7 baseline).
    """
    contributors = contributors or ContributorAssignment(schema)
    report = AxiomReport()
    report.findings += check_attribute_axiom(schema.universe)
    report.findings += check_entity_type_axiom(schema.entity_types)
    report.findings += check_relationship_axiom(schema, contributors)
    report.findings += check_view_axiom(schema, views)
    report.findings += check_integrity_axiom(schema, constraints, db)
    if db is not None:
        report.findings += check_containment(db)
        report.findings += check_extension_axiom(db)
    return report


def check_all_naive(schema: Schema,
                    db: DatabaseExtension | None = None,
                    views: Iterable[EntityViewType] = (),
                    constraints: Iterable[IntegrityConstraint] = (),
                    contributors: ContributorAssignment | None = None) -> AxiomReport:
    """Reference oracle for :func:`check_all`: identical findings, but
    every extension-level check runs its per-constraint object-level
    route (naive projections, materialised joins, one pass per
    constraint)."""
    contributors = contributors or ContributorAssignment(schema)
    report = AxiomReport()
    report.findings += check_attribute_axiom(schema.universe)
    report.findings += check_entity_type_axiom(schema.entity_types)
    report.findings += check_relationship_axiom(schema, contributors)
    report.findings += check_view_axiom(schema, views)
    report.findings += check_integrity_axiom_naive(schema, constraints, db)
    if db is not None:
        report.findings += check_containment_naive(db)
        report.findings += check_extension_axiom_naive(db)
    return report
