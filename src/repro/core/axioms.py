"""The six design axioms as machine-checkable validators (section 2).

Each axiom gets a checker returning a list of :class:`AxiomFinding`
diagnostics; :func:`check_all` aggregates them into an :class:`AxiomReport`
for a schema (intension-level axioms) or a full database state (adding the
extension-level axioms).  Constructors elsewhere already *enforce* several
of these; the checkers re-derive the verdicts independently so audits do
not rely on construction-time behaviour.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.attributes import AttributeUniverse, is_atomic_value
from repro.core.contributors import ContributorAssignment
from repro.core.entity_types import EntityType
from repro.core.extension import DatabaseExtension
from repro.core.integrity import IntegrityConstraint
from repro.core.schema import Schema
from repro.core.views import EntityViewType


@dataclass(frozen=True)
class AxiomFinding:
    """One diagnostic: which axiom, what's wrong, who is involved."""

    axiom: str
    message: str
    offenders: tuple = ()

    def __str__(self) -> str:
        return f"[{self.axiom}] {self.message}"


@dataclass
class AxiomReport:
    """Aggregated findings, queryable per axiom."""

    findings: list[AxiomFinding] = field(default_factory=list)

    def ok(self) -> bool:
        return not self.findings

    def by_axiom(self, axiom: str) -> list[AxiomFinding]:
        return [f for f in self.findings if f.axiom == axiom]

    def render(self) -> str:
        if self.ok():
            return "all axioms satisfied"
        return "\n".join(str(f) for f in self.findings)


def check_attribute_axiom(universe: AttributeUniverse) -> list[AxiomFinding]:
    """Each attribute: one property name, one atomic value set, atomic values."""
    findings = []
    for name in sorted(universe.property_names):
        domain = universe.domain(name)
        for value in domain.values:
            if not is_atomic_value(value):
                findings.append(AxiomFinding(
                    "Attribute Axiom",
                    f"property {name!r} admits decomposable value {value!r}",
                    (name, value),
                ))
    return findings


def check_entity_type_axiom(entity_types: Iterable[EntityType]) -> list[AxiomFinding]:
    """No two entity types may share a property set."""
    findings = []
    seen: dict[frozenset[str], EntityType] = {}
    for et in sorted(entity_types):
        twin = seen.get(et.attributes)
        if twin is not None:
            findings.append(AxiomFinding(
                "Entity Type Axiom",
                f"{twin.name!r} and {et.name!r} share the property set "
                f"{sorted(et.attributes)}: synonyms or missing role attribute",
                (twin, et),
            ))
        else:
            seen[et.attributes] = et
    return findings


def check_relationship_axiom(schema: Schema,
                             contributors: ContributorAssignment) -> list[AxiomFinding]:
    """A relationship is an entity type; contributors are generalisations.

    Structurally, compound types being members of E discharges the axiom;
    the remaining checkable content is the contributor Property and that
    each compound's attribute set really unions its contributors' plus
    descriptive extras (it always does, set-theoretically — reported when
    a contributor is somehow not contained, which indicates an assignment
    constructed against a different schema).
    """
    findings = []
    for e in schema.sorted_types():
        for c in sorted(contributors.contributors(e)):
            if c not in schema:
                findings.append(AxiomFinding(
                    "Relationship Axiom",
                    f"contributor {c.name!r} of {e.name!r} is not an entity type",
                    (e, c),
                ))
            elif not c.attributes <= e.attributes:
                findings.append(AxiomFinding(
                    "Relationship Axiom",
                    f"contributor {c.name!r} is not a generalisation of {e.name!r}",
                    (e, c),
                ))
    return findings


def check_extension_axiom(db: DatabaseExtension) -> list[AxiomFinding]:
    """Compound extensions embed injectively in their contributor joins."""
    findings = []
    for e in sorted(db.contributors.compound_types()):
        report = db.extension_axiom_violations(e)
        for t in report["unsupported"]:
            findings.append(AxiomFinding(
                "Extension Axiom",
                f"R_{e.name} tuple {t!r} is not supported by the contributor join",
                (e, t),
            ))
        for group in report["collisions"]:
            findings.append(AxiomFinding(
                "Extension Axiom",
                f"R_{e.name} tuples {group!r} share one contributor combination "
                "(injectivity fails)",
                (e, tuple(group)),
            ))
    return findings


def check_view_axiom(schema: Schema,
                     views: Iterable[EntityViewType]) -> list[AxiomFinding]:
    """Views are sets of existing entity types."""
    findings = []
    for view in views:
        for member in sorted(view.members):
            if member not in schema:
                findings.append(AxiomFinding(
                    "View Axiom",
                    f"view {view.name!r} aggregates {member.name!r}, which is "
                    "not an entity type of the schema",
                    (view, member),
                ))
    return findings


def check_integrity_axiom(schema: Schema,
                          constraints: Iterable[IntegrityConstraint]) -> list[AxiomFinding]:
    """Constraints are predicates over entity types, implying an entity type."""
    findings = []
    for constraint in constraints:
        for e in sorted(constraint.entity_types() | {constraint.context}):
            if e not in schema:
                findings.append(AxiomFinding(
                    "Integrity Axiom",
                    f"constraint {constraint.name!r} ranges over {e.name!r}, "
                    "which is not an entity type",
                    (constraint, e),
                ))
    return findings


def check_containment(db: DatabaseExtension) -> list[AxiomFinding]:
    """The Containment Condition, reported in axiom style.

    Not one of the six axioms by name, but the section 4 condition the
    whole extension mapping rests on — included in full-state audits.
    """
    findings = []
    for s, e, stray in db.containment_violations():
        findings.append(AxiomFinding(
            "Containment Condition",
            f"pi_{e.name}^{s.name}(R_{s.name}) has {len(stray)} tuple(s) "
            f"outside R_{e.name}",
            (s, e),
        ))
    return findings


def check_all(schema: Schema,
              db: DatabaseExtension | None = None,
              views: Iterable[EntityViewType] = (),
              constraints: Iterable[IntegrityConstraint] = (),
              contributors: ContributorAssignment | None = None) -> AxiomReport:
    """Run every applicable checker and aggregate the findings."""
    contributors = contributors or ContributorAssignment(schema)
    report = AxiomReport()
    report.findings += check_attribute_axiom(schema.universe)
    report.findings += check_entity_type_axiom(schema.entity_types)
    report.findings += check_relationship_axiom(schema, contributors)
    report.findings += check_view_axiom(schema, views)
    report.findings += check_integrity_axiom(schema, constraints)
    if db is not None:
        report.findings += check_containment(db)
        report.findings += check_extension_axiom(db)
    return report
