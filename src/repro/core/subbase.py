"""Subbase choice and constructed entity types (section 3.1).

"Clearly, S doesn't have to be the smallest subbase.  Nor is the subbase
per definition unique. ... This gives the freedom to choose a subbase for T
which reflects the bias to the Universe of Discourse.  Denote by R_T the
chosen subbase, the entity types not in the subbase are called constructed
types."

For the employee example the paper reports
``R_T = {person, department, employee, manager}`` with *worksfor* the only
constructed element: ``S_worksfor = S_employee intersect S_department``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.entity_types import EntityType
from repro.core.schema import Schema
from repro.core.specialisation import SpecialisationStructure
from repro.errors import SchemaError
from repro.topology import irredundant_subbases, topology_from_subbase


class SubbaseChoice:
    """A designer's choice ``R_T`` of subbase entity types.

    Parameters
    ----------
    schema:
        The schema under design.
    chosen:
        Names of the entity types whose ``S_e`` sets form the chosen
        subbase.  Validity (generating the full intension topology) is
        checked eagerly.
    """

    def __init__(self, schema: Schema, chosen: Iterable[str]):
        self.schema = schema
        self.spec = SpecialisationStructure(schema)
        self.chosen: frozenset[EntityType] = frozenset(schema[name] for name in chosen)
        if not self.is_valid():
            raise SchemaError(
                "the chosen entity types do not generate the intension topology; "
                f"missing information about {sorted(e.name for e in self.constructed_types())}"
            )

    def subbase_sets(self) -> frozenset[frozenset[EntityType]]:
        """The subbase ``{S_e | e in R_T}``."""
        return frozenset(self.spec.S(e) for e in self.chosen)

    def is_valid(self) -> bool:
        """Whether the chosen family generates the same topology as ``{S_e}_E``."""
        generated = topology_from_subbase(self.schema.entity_types, self.subbase_sets())
        return generated.opens == self.spec.space.opens

    def constructed_types(self) -> frozenset[EntityType]:
        """The entity types not in ``R_T`` — derivable, per the paper."""
        return self.schema.entity_types - self.chosen

    def expression_for(self, e: EntityType) -> frozenset[EntityType] | None:
        """An intersection expression for a constructed type's ``S_e``.

        Returns the subset ``C`` of chosen types with
        ``S_e = intersection of S_c over c in C`` when one exists (in an
        Alexandrov topology the minimal open of ``e`` is the intersection
        of all chosen subbase members containing ``e``), else ``None`` —
        meaning a union is genuinely required.
        """
        containing = frozenset(c for c in self.chosen if e in self.spec.S(c))
        if not containing:
            return None
        result = self.schema.entity_types
        for c in containing:
            result &= self.spec.S(c)
        return containing if result == self.spec.S(e) else None


def redundant_types(schema: Schema) -> frozenset[EntityType]:
    """Entity types individually removable from the subbase.

    ``e`` is redundant when ``{S_f | f != e}`` still generates the
    intension topology — the designer may declare ``e`` constructed.
    """
    spec = SpecialisationStructure(schema)
    reference = spec.space.opens
    out: set[EntityType] = set()
    for e in schema:
        rest = frozenset(spec.S(f) for f in schema if f != e)
        if topology_from_subbase(schema.entity_types, rest).opens == reference:
            out.add(e)
    return frozenset(out)


def minimal_subbase_choices(schema: Schema,
                            limit: int | None = 16) -> list[frozenset[EntityType]]:
    """All inclusion-minimal valid choices of ``R_T`` (up to ``limit``).

    Each answer is a set of entity types whose ``S_e`` family generates
    the full topology and from which no member can be dropped.  Because
    distinct entity types can have equal ``S_e`` sets is impossible here
    (Entity Type Axiom makes ``e -> S_e`` injective), the translation from
    set families back to entity types is unambiguous.
    """
    spec = SpecialisationStructure(schema)
    by_set = {spec.S(e): e for e in schema}
    families = irredundant_subbases(
        schema.entity_types,
        frozenset(by_set),
        limit=limit,
    )
    return [frozenset(by_set[s] for s in family) for family in families]


def designer_bias_report(schema: Schema) -> dict[str, object]:
    """Summarise the freedom the designer has in choosing ``R_T``.

    Returns the per-type redundancy verdicts, all minimal choices (capped)
    and the "essential" types present in every minimal choice — the paper's
    "hints to the database designer as to which entities are really
    essential and which entities should be considered derivable".
    """
    choices = minimal_subbase_choices(schema)
    essential: frozenset[EntityType]
    if choices:
        essential = frozenset.intersection(*choices)
    else:
        essential = frozenset()
    return {
        "redundant": redundant_types(schema),
        "minimal_choices": choices,
        "essential": essential,
    }
