"""The entity-level Armstrong system and the propagation theorem (section 5.2).

The paper rephrases the Armstrong axioms over entity types:

    A1  g in G_e                        implies  fd(e, g, e)
    A2  fd(f, g, e)  iff  for all h in G_g: fd(f, h, e)
    A3  fd(f, g, e) and fd(g, h, e)     imply   fd(f, h, e)

plus the **propagation theorem** — a dependency valid in context ``g``
is valid in every specialisation ``h in S_g`` — and claims the combined
system is globally *sound and complete*.

Readings fixed by this implementation:

* A2's forward direction is *decomposition*: ``fd(f, g, e)`` yields
  ``fd(f, h, e)`` for every ``h in G_g`` (h's attributes sit inside g's).
  It is derivable from A1 + A3 + propagation; we keep it as an explicit
  rule so the redundancy can be demonstrated (`rules` parameter).
* A2's backward direction is the *union* rule.  The paper notes it "is
  sound because of the Extension Axiom": agreement on all components only
  forces agreement on a compound because a combination of contributor
  instances forms at most one compound instance.  Accordingly the rule
  fires through the *contributors* ``CO_g`` — determination of every
  contributor of a compound determines the compound itself, extra
  attributes included.

Every derived dependency carries a :class:`Derivation` tree, so proofs can
be rendered, audited, and minimised.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.contributors import ContributorAssignment
from repro.core.entity_types import EntityType
from repro.core.fd import EntityFD
from repro.core.generalisation import GeneralisationStructure
from repro.core.schema import Schema
from repro.core.specialisation import SpecialisationStructure
from repro.errors import DependencyError

ALL_RULES = frozenset({"A1", "A2-decomposition", "A2-union", "A3", "propagation"})


@dataclass(frozen=True)
class Derivation:
    """A proof tree: one rule application with its sub-derivations."""

    conclusion: EntityFD
    rule: str
    premises: tuple["Derivation", ...] = field(default_factory=tuple)

    def depth(self) -> int:
        """Longest path to an axiom/premise leaf."""
        if not self.premises:
            return 1
        return 1 + max(p.depth() for p in self.premises)

    def size(self) -> int:
        """Total number of rule applications in the tree."""
        return 1 + sum(p.size() for p in self.premises)

    def render(self, indent: int = 0) -> str:
        """A human-readable proof listing."""
        pad = "  " * indent
        lines = [f"{pad}{self.conclusion!r}   [{self.rule}]"]
        for p in self.premises:
            lines.append(p.render(indent + 1))
        return "\n".join(lines)


class ArmstrongEngine:
    """Fixpoint closure of a premise set under the entity-level rules.

    Parameters
    ----------
    schema:
        The schema fixing the statement space (all ``fd(e, f, h)`` with
        ``e, f in G_h``).
    premises:
        The designer's declared dependencies.
    contributors:
        Contributor assignment used by the A2-union rule; canonical when
        omitted.
    rules:
        Subset of :data:`ALL_RULES` to apply — ablation studies disable
        rules to measure their contribution.
    """

    def __init__(self,
                 schema: Schema,
                 premises: Iterable[EntityFD] = (),
                 contributors: ContributorAssignment | None = None,
                 rules: frozenset[str] = ALL_RULES):
        unknown = rules - ALL_RULES
        if unknown:
            raise DependencyError(f"unknown rules: {sorted(unknown)}")
        self.schema = schema
        self.rules = rules
        self.gen = GeneralisationStructure(schema)
        self.spec = SpecialisationStructure(schema)
        self.contributors = contributors or ContributorAssignment(schema)
        self.premises = tuple(fd.validate(schema) for fd in premises)
        self._closure: dict[EntityFD, Derivation] | None = None

    # ------------------------------------------------------------------
    # closure computation
    # ------------------------------------------------------------------
    def closure(self) -> dict[EntityFD, Derivation]:
        """All derivable dependencies, each with one (first-found) proof."""
        if self._closure is not None:
            return self._closure
        derived: dict[EntityFD, Derivation] = {}

        def add(fd: EntityFD, rule: str, parents: tuple[Derivation, ...]) -> bool:
            if fd in derived:
                return False
            derived[fd] = Derivation(fd, rule, parents)
            return True

        for fd in self.premises:
            add(fd, "premise", ())

        if "A1" in self.rules:
            for e in self.schema:
                for g in self.gen.G(e):
                    add(EntityFD(e, g, e), "A1", ())

        changed = True
        while changed:
            changed = False
            current = list(derived.items())

            if "propagation" in self.rules:
                for fd, proof in current:
                    for h in self.spec.S(fd.context):
                        if h == fd.context:
                            continue
                        if add(EntityFD(fd.determinant, fd.dependent, h),
                               "propagation", (proof,)):
                            changed = True

            if "A2-decomposition" in self.rules:
                for fd, proof in current:
                    for h in self.gen.G(fd.dependent):
                        if h == fd.dependent:
                            continue
                        if add(EntityFD(fd.determinant, h, fd.context),
                               "A2-decomposition", (proof,)):
                            changed = True

            if "A3" in self.rules:
                by_context: dict[EntityType, list[tuple[EntityFD, Derivation]]] = {}
                for fd, proof in derived.items():
                    by_context.setdefault(fd.context, []).append((fd, proof))
                for context, fds in by_context.items():
                    by_determinant: dict[EntityType, list[tuple[EntityFD, Derivation]]] = {}
                    for fd, proof in fds:
                        by_determinant.setdefault(fd.determinant, []).append((fd, proof))
                    for fd1, proof1 in fds:
                        for fd2, proof2 in by_determinant.get(fd1.dependent, ()):
                            if add(EntityFD(fd1.determinant, fd2.dependent, context),
                                   "A3", (proof1, proof2)):
                                changed = True

            if "A2-union" in self.rules:
                for h in self.schema:
                    g_h = self.gen.G(h)
                    for g in g_h:
                        cos = self.contributors.contributors(g)
                        if not cos:
                            continue
                        for f in g_h:
                            target = EntityFD(f, g, h)
                            if target in derived:
                                continue
                            parents = []
                            complete = True
                            for c in sorted(cos):
                                need = EntityFD(f, c, h)
                                if need in derived:
                                    parents.append(derived[need])
                                else:
                                    complete = False
                                    break
                            if complete and add(target, "A2-union", tuple(parents)):
                                changed = True

        self._closure = derived
        return derived

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def derivable(self, fd: EntityFD) -> bool:
        """Whether the dependency is syntactically derivable."""
        fd.validate(self.schema)
        return fd in self.closure()

    def derivation(self, fd: EntityFD) -> Derivation | None:
        """A proof tree for ``fd``, or ``None``."""
        fd.validate(self.schema)
        return self.closure().get(fd)

    def derived_in_context(self, context: EntityType) -> frozenset[EntityFD]:
        """All derivable dependencies whose context is ``context``."""
        return frozenset(fd for fd in self.closure() if fd.context == context)

    def nontrivial_derived(self) -> frozenset[EntityFD]:
        """Derivable dependencies that are not nucleus/trivial ones."""
        return frozenset(fd for fd in self.closure() if not fd.is_trivial())

    def statement_space(self) -> list[EntityFD]:
        """Every well-typed ``fd(e, f, h)`` statement over the schema."""
        out = []
        for h in self.schema.sorted_types():
            g_h = sorted(self.gen.G(h))
            for e in g_h:
                for f in g_h:
                    out.append(EntityFD(e, f, h))
        return out
