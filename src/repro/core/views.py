"""Entity view types and uniquely-translatable view updates (section 2).

The **View Axiom**: an entity view type is a *set of entity types* — not an
arbitrary projection/join expression.  "This limitation ensures that only
those views can be constructed for which a unique translation exists for
updates" — the view-update problem of the older models disappears because
a view instance decomposes uniquely into its constituents.

For contrast, :mod:`repro.universal.view_update` implements what happens
when views are relations computed by joins: updates acquire several
candidate translations.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.core.entity_types import EntityType
from repro.core.extension import DatabaseExtension
from repro.core.schema import Schema
from repro.errors import ViewError
from repro.relational import Relation, Tuple


class EntityViewType:
    """A named set of entity types (the View Axiom's only legal shape)."""

    __slots__ = ("name", "members")

    def __init__(self, name: str, members: Iterable[EntityType]):
        if not isinstance(name, str) or not name:
            raise ViewError("a view type needs a nonempty string name")
        self.name = name
        self.members: frozenset[EntityType] = frozenset(members)
        if not self.members:
            raise ViewError(f"view type {name!r} has no member entity types")

    def validate(self, schema: Schema) -> "EntityViewType":
        """Check the View Axiom against a schema: members must be in E."""
        stray = [e for e in self.members if e not in schema]
        if stray:
            raise ViewError(
                f"view type {self.name!r} mentions non-schema entity types: "
                f"{sorted(e.name for e in stray)}; the View Axiom requires a "
                "set of existing entity types"
            )
        return self

    def attributes(self) -> frozenset[str]:
        """All attributes visible through the view."""
        out: set[str] = set()
        for e in self.members:
            out |= e.attributes
        return frozenset(out)

    def __repr__(self) -> str:
        return f"EntityViewType({self.name!r}, {sorted(e.name for e in self.members)})"


class ViewInstance:
    """The extension of a view: one relation per member entity type.

    "Each view is a simple aggregation and all information about its
    constituents remains available" — the instance is literally the
    family of member relations, so decomposition is the identity and
    updates translate uniquely.
    """

    def __init__(self, view: EntityViewType, db: DatabaseExtension):
        view.validate(db.schema)
        self.view = view
        self.db = db
        self.relations: dict[EntityType, Relation] = {
            e: db.R(e) for e in sorted(view.members)
        }

    def member_relation(self, e: EntityType | str) -> Relation:
        e = self.db.schema[e] if isinstance(e, str) else e
        if e not in self.relations:
            raise ViewError(f"{e.name!r} is not a member of view {self.view.name!r}")
        return self.relations[e]

    def presented_relation(self) -> Relation:
        """The *display* join of the member relations (read-only).

        Offered because users like looking at a single table; updates
        against this display are what the View Axiom forbids — see
        :meth:`ViewUpdate.translate` for the legal route.
        """
        from repro.relational import join_all

        return join_all(self.relations[e] for e in sorted(self.relations))


@dataclass(frozen=True)
class ViewUpdate:
    """An update addressed *through* a view at a specific member type.

    ``kind`` is ``"insert"`` or ``"delete"``; ``member`` names the entity
    type the change is about; ``row`` is the tuple.  Because the member is
    part of the update, the translation to base relations is unique — the
    application retains "all information to interpret updates".
    """

    view: EntityViewType
    kind: str
    member: EntityType
    row: Tuple

    def validate(self, schema: Schema) -> "ViewUpdate":
        self.view.validate(schema)
        if self.kind not in ("insert", "delete"):
            raise ViewError(f"unknown view update kind: {self.kind!r}")
        if self.member not in self.view.members:
            raise ViewError(
                f"{self.member.name!r} is not a member of view {self.view.name!r}"
            )
        if self.row.schema != self.member.attributes:
            raise ViewError(
                f"row schema {sorted(self.row.schema)} does not match member "
                f"{self.member.name!r}"
            )
        return self

    def translate(self, db: DatabaseExtension) -> DatabaseExtension:
        """The unique base-table translation of the view update.

        Inserts propagate projections to generalisations and deletes
        cascade to specialisations, exactly as the direct operations on
        the extension do — the view adds no ambiguity.
        """
        self.validate(db.schema)
        if self.kind == "insert":
            return db.insert(self.member, self.row)
        return db.delete(self.member, self.row)


def translation_count(update: ViewUpdate, db: DatabaseExtension) -> int:
    """The number of distinct minimal translations of a view update.

    Always 1 for axiom-model views — stated as a function so experiment
    E12 can print it beside the Universal Relation's count.
    """
    update.validate(db.schema)
    return 1


def decompose_presented_tuple(view: EntityViewType,
                              row: Mapping) -> dict[EntityType, Tuple]:
    """Split a display-join tuple back into member constituents.

    The decomposition is unique because each member's attribute set is
    known — "all views should be uniquely decomposable to the underlying
    semantic primitives".
    """
    t = row if isinstance(row, Tuple) else Tuple(dict(row))
    missing = view.attributes() - t.schema
    if missing:
        raise ViewError(f"presented tuple lacks attributes: {sorted(missing)}")
    return {e: t.project(e.attributes) for e in sorted(view.members)}
