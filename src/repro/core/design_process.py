"""The section-2 design procedure as an executable engine.

The paper closes its axiom section with a six-step recipe: derive
attributes, enumerate entity types, resolve synonym types, validate
relationships, remove view entities, and analyse dependencies.  This
module runs that recipe over a *draft* — the messy, pre-axiomatic material
a designer collects — and produces a :class:`DesignReport` of actions plus,
when the draft can be repaired automatically, a valid :class:`Schema`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.core.attributes import AttributeUniverse, is_atomic_value
from repro.core.schema import Schema
from repro.core.entity_types import EntityType
from repro.errors import SchemaError


@dataclass
class DraftEntity:
    """A candidate entity type, before the axioms are applied."""

    name: str
    attributes: frozenset[str]
    is_relationship: bool = False
    claimed_contributors: frozenset[str] = frozenset()
    is_cluster: bool = False  # the designer suspects it is a mere view


@dataclass
class DraftDependency:
    """A dependency observation: determinant/dependent may be raw attributes."""

    determinant: str  # entity name or attribute name
    dependent: str
    context: str


@dataclass
class DesignDraft:
    """Raw design material: attributes with domains, entities, dependencies."""

    domains: Mapping[str, Iterable]
    entities: list[DraftEntity]
    dependencies: list[DraftDependency] = field(default_factory=list)


@dataclass(frozen=True)
class DesignAction:
    """One recommendation/transformation produced by the procedure."""

    step: int
    kind: str
    message: str

    def __str__(self) -> str:
        return f"step {self.step} [{self.kind}]: {self.message}"


@dataclass
class DesignReport:
    """The outcome: actions taken/recommended and the resulting schema."""

    actions: list[DesignAction] = field(default_factory=list)
    schema: Schema | None = None

    def by_kind(self, kind: str) -> list[DesignAction]:
        return [a for a in self.actions if a.kind == kind]

    def render(self) -> str:
        lines = [str(a) for a in self.actions]
        if self.schema is not None:
            lines.append(f"resulting schema: {self.schema!r}")
        return "\n".join(lines)


def run_design_process(draft: DesignDraft,
                       synonym_strategy: str = "merge") -> DesignReport:
    """Apply the six design steps to a draft.

    ``synonym_strategy`` decides step 2's repair for duplicate attribute
    sets: ``"merge"`` keeps the lexicographically first name; ``"role"``
    adds a distinguishing role attribute to each duplicate.
    """
    if synonym_strategy not in ("merge", "role"):
        raise SchemaError(f"unknown synonym strategy: {synonym_strategy!r}")
    report = DesignReport()
    domains: dict[str, list] = {k: list(v) for k, v in draft.domains.items()}

    # ------------------------------------------------------------------
    # Step 1 — attribute axiom: unambiguous atomic value sets.
    # ------------------------------------------------------------------
    for attr, values in sorted(domains.items()):
        bad = [v for v in values if not is_atomic_value(v)]
        if bad:
            report.actions.append(DesignAction(
                1, "attribute-axiom",
                f"attribute {attr!r} has decomposable values {bad!r}; split it "
                "into one attribute per role",
            ))
    used: set[str] = set()
    for entity in draft.entities:
        used |= entity.attributes
    unknown = used - set(domains)
    for attr in sorted(unknown):
        domains[attr] = list(range(8))
        report.actions.append(DesignAction(
            1, "attribute-axiom",
            f"attribute {attr!r} has no declared atomic value set; a default "
            "was assigned — confirm its semantic concept",
        ))

    # ------------------------------------------------------------------
    # Step 2 — entity type axiom: resolve synonym types.
    # ------------------------------------------------------------------
    by_attrs: dict[frozenset[str], list[DraftEntity]] = {}
    for entity in draft.entities:
        by_attrs.setdefault(entity.attributes, []).append(entity)
    final_entities: dict[str, frozenset[str]] = {}
    for attrs, group in sorted(by_attrs.items(), key=lambda kv: sorted(kv[0])):
        group = sorted(group, key=lambda d: d.name)
        if len(group) == 1:
            final_entities[group[0].name] = attrs
            continue
        names = [g.name for g in group]
        if synonym_strategy == "merge":
            keeper = names[0]
            final_entities[keeper] = attrs
            report.actions.append(DesignAction(
                2, "synonym-merge",
                f"entity types {names} share {sorted(attrs)}; kept {keeper!r}, "
                f"dropped {names[1:]} as synonyms",
            ))
        else:
            # One marker attribute per duplicate: equal sets with one shared
            # role attribute would violate the Entity Type Axiom again.
            for g in group:
                role_attr = f"role_{g.name}"
                domains.setdefault(role_attr, [g.name])
                final_entities[g.name] = attrs | {role_attr}
            report.actions.append(DesignAction(
                2, "synonym-role",
                f"entity types {names} share {sorted(attrs)}; added role "
                "attributes to keep them distinct",
            ))

    # ------------------------------------------------------------------
    # Step 3 — relationship axiom: contributors must be entity types and
    # common attributes flag multiple roles / hidden aggregation.
    # ------------------------------------------------------------------
    for entity in draft.entities:
        if not entity.is_relationship:
            continue
        for contributor in sorted(entity.claimed_contributors):
            if contributor not in final_entities:
                report.actions.append(DesignAction(
                    3, "relationship-axiom",
                    f"relationship {entity.name!r} claims contributor "
                    f"{contributor!r}, which is not an entity type",
                ))
                continue
            if not final_entities[contributor] <= entity.attributes:
                report.actions.append(DesignAction(
                    3, "relationship-axiom",
                    f"relationship {entity.name!r} does not carry all "
                    f"attributes of contributor {contributor!r}; a relationship "
                    "is the union of its contributing entities",
                ))
        contributor_sets = [
            final_entities[c] for c in entity.claimed_contributors
            if c in final_entities
        ]
        for i, left in enumerate(contributor_sets):
            for right in contributor_sets[i + 1:]:
                common = left & right
                if common:
                    report.actions.append(DesignAction(
                        3, "shared-attribute",
                        f"contributors of {entity.name!r} share attributes "
                        f"{sorted(common)}: check for multiple semantic roles "
                        "or an aggregation not yet recognised",
                    ))

    # ------------------------------------------------------------------
    # Step 4 — identification: extra relationship attributes must not be
    # needed for identity unless covered by an (explicit) entity type.
    # ------------------------------------------------------------------
    for entity in draft.entities:
        if not entity.is_relationship:
            continue
        covered: set[str] = set()
        for contributor in entity.claimed_contributors:
            covered |= final_entities.get(contributor, frozenset())
        extras = entity.attributes - covered
        if extras:
            covering = [
                name for name, attrs in final_entities.items()
                if extras <= attrs and name != entity.name
            ]
            if not covering:
                report.actions.append(DesignAction(
                    4, "identification",
                    f"relationship {entity.name!r} has descriptive attributes "
                    f"{sorted(extras)} covered by no entity type; if they "
                    "identify occurrences, promote them to an entity type",
                ))

    # ------------------------------------------------------------------
    # Step 5 — remove entities that are entity views (pure clusters).
    # ------------------------------------------------------------------
    for entity in draft.entities:
        if not entity.is_cluster or entity.name not in final_entities:
            continue
        attrs = final_entities[entity.name]
        others = {n: a for n, a in final_entities.items() if n != entity.name}
        union_cover = [
            sorted(names) for names in _covering_unions(attrs, others)
        ]
        if union_cover:
            del final_entities[entity.name]
            report.actions.append(DesignAction(
                5, "view-removal",
                f"entity {entity.name!r} equals the aggregation of "
                f"{union_cover[0]}; modelled as an entity view type instead",
            ))
        else:
            report.actions.append(DesignAction(
                5, "view-kept",
                f"cluster {entity.name!r} carries information beyond other "
                "entities (attributes were missing anyway); kept as an entity",
            ))

    # ------------------------------------------------------------------
    # Step 6 — dependency analysis: promote attribute-ranging variables.
    # ------------------------------------------------------------------
    for dep in draft.dependencies:
        for role, variable in (("determinant", dep.determinant),
                               ("dependent", dep.dependent)):
            if variable in final_entities:
                continue
            if variable in domains:
                type_name = f"{variable}_entity"
                if type_name not in final_entities:
                    final_entities[type_name] = frozenset({variable})
                report.actions.append(DesignAction(
                    6, "promote-attribute",
                    f"dependency {role} {variable!r} ranges over an attribute; "
                    f"promoted it to entity type {type_name!r}",
                ))
            else:
                report.actions.append(DesignAction(
                    6, "unknown-dependency-variable",
                    f"dependency {role} {variable!r} is neither an entity type "
                    "nor an attribute",
                ))
        if dep.context not in final_entities:
            report.actions.append(DesignAction(
                6, "missing-context",
                f"dependency context {dep.context!r} has not been observed as "
                "an entity type",
            ))

    # ------------------------------------------------------------------
    # Assemble the final schema if possible.
    # ------------------------------------------------------------------
    try:
        used_attrs = {x for s in final_entities.values() for x in s}
        universe = AttributeUniverse.from_values({
            a: domains[a] for a in sorted(used_attrs) if a in domains
        })
        types = [EntityType(name, attrs) for name, attrs in final_entities.items()]
        report.schema = Schema(universe, types)
    except SchemaError as exc:
        report.actions.append(DesignAction(
            6, "unresolved",
            f"the draft could not be repaired into a valid schema: {exc}",
        ))
    return report


def _covering_unions(target: frozenset[str],
                     candidates: Mapping[str, frozenset[str]],
                     max_size: int = 3) -> list[frozenset[str]]:
    """Subsets of candidate names whose attribute union is exactly ``target``."""
    from itertools import combinations

    usable = {n: a for n, a in candidates.items() if a <= target}
    out: list[frozenset[str]] = []
    names = sorted(usable)
    for size in range(1, min(max_size, len(names)) + 1):
        for combo in combinations(names, size):
            union: set[str] = set()
            for n in combo:
                union |= usable[n]
            if union == set(target):
                out.append(frozenset(combo))
    return out
