"""The paper's running example: the prototype employee database (section 2).

    A = {name, depname, budget, age, location}
    E = {employee, person, department, manager, worksfor}

    entity       attribute set
    ---------    -------------------------------------
    person       {name, age}
    employee     {name, age, depname}
    department   {depname, location}
    manager      {name, age, depname, budget}
    worksfor     {name, age, depname, location}

"The semantic distinction between persons' name and departments' name has
been made explicit.  Integrity constraints such as 'each manager should be
an employee', i.e. subset dependencies, are represented as subset
hierarchies."

Section 3.1's reported subbase: R_T = {person, department, employee,
manager}; *worksfor* is the only constructed element.
"""

from __future__ import annotations

from repro.core.entity_types import EntityType
from repro.core.extension import DatabaseExtension
from repro.core.fd import EntityFD
from repro.core.integrity import (
    CardinalityConstraint,
    ConstraintSet,
    SubsetConstraint,
)
from repro.core.schema import Schema

ATTRIBUTE_SETS: dict[str, frozenset[str]] = {
    "person": frozenset({"name", "age"}),
    "employee": frozenset({"name", "age", "depname"}),
    "department": frozenset({"depname", "location"}),
    "manager": frozenset({"name", "age", "depname", "budget"}),
    "worksfor": frozenset({"name", "age", "depname", "location"}),
}

DOMAINS: dict[str, tuple] = {
    "name": ("ann", "bob", "cas", "dee", "eva", "fay"),
    "age": (28, 31, 35, 42, 47, 53),
    "depname": ("sales", "research", "admin"),
    "budget": (100, 250, 500),
    "location": ("amsterdam", "utrecht", "delft"),
}

PAPER_SUBBASE: frozenset[str] = frozenset({"person", "department", "employee", "manager"})
PAPER_CONSTRUCTED: frozenset[str] = frozenset({"worksfor"})


def employee_schema() -> Schema:
    """The exact schema of the paper's figure and table."""
    return Schema.from_attribute_sets(ATTRIBUTE_SETS, DOMAINS)


def employee_entity(schema: Schema | None = None, name: str = "employee") -> EntityType:
    """Convenience lookup against a (fresh by default) employee schema."""
    schema = schema or employee_schema()
    return schema[name]


def employee_extension(schema: Schema | None = None) -> DatabaseExtension:
    """A small consistent database state for the employee schema.

    Satisfies the Containment Condition and the Extension Axiom; sized to
    keep presheaf/gluing computations comfortable in tests and benches.
    """
    schema = schema or employee_schema()
    departments = [
        {"depname": "sales", "location": "amsterdam"},
        {"depname": "research", "location": "utrecht"},
    ]
    employees = [
        {"name": "ann", "age": 31, "depname": "sales"},
        {"name": "bob", "age": 42, "depname": "research"},
        {"name": "cas", "age": 28, "depname": "sales"},
    ]
    persons = [{"name": t["name"], "age": t["age"]} for t in employees] + [
        {"name": "dee", "age": 53},
    ]
    managers = [
        {"name": "ann", "age": 31, "depname": "sales", "budget": 250},
    ]
    worksfor = [
        {**e, "location": d["location"]}
        for e in employees
        for d in departments
        if d["depname"] == e["depname"]
    ]
    return DatabaseExtension(schema, {
        "person": persons,
        "employee": employees,
        "department": departments,
        "manager": managers,
        "worksfor": worksfor,
    })


def employee_constraints(schema: Schema | None = None) -> ConstraintSet:
    """The constraints the paper names plus the natural cardinality.

    * "each manager should be an employee" — the subset dependency;
    * each employee works for exactly one department — the 1:n
      cardinality of *worksfor*, i.e. ``fd(employee, department,
      worksfor)``.
    """
    schema = schema or employee_schema()
    constraints = ConstraintSet(schema)
    constraints.add(SubsetConstraint(schema["manager"], schema["employee"]))
    constraints.add(SubsetConstraint(schema["employee"], schema["person"]))
    constraints.add(CardinalityConstraint(
        schema["worksfor"], schema["employee"], schema["department"], "1:n",
    ))
    return constraints


def employee_fd(schema: Schema | None = None) -> EntityFD:
    """The example dependency used throughout section 5's discussion."""
    schema = schema or employee_schema()
    return EntityFD(schema["employee"], schema["department"], schema["worksfor"])


# The S_e and G_e sets the paper reports (by entity-type name), used by
# tests and by the E3/E5 benches as the expected values.
PAPER_S_SETS: dict[str, frozenset[str]] = {
    "person": frozenset({"person", "employee", "manager", "worksfor"}),
    "employee": frozenset({"employee", "manager", "worksfor"}),
    "department": frozenset({"department", "worksfor"}),
    "manager": frozenset({"manager"}),
    "worksfor": frozenset({"worksfor"}),
}

PAPER_G_SETS: dict[str, frozenset[str]] = {
    "person": frozenset({"person"}),
    "employee": frozenset({"person", "employee"}),
    "department": frozenset({"department"}),
    "manager": frozenset({"person", "employee", "manager"}),
    "worksfor": frozenset({"person", "employee", "department", "worksfor"}),
}

PAPER_CONTRIBUTORS: dict[str, frozenset[str]] = {
    "person": frozenset(),
    "employee": frozenset({"person"}),
    "department": frozenset(),
    "manager": frozenset({"employee"}),
    "worksfor": frozenset({"employee", "department"}),
}
