"""Schemas: a property universe plus entity types (sections 2-3).

"We start our formalisation process with a finite set A = {a_i} of
property names and a set of entity types E = {e_j}.  In particular, each
entity type e is a named subset of A: A_e."

The :class:`Schema` is the anchor object of the library: it validates the
Entity Type Axiom at construction, computes the usage sets ``V_a``
(section 3.1) and offers name-based lookup for every other module.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.attributes import AttributeUniverse, PropertyName
from repro.core.entity_types import EntityType
from repro.errors import AxiomViolationError, SchemaError


class Schema:
    """The database intension's raw material: ``(A, E)``.

    Parameters
    ----------
    universe:
        The attribute universe supplying ``A`` and the value sets.
    entity_types:
        The designer's enumeration ``E``.  Every attribute used must be in
        ``A`` and no two types may share an attribute set (Entity Type
        Axiom).
    """

    __slots__ = ("universe", "_by_name", "_types")

    def __init__(self, universe: AttributeUniverse, entity_types: Iterable[EntityType]):
        self.universe = universe
        self._types: tuple[EntityType, ...] = tuple(sorted(entity_types))
        self._by_name: dict[str, EntityType] = {}
        seen_attr_sets: dict[frozenset[PropertyName], EntityType] = {}
        for et in self._types:
            if et.name in self._by_name:
                raise SchemaError(f"duplicate entity type name: {et.name!r}")
            stray = et.attributes - universe.property_names
            if stray:
                raise SchemaError(
                    f"entity type {et.name!r} uses property names outside A: {sorted(stray)}"
                )
            twin = seen_attr_sets.get(et.attributes)
            if twin is not None:
                raise AxiomViolationError(
                    "Entity Type Axiom",
                    f"entity types {twin.name!r} and {et.name!r} have the same "
                    f"property set {sorted(et.attributes)}; they are synonyms "
                    "or underspecified (add a role attribute)",
                    offenders=(twin, et),
                )
            seen_attr_sets[et.attributes] = et
            self._by_name[et.name] = et

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_attribute_sets(cls,
                            entity_attrs: Mapping[str, Iterable[PropertyName]],
                            domains: Mapping[PropertyName, Iterable] | None = None) -> "Schema":
        """Build a schema from ``{type name: attribute names}``.

        When ``domains`` is omitted, each property name receives a small
        default integer value set — enough for intension-level work and for
        generating test extensions.
        """
        all_attrs: set[PropertyName] = set()
        for attrs in entity_attrs.values():
            all_attrs.update(attrs)
        if domains is None:
            domains = {a: range(8) for a in sorted(all_attrs)}
        else:
            missing = all_attrs - set(domains)
            if missing:
                raise SchemaError(f"domains missing for properties: {sorted(missing)}")
        universe = AttributeUniverse.from_values({a: domains[a] for a in sorted(set(domains) | all_attrs)})
        types = [EntityType(name, attrs) for name, attrs in entity_attrs.items()]
        return cls(universe, types)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def property_names(self) -> frozenset[PropertyName]:
        """The universe ``A``."""
        return self.universe.property_names

    @property
    def entity_types(self) -> frozenset[EntityType]:
        """The enumeration ``E``."""
        return frozenset(self._types)

    def sorted_types(self) -> list[EntityType]:
        """Entity types in name order (for deterministic output)."""
        return list(self._types)

    def __getitem__(self, name: str) -> EntityType:
        if name not in self._by_name:
            raise SchemaError(f"unknown entity type: {name!r}")
        return self._by_name[name]

    def get(self, name: str) -> EntityType | None:
        return self._by_name.get(name)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, EntityType):
            return self._by_name.get(item.name) == item
        return item in self._by_name

    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self):
        return iter(self._types)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (self.entity_types == other.entity_types
                and self.property_names == other.property_names)

    def __repr__(self) -> str:
        return f"Schema({len(self.universe)} properties, {len(self._types)} entity types)"

    # ------------------------------------------------------------------
    # section 3.1: the usage sets V_a
    # ------------------------------------------------------------------
    def using(self, attribute: PropertyName) -> frozenset[EntityType]:
        """``V_a = {e in E | a in A_e}`` — entity types using ``attribute``."""
        if attribute not in self.universe:
            raise SchemaError(f"unknown property name: {attribute!r}")
        return frozenset(e for e in self._types if attribute in e.attributes)

    def usage_family(self) -> dict[PropertyName, frozenset[EntityType]]:
        """The whole family ``V = {V_a | a in A}``."""
        return {a: self.using(a) for a in sorted(self.property_names)}

    def used_property_names(self) -> frozenset[PropertyName]:
        """Property names appearing in at least one entity type."""
        used: set[PropertyName] = set()
        for et in self._types:
            used |= et.attributes
        return frozenset(used)

    # ------------------------------------------------------------------
    # convenience edits (schemas are immutable; these return copies)
    # ------------------------------------------------------------------
    def with_entity_type(self, entity_type: EntityType) -> "Schema":
        """A copy with one more entity type (axioms re-validated)."""
        return Schema(self.universe, list(self._types) + [entity_type])

    def without_entity_type(self, name: str) -> "Schema":
        """A copy lacking the named entity type."""
        if name not in self._by_name:
            raise SchemaError(f"unknown entity type: {name!r}")
        return Schema(self.universe, [e for e in self._types if e.name != name])
