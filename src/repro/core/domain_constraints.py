"""Domain constraints — and MVDs as their special case (section 6).

"Currently we investigate more complex constraints ... It can be shown
that multi-valued dependencies are a special case of domain constraints."

A *domain constraint* restricts which members of ``P(D_e)`` are allowed
extensions: it is a predicate on whole relation states, not on tuple
pairs.  Following the Integrity Axiom it is anchored at an entity type
(the context).  The executable version of the paper's claim is
:func:`mvd_domain_constraint`: the MVD ``X ->> Y`` in context ``h`` is the
domain constraint "``R_h`` is closed under the swap operation" — a
condition on the *set* ``R_h``, not expressible tuple-pairwise, which is
precisely what makes it a domain constraint rather than an implication
between projections.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.entity_types import EntityType
from repro.core.extension import DatabaseExtension
from repro.core.generalisation import GeneralisationStructure
from repro.core.integrity import IntegrityConstraint
from repro.core.schema import Schema
from repro.errors import DependencyError
from repro.kernel import InstanceKernel
from repro.relational import Relation
from repro.relational.mvd import MVD, holds_in as mvd_holds, violating_swaps


class DomainConstraint(IntegrityConstraint):
    """An arbitrary predicate over the extension set ``R_context``.

    Parameters
    ----------
    name:
        Display name for reports.
    context:
        The entity type whose extension is constrained.
    predicate:
        ``Relation -> bool``; True when the state is allowed.
    explain:
        Optional ``Relation -> list[str]`` producing violation messages;
        a generic message is emitted otherwise.
    """

    def __init__(self, name: str, context: EntityType,
                 predicate: Callable[[Relation], bool],
                 explain: Callable[[Relation], list[str]] | None = None):
        self.name = name
        self.context = context
        self._predicate = predicate
        self._explain = explain

    def entity_types(self) -> frozenset[EntityType]:
        return frozenset({self.context})

    def holds(self, db: DatabaseExtension) -> bool:
        return bool(self._predicate(db.R(self.context)))

    def violation_report(self, db: DatabaseExtension) -> list[str]:
        if self.holds(db):
            return []
        if self._explain is not None:
            return [f"{self.name}: {msg}" for msg in self._explain(db.R(self.context))]
        return [f"{self.name}: the extension of {self.context.name!r} is not allowed"]


class EntityMVD:
    """An entity-level multi-valued dependency ``mvd(e, f, h)``.

    ``e`` multi-determines ``f`` in the context ``h``: within ``R_h``,
    fixing the e-part makes the set of f-parts independent of the rest.
    Typing matches :class:`~repro.core.fd.EntityFD` (both sides generalise
    the context).
    """

    __slots__ = ("determinant", "dependent", "context")

    def __init__(self, determinant: EntityType, dependent: EntityType,
                 context: EntityType):
        self.determinant = determinant
        self.dependent = dependent
        self.context = context

    def validate(self, schema: Schema) -> "EntityMVD":
        gen = GeneralisationStructure(schema)
        for part, role in ((self.determinant, "determinant"),
                           (self.dependent, "dependent")):
            if part not in gen.G(self.context):
                raise DependencyError(
                    f"{role} {part.name!r} is not a generalisation of the "
                    f"context {self.context.name!r}"
                )
        return self

    def as_relational(self) -> MVD:
        """The attribute-level MVD over the context's schema."""
        return MVD(self.determinant.attributes, self.dependent.attributes,
                   self.context.attributes)

    def __repr__(self) -> str:
        return (f"mvd({self.determinant.name}, {self.dependent.name}, "
                f"{self.context.name})")


def holds(entity_mvd: EntityMVD, db: DatabaseExtension) -> bool:
    """Whether the state satisfies the entity-level MVD."""
    entity_mvd.validate(db.schema)
    return mvd_holds(entity_mvd.as_relational(), db.R(entity_mvd.context))


def mvd_domain_constraint(schema: Schema, entity_mvd: EntityMVD) -> DomainConstraint:
    """The paper's claim, executably: an MVD *is* a domain constraint.

    The returned constraint allows exactly the extensions of the context
    that are closed under the MVD's swap operation.  Tests assert that
    for every state, ``holds(entity_mvd, db) == constraint.holds(db)`` —
    the two formulations coincide.
    """
    entity_mvd.validate(schema)
    relational = entity_mvd.as_relational()

    def predicate(relation: Relation) -> bool:
        return mvd_holds(relational, relation)

    def explain(relation: Relation) -> list[str]:
        return [
            f"swap tuple {t!r} is missing"
            for t in violating_swaps(relational, relation)
        ]

    return DomainConstraint(
        f"domain[{entity_mvd!r}]", entity_mvd.context, predicate, explain,
    )


def fd_domain_constraint(schema: Schema, fd) -> DomainConstraint:
    """FDs are domain constraints too (the inclusion is strict the other way).

    Provided for completeness of the section-6 picture: the hierarchy is
    FD < MVD < domain constraint, and tests confirm both inclusions on
    concrete states.  The extension check runs on the interned instance
    (id rows grouped by the determinant partition);
    :func:`fd_extension_holds_naive` retains the witness-dict sweep as
    the reference oracle.
    """
    from repro.core.fd import EntityFD

    if not isinstance(fd, EntityFD):
        raise DependencyError("fd_domain_constraint expects an EntityFD")
    fd.validate(schema)

    def predicate(relation: Relation) -> bool:
        return InstanceKernel.of(relation).fd_holds(
            fd.determinant.attributes, fd.dependent.attributes
        )

    return DomainConstraint(f"domain[{fd!r}]", fd.context, predicate)


def fd_extension_holds_naive(fd, relation: Relation) -> bool:
    """Reference oracle for the :func:`fd_domain_constraint` predicate."""
    witness = {}
    for t in relation.tuples:
        key = t.project(fd.determinant.attributes)
        value = t.project(fd.dependent.attributes)
        if key in witness and witness[key] != value:
            return False
        witness[key] = value
    return True
