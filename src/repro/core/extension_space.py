"""The extension as a topological space of entities (section 4).

"The extension of a database can be seen as a topological space built out
of entities rather than entity types.  The relationship between database
intension and extension then is an injective mapping between two
topological spaces."  The paper leaves the construction "beyond the scope
of this paper"; this module carries it out.

Points are *instances* ``(type name, tuple)``.  Instance ``(e, t)``
specialises ``(f, u)`` when ``f`` generalises ``e`` and ``u`` is the
projection of ``t`` — the data-level ISA.  The Containment Condition is
exactly what makes this well-defined (every projection target exists), and
the Alexandrov topology of the order is the extension space.  Projecting
an instance to its type is then a continuous, open map onto the intension
space, whose fibers are the relations ``R_e``.
"""

from __future__ import annotations

from repro.core.extension import DatabaseExtension
from repro.core.generalisation import GeneralisationStructure
from repro.errors import ContainmentError
from repro.relational import Tuple
from repro.topology import FiniteSpace, SpaceMap, alexandrov_space

InstancePoint = tuple[str, Tuple]


def instance_points(db: DatabaseExtension) -> frozenset[InstancePoint]:
    """All instances of the state, tagged with their entity-type name."""
    return frozenset(
        (e.name, t)
        for e in db.schema
        for t in db.R(e).tuples
    )


def instance_generalisations(db: DatabaseExtension,
                             point: InstancePoint,
                             gen: GeneralisationStructure | None = None,
                             ) -> frozenset[InstancePoint]:
    """The data-level generalisations of one instance (including itself).

    Raises :class:`ContainmentError` when a projection target is missing —
    the extension space only exists over containment-satisfying states,
    which is the topological restatement of the Containment Condition.
    Callers mapping over many points pass a shared ``gen`` so the
    generalisation structure is computed once, not once per instance.
    """
    name, t = point
    e = db.schema[name]
    if gen is None:
        gen = db.gen
    out: set[InstancePoint] = set()
    for f in gen.G(e):
        projected = t.project(f.attributes)
        if projected not in db.R(f).tuples:
            raise ContainmentError(
                f"instance {t!r} of {name!r} has no {f.name!r} counterpart; "
                "the extension space requires the Containment Condition"
            )
        out.add((f.name, projected))
    return frozenset(out)


def extension_space(db: DatabaseExtension) -> FiniteSpace:
    """The Alexandrov topology of the instance-specialisation order.

    Materialises every open set; the open-set count is exponential in the
    number of *incomparable* instances (an antichain of k instances yields
    2^k unions), so this is for example-sized states.  For large states
    use the order-level predicates (:func:`projection_is_monotone`), which
    answer the same questions in O(n^2) without materialising opens.
    """
    points = instance_points(db)
    up = {p: instance_generalisations(db, p, db.gen) for p in points}
    return alexandrov_space(points, up)


def projection_is_monotone(db: DatabaseExtension) -> bool:
    """Order-level continuity of the type projection (no topology built).

    For Alexandrov spaces a map is continuous iff it is monotone for the
    specialisation preorders; the instance order projects to the type
    order by construction, and this predicate verifies it directly —
    O(instances^2) instead of exponential open-set materialisation.
    """
    points = instance_points(db)
    gen = db.gen
    for p in points:
        e = db.schema[p[0]]
        for name, _ in instance_generalisations(db, p, gen):
            if db.schema[name] not in gen.G(e):
                return False
    return True


def type_projection(db: DatabaseExtension) -> SpaceMap:
    """The continuous map extension space -> intension space.

    Sends each instance to its entity type.  Continuity is the formal
    content of "the structure of the entity type space is neatly mapped
    into the extension space".  The map is generally *not* open: an
    instance with no counterpart in some specialisation (a person who is
    not an employee) has a minimal open whose image misses that
    specialising type — tests pin this asymmetry on the employee state.
    """
    ext = extension_space(db)
    intension = db.spec.space
    mapping = {p: db.schema[p[0]] for p in ext.points}
    return SpaceMap(ext, intension, mapping)


def fibers(db: DatabaseExtension) -> dict[str, frozenset[InstancePoint]]:
    """The preimages of the projection: one fiber per entity type = R_e."""
    points = instance_points(db)
    out: dict[str, set[InstancePoint]] = {e.name: set() for e in db.schema}
    for name, t in points:
        out[name].add((name, t))
    return {name: frozenset(pts) for name, pts in out.items()}


def instance_minimal_open(db: DatabaseExtension,
                          point: InstancePoint) -> frozenset[InstancePoint]:
    """The specialising instances of one instance — its ``S`` set.

    Mirrors ``S_e`` at the data level: the instances whose projection is
    this instance.
    """
    space = extension_space(db)
    return space.minimal_open(point)


def intension_extension_report(db: DatabaseExtension) -> dict[str, object]:
    """The section-4 relationship, verified on one state.

    Returns the projection map's continuity/openness, whether instance
    minimal opens project into type minimal opens (S-compatibility), and
    the fiber sizes.
    """
    projection = type_projection(db)
    ext = projection.source
    compatible = True
    for point in ext.points:
        instance_open = ext.minimal_open(point)
        type_open = db.spec.S(db.schema[point[0]])
        if not {db.schema[q[0]] for q in instance_open} <= type_open:
            compatible = False
            break
    return {
        "continuous": projection.is_continuous(),
        "open_map": projection.is_open_map(),
        "s_compatible": compatible,
        "fiber_sizes": {
            name: len(pts) for name, pts in fibers(db).items()
        },
        "points": len(ext.points),
        "opens": len(ext.opens),
    }
