"""The mapping family (pi, rho) and its corollary; the extension presheaf.

Section 4.2 defines, for chains ``S_h subseteq S_f subseteq S_e`` (h
specialises f specialises e), the mapping ``rho(h, f, e) : E_e(h) ->
E_e(f)`` and states the corollary

    (a)  pi_h^e = pi_f^e  after  pi_h^f        (projections compose)
    (b)  rho(f,e,e) o rho(h,f,e) = rho(h,e,e)  (restrictions compose)
    (c)  pi o rho = rho o pi                   (the square commutes)

Because the Containment Condition makes ``E_e(h) subseteq E_e(f)`` (both
are subsets of D_e), every ``rho`` is concretely an inclusion; the
functions below build the mappings explicitly and verify the corollary on
actual extensions.  Section 6's sheaf-theoretic programme is realised by
:func:`instance_presheaf`, which packages the instance data as a presheaf
on the specialisation topology whose gluing condition expresses global
consistency of the database state.
"""

from __future__ import annotations

from repro.core.entity_types import EntityType
from repro.core.extension import DatabaseExtension
from repro.errors import ExtensionError
from repro.relational import Relation, Tuple
from repro.topology import Presheaf


def _require_chain(db: DatabaseExtension, h: EntityType, f: EntityType, e: EntityType) -> None:
    s = db.spec
    if h not in s.S(f) or f not in s.S(e):
        raise ExtensionError(
            f"rho needs S_{h.name} subseteq S_{f.name} subseteq S_{e.name}; "
            "the chain does not hold"
        )


def pi_tuple(t: Tuple, e: EntityType) -> Tuple:
    """``pi_e`` applied to one tuple (projection onto A_e)."""
    return t.project(e.attributes)


def rho(db: DatabaseExtension, h: EntityType, f: EntityType, e: EntityType) -> dict[Tuple, Tuple]:
    """The concrete mapping ``rho(h,f,e) : E_e(h) -> E_e(f)``.

    By containment ``E_e(h) subseteq E_e(f)``, so the mapping is the
    inclusion; it is returned as an explicit dict so tests can compose
    mappings without re-deriving them.  Raises when the chain condition or
    the containment needed for well-definedness fails.
    """
    _require_chain(db, h, f, e)
    source = db.E(e, h)
    target = db.E(e, f)
    mapping: dict[Tuple, Tuple] = {}
    for t in source.tuples:
        if t not in target.tuples:
            raise ExtensionError(
                f"rho({h.name},{f.name},{e.name}) undefined on {t!r}: "
                "the Containment Condition fails for this extension"
            )
        mapping[t] = t
    return mapping


def corollary_a(db: DatabaseExtension, h: EntityType, f: EntityType, e: EntityType) -> bool:
    """(a) projecting h -> e directly equals projecting h -> f -> e."""
    _require_chain(db, h, f, e)
    for t in db.R(h).tuples:
        if pi_tuple(t, e) != pi_tuple(pi_tuple(t, f), e):
            return False
    return True


def corollary_b(db: DatabaseExtension, h: EntityType, f: EntityType, e: EntityType) -> bool:
    """(b) rho(f,e,e) o rho(h,f,e) = rho(h,e,e) as concrete mappings."""
    _require_chain(db, h, f, e)
    first = rho(db, h, f, e)
    second = rho(db, f, e, e)
    direct = rho(db, h, e, e)
    return all(second[first[t]] == direct[t] for t in first)


def corollary_c(db: DatabaseExtension, h: EntityType, f: EntityType, e: EntityType) -> bool:
    """(c) the pi / rho square commutes.

    Following the paper's ``pi_f o rho(h,f,f) = rho(h,f,e) o pi_f``-shaped
    statement: restricting within D_f then projecting to D_e agrees with
    projecting to D_e then restricting.  With inclusions this reduces to:
    the E_e-image of E_f(h) equals the rho-image of E_e(h) on every tuple
    of R_h.
    """
    _require_chain(db, h, f, e)
    rho_hfe = rho(db, h, f, e)
    for t in db.R(h).tuples:
        via_f = pi_tuple(pi_tuple(t, f), e)
        via_e = rho_hfe[pi_tuple(t, e)]
        if via_f != via_e:
            return False
    return True


def all_chains(db: DatabaseExtension) -> list[tuple[EntityType, EntityType, EntityType]]:
    """Every triple ``(h, f, e)`` with ``S_h subseteq S_f subseteq S_e``."""
    spec = db.spec
    chains = []
    for e in db.schema.sorted_types():
        for f in sorted(spec.S(e)):
            for h in sorted(spec.S(f)):
                chains.append((h, f, e))
    return chains


def verify_corollary(db: DatabaseExtension) -> dict[str, bool]:
    """Check (a), (b), (c) over every chain of the schema."""
    chains = all_chains(db)
    return {
        "a": all(corollary_a(db, *chain) for chain in chains),
        "b": all(corollary_b(db, *chain) for chain in chains),
        "c": all(corollary_c(db, *chain) for chain in chains),
    }


# ----------------------------------------------------------------------
# section 6: the extension as a presheaf on the intension topology
# ----------------------------------------------------------------------
def instance_presheaf(db: DatabaseExtension) -> Presheaf:
    """The database state as a presheaf on the specialisation topology.

    To an open set ``U`` of entity types we assign the *compatible
    instance families* over U: choices of one tuple per type in U such
    that whenever ``g in U`` generalises ``e in U``, the g-component is
    the projection of the e-component.  Restriction along ``V subseteq U``
    forgets components.

    Sections over the minimal open ``S_e`` are "an entity seen with all
    its specialisations"; the paper's mappings ``rho`` become the presheaf
    restriction maps, and the sheaf *gluing* condition asks when locally
    consistent instance choices assemble into a global database state —
    exactly the continuity question section 6 raises.

    The construction is exponential in ``len(U)`` per open set; intended
    for example-sized schemas (tests, benches, teaching), not bulk data.
    """
    space = db.spec.space

    def families(u: frozenset[EntityType]) -> frozenset:
        members = sorted(u)
        partial: list[dict[EntityType, Tuple]] = [{}]
        for e in members:
            partial = [
                {**fam, e: t}
                for fam in partial
                for t in db.R(e).tuples
            ]
        good = []
        for fam in partial:
            ok = True
            for e in members:
                for g in members:
                    if g != e and g.attributes <= e.attributes:
                        if fam[e].project(g.attributes) != fam[g]:
                            ok = False
                            break
                if not ok:
                    break
            if ok:
                good.append(frozenset((e.name, t) for e, t in fam.items()))
        return frozenset(good)

    sections = {u: families(u) for u in space.opens}
    restrictions: dict[tuple, dict] = {}
    for u in space.opens:
        for v in space.opens:
            if not v <= u:
                continue
            keep = {e.name for e in v}
            restrictions[(u, v)] = {
                s: frozenset(item for item in s if item[0] in keep)
                for s in sections[u]
            }
    return Presheaf(space, sections, restrictions)


def gluing_report(db: DatabaseExtension) -> dict[str, object]:
    """Check the sheaf condition of the instance presheaf on E with cover {S_e}.

    Returns the failures (if any) and the verdict.  A consistent extension
    of a schema whose instance families are determined by projections
    glues uniquely; failures pinpoint instances that exist locally but
    admit no (or several) global assemblies.
    """
    presheaf = instance_presheaf(db)
    space = db.spec.space
    cover = [db.spec.S(e) for e in db.schema.sorted_types()]
    failures = presheaf.gluing_failures(space.points, cover)
    return {"is_sheaf_on_E": not failures, "failures": failures}
