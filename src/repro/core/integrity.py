"""Integrity constraints (Integrity Axiom, sections 2 and 5).

"An integrity constraint is a predicate over entity types and implies an
entity type."  Constraints therefore name the entity types they range over
and the *context* entity type their satisfaction is judged in; dependencies
among entities are "a generalisation of relationships".

Built-in constraint kinds:

* :class:`SubsetConstraint` — "each manager should be an employee":
  extensional containment along an ISA edge (the Containment Condition
  localised to one pair),
* :class:`FunctionalConstraint` — wraps an entity-level FD,
* :class:`CardinalityConstraint` — EAR-style 1:1 / 1:n / n:m between two
  contributors of a relationship, expressed through FDs in its context,
* :class:`ParticipationConstraint` — total participation of a contributor
  in a relationship (existence dependency).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable

from repro.core.entity_types import EntityType
from repro.core.extension import DatabaseExtension
from repro.core.fd import EntityFD, holds, violations
from repro.core.schema import Schema
from repro.errors import DependencyError
from repro.relational import project


class IntegrityConstraint(ABC):
    """A predicate over entity types implying a context entity type."""

    name: str
    context: EntityType

    @abstractmethod
    def entity_types(self) -> frozenset[EntityType]:
        """The entity types the predicate ranges over."""

    @abstractmethod
    def holds(self, db: DatabaseExtension) -> bool:
        """Whether the database state satisfies the constraint."""

    @abstractmethod
    def violation_report(self, db: DatabaseExtension) -> list[str]:
        """Human-readable descriptions of each violation (empty when ok)."""

    def validate(self, schema: Schema) -> "IntegrityConstraint":
        """Check the Integrity Axiom: everything mentioned is an entity type."""
        for e in self.entity_types() | {self.context}:
            if e not in schema:
                raise DependencyError(
                    f"constraint {self.name!r} mentions {e!r}, which is not an "
                    "entity type; the Integrity Axiom requires constraints "
                    "over existing entity types only"
                )
        return self


class SubsetConstraint(IntegrityConstraint):
    """``pi_general(R_special) subseteq R_general`` for one ISA pair."""

    def __init__(self, special: EntityType, general: EntityType):
        if not general.attributes <= special.attributes:
            raise DependencyError(
                f"{general.name!r} is not a generalisation of {special.name!r}; "
                "a subset dependency needs an ISA pair"
            )
        self.special = special
        self.general = general
        self.context = special
        self.name = f"{special.name} ISA {general.name}"

    def entity_types(self) -> frozenset[EntityType]:
        return frozenset({self.special, self.general})

    def holds(self, db: DatabaseExtension) -> bool:
        return project(db.R(self.special), self.general.attributes).is_subset_of(
            db.R(self.general)
        )

    def violation_report(self, db: DatabaseExtension) -> list[str]:
        projected = project(db.R(self.special), self.general.attributes)
        stray = projected.tuples - db.R(self.general).tuples
        return [
            f"{self.name}: {t!r} has no counterpart in R_{self.general.name}"
            for t in sorted(stray, key=repr)
        ]


class FunctionalConstraint(IntegrityConstraint):
    """An entity-level functional dependency as an integrity constraint."""

    def __init__(self, fd: EntityFD):
        self.fd = fd
        self.context = fd.context
        self.name = repr(fd)

    def entity_types(self) -> frozenset[EntityType]:
        return frozenset({self.fd.determinant, self.fd.dependent, self.fd.context})

    def holds(self, db: DatabaseExtension) -> bool:
        return holds(self.fd, db)

    def violation_report(self, db: DatabaseExtension) -> list[str]:
        return [
            f"{self.name}: tuples {t1!r} and {t2!r} agree on the determinant "
            "but not the dependent"
            for t1, t2 in violations(self.fd, db)
        ]


class CardinalityConstraint(IntegrityConstraint):
    """A relationship cardinality between two contributors.

    ``kind`` is ``"1:1"``, ``"1:n"`` or ``"n:m"`` read left-to-right:
    ``1:n`` means each left instance relates to at most one right instance
    — i.e. ``fd(left, right, relationship)`` — matching the EAR usage the
    paper's introduction cites.  ``n:m`` imposes nothing but is
    representable so translations from EAR schemas are total.
    """

    def __init__(self, relationship: EntityType, left: EntityType,
                 right: EntityType, kind: str):
        if kind not in ("1:1", "1:n", "n:m"):
            raise DependencyError(f"unknown cardinality kind: {kind!r}")
        self.relationship = relationship
        self.left = left
        self.right = right
        self.kind = kind
        self.context = relationship
        self.name = f"{left.name}:{right.name} {kind} in {relationship.name}"
        self._fds: list[EntityFD] = []
        if kind in ("1:1", "1:n"):
            self._fds.append(EntityFD(left, right, relationship))
        if kind == "1:1":
            self._fds.append(EntityFD(right, left, relationship))

    def entity_types(self) -> frozenset[EntityType]:
        return frozenset({self.relationship, self.left, self.right})

    def as_fds(self) -> list[EntityFD]:
        """The entity-level FDs the cardinality compiles to."""
        return list(self._fds)

    def holds(self, db: DatabaseExtension) -> bool:
        return all(holds(fd, db) for fd in self._fds)

    def violation_report(self, db: DatabaseExtension) -> list[str]:
        out = []
        for fd in self._fds:
            out += [
                f"{self.name}: {t1!r} / {t2!r} violate {fd!r}"
                for t1, t2 in violations(fd, db)
            ]
        return out


class ParticipationConstraint(IntegrityConstraint):
    """Total participation: every member instance occurs in the relationship.

    ``pi_member(R_relationship) superseteq R_member`` — e.g. "every
    department has at least one employee working for it".
    """

    def __init__(self, relationship: EntityType, member: EntityType):
        if not member.attributes <= relationship.attributes:
            raise DependencyError(
                f"{member.name!r} is not a generalisation of "
                f"{relationship.name!r}; participation needs a contributor"
            )
        self.relationship = relationship
        self.member = member
        self.context = relationship
        self.name = f"total({member.name} in {relationship.name})"

    def entity_types(self) -> frozenset[EntityType]:
        return frozenset({self.relationship, self.member})

    def holds(self, db: DatabaseExtension) -> bool:
        covered = project(db.R(self.relationship), self.member.attributes)
        return db.R(self.member).tuples <= covered.tuples

    def violation_report(self, db: DatabaseExtension) -> list[str]:
        covered = project(db.R(self.relationship), self.member.attributes)
        lonely = db.R(self.member).tuples - covered.tuples
        return [
            f"{self.name}: {t!r} does not participate"
            for t in sorted(lonely, key=repr)
        ]


class ConstraintSet:
    """A named collection of constraints with batch checking."""

    def __init__(self, schema: Schema, constraints: Iterable[IntegrityConstraint] = ()):
        self.schema = schema
        self.constraints: list[IntegrityConstraint] = [
            c.validate(schema) for c in constraints
        ]

    def add(self, constraint: IntegrityConstraint) -> None:
        self.constraints.append(constraint.validate(self.schema))

    def holds(self, db: DatabaseExtension) -> bool:
        return all(c.holds(db) for c in self.constraints)

    def report(self, db: DatabaseExtension) -> dict[str, list[str]]:
        """Violations grouped by constraint name (empty dict = all good)."""
        out: dict[str, list[str]] = {}
        for c in self.constraints:
            problems = c.violation_report(db)
            if problems:
                out[c.name] = problems
        return out

    def functional_dependencies(self) -> list[EntityFD]:
        """All entity-level FDs contributed by the constraints."""
        fds: list[EntityFD] = []
        for c in self.constraints:
            if isinstance(c, FunctionalConstraint):
                fds.append(c.fd)
            elif isinstance(c, CardinalityConstraint):
                fds.extend(c.as_fds())
        return fds
