"""The axiom-and-topology model — the paper's primary contribution.

Layered exactly as the paper's sections:

* section 2 — :mod:`attributes`, :mod:`entity_types`, :mod:`schema`,
  :mod:`axioms`, :mod:`views`, :mod:`design_process`;
* section 3 — :mod:`specialisation`, :mod:`generalisation`,
  :mod:`contributors`, :mod:`subbase`;
* section 4 — :mod:`extension`, :mod:`mappings`, :mod:`evolution`;
* section 5 — :mod:`fd`, :mod:`armstrong`, :mod:`semantics`,
  :mod:`nucleus`, :mod:`integrity`;
* the running example — :mod:`employee`.
"""

from repro.core.attributes import (
    Attribute,
    AtomicValueSet,
    AttributeUniverse,
    is_atomic_value,
)
from repro.core.entity_types import EntityType
from repro.core.schema import Schema
from repro.core.specialisation import SpecialisationStructure
from repro.core.generalisation import GeneralisationStructure
from repro.core.contributors import (
    ContributorAssignment,
    augmented_attributes,
    canonical_contributors,
    contributed_attributes,
    is_compound,
    primitive_types,
)
from repro.core.subbase import (
    SubbaseChoice,
    designer_bias_report,
    minimal_subbase_choices,
    redundant_types,
)
from repro.core.extension import DatabaseExtension
from repro.core.mappings import (
    all_chains,
    corollary_a,
    corollary_b,
    corollary_c,
    gluing_report,
    instance_presheaf,
    pi_tuple,
    rho,
    verify_corollary,
)
from repro.core.views import (
    EntityViewType,
    ViewInstance,
    ViewUpdate,
    decompose_presented_tuple,
    translation_count,
)
from repro.core.fd import (
    EntityFD,
    holds,
    lambda_mapping,
    propagates_to,
    triangle_commutes,
    violations,
)
from repro.core.armstrong import ALL_RULES, ArmstrongEngine, Derivation
from repro.core.semantics import (
    a2_union_soundness_example,
    agreement_report,
    attribute_theory,
    completeness_gap_example,
    counterexample_extension,
    is_intersection_closed,
    semantically_implies,
)
from repro.core.nucleus import (
    DependencyMappings,
    fd_pairs,
    in_DF,
    in_F,
    is_transitively_closed,
    nucleus,
    transitive_closure,
)
from repro.core.integrity import (
    CardinalityConstraint,
    ConstraintSet,
    FunctionalConstraint,
    IntegrityConstraint,
    ParticipationConstraint,
    SubsetConstraint,
)
from repro.core.axioms import (
    AxiomFinding,
    AxiomReport,
    check_all,
    check_attribute_axiom,
    check_containment,
    check_entity_type_axiom,
    check_extension_axiom,
    check_integrity_axiom,
    check_relationship_axiom,
    check_view_axiom,
)
from repro.core.design_process import (
    DesignAction,
    DesignDraft,
    DesignReport,
    DraftDependency,
    DraftEntity,
    run_design_process,
)
from repro.core.evolution import (
    AddAttribute,
    AddEntityType,
    EvolutionReport,
    RemoveAttribute,
    RemoveEntityType,
    RenameEntityType,
    SchemaChange,
    analyse,
    intension_map,
    migrate,
)
from repro.core.extension_space import (
    extension_space,
    fibers,
    instance_minimal_open,
    instance_points,
    intension_extension_report,
    type_projection,
)
from repro.core.domain_constraints import (
    DomainConstraint,
    EntityMVD,
    fd_domain_constraint,
    mvd_domain_constraint,
)
from repro.core import employee

__all__ = [
    "Attribute",
    "AtomicValueSet",
    "AttributeUniverse",
    "is_atomic_value",
    "EntityType",
    "Schema",
    "SpecialisationStructure",
    "GeneralisationStructure",
    "ContributorAssignment",
    "augmented_attributes",
    "canonical_contributors",
    "contributed_attributes",
    "is_compound",
    "primitive_types",
    "SubbaseChoice",
    "designer_bias_report",
    "minimal_subbase_choices",
    "redundant_types",
    "DatabaseExtension",
    "all_chains",
    "corollary_a",
    "corollary_b",
    "corollary_c",
    "gluing_report",
    "instance_presheaf",
    "pi_tuple",
    "rho",
    "verify_corollary",
    "EntityViewType",
    "ViewInstance",
    "ViewUpdate",
    "decompose_presented_tuple",
    "translation_count",
    "EntityFD",
    "holds",
    "lambda_mapping",
    "propagates_to",
    "triangle_commutes",
    "violations",
    "ALL_RULES",
    "ArmstrongEngine",
    "Derivation",
    "a2_union_soundness_example",
    "agreement_report",
    "attribute_theory",
    "completeness_gap_example",
    "counterexample_extension",
    "is_intersection_closed",
    "semantically_implies",
    "DependencyMappings",
    "fd_pairs",
    "in_DF",
    "in_F",
    "is_transitively_closed",
    "nucleus",
    "transitive_closure",
    "CardinalityConstraint",
    "ConstraintSet",
    "FunctionalConstraint",
    "IntegrityConstraint",
    "ParticipationConstraint",
    "SubsetConstraint",
    "AxiomFinding",
    "AxiomReport",
    "check_all",
    "check_attribute_axiom",
    "check_containment",
    "check_entity_type_axiom",
    "check_extension_axiom",
    "check_integrity_axiom",
    "check_relationship_axiom",
    "check_view_axiom",
    "DesignAction",
    "DesignDraft",
    "DesignReport",
    "DraftDependency",
    "DraftEntity",
    "run_design_process",
    "AddAttribute",
    "AddEntityType",
    "EvolutionReport",
    "RemoveAttribute",
    "RemoveEntityType",
    "RenameEntityType",
    "SchemaChange",
    "analyse",
    "intension_map",
    "migrate",
    "extension_space",
    "fibers",
    "instance_minimal_open",
    "instance_points",
    "intension_extension_report",
    "type_projection",
    "DomainConstraint",
    "EntityMVD",
    "fd_domain_constraint",
    "mvd_domain_constraint",
    "employee",
]
