"""Dependency mappings: nucleus, F_e, DF_e (section 5.3).

"Functional dependencies propagate just as extensions.  This similarity
can be used to define a mapping connecting entity types to functional
dependencies."

With a context ``e`` fixed, a dependency ``fd(x, y, e)`` is written as the
pair ``(x, y)`` in ``G_e x G_e``.  The paper defines:

* the **nucleus** ``N_e`` — the dependencies that always hold in ``G_e``
  (the trivial ones: ``y in G_x``),
* ``F_e`` — the sets of pairs containing the nucleus,
* ``DF_e`` — the members of ``F_e`` closed under the third Armstrong
  axiom (transitivity): the *domain* for functional dependencies over e,
* the mapping ``F_e : S_e -> DF_e`` with ``F_e(f) = fd_f intersect
  (G_e x G_e)``, and
* the maps ``pF(f, g, e)`` and ``piF_g^f`` mirroring ``rho`` and ``pi``,
  with the same composition corollary.

Pairs here are ``(determinant, dependent)`` tuples of entity types.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.core.entity_types import EntityType
from repro.core.extension import DatabaseExtension
from repro.core.fd import EntityFD, holds
from repro.core.generalisation import GeneralisationStructure
from repro.core.schema import Schema
from repro.core.specialisation import SpecialisationStructure
from repro.errors import DependencyError

Pair = tuple[EntityType, EntityType]


def nucleus(schema: Schema, e: EntityType) -> frozenset[Pair]:
    """``N_e``: the smallest dependency set that must hold in ``G_e``.

    These are the reflexivity pairs ``(x, y)`` with ``y in G_x`` — every
    entity determines its own generalisations (Armstrong axiom 1).
    """
    gen = GeneralisationStructure(schema)
    g_e = gen.G(e)
    return frozenset(
        (x, y)
        for x in g_e
        for y in g_e
        if y.attributes <= x.attributes
    )


def transitive_closure(pairs: Iterable[Pair]) -> frozenset[Pair]:
    """Close a pair set under the third Armstrong axiom."""
    closed: set[Pair] = set(pairs)
    changed = True
    while changed:
        changed = False
        by_first: dict[EntityType, list[EntityType]] = {}
        for a, b in closed:
            by_first.setdefault(a, []).append(b)
        for a, b in list(closed):
            for c in by_first.get(b, ()):
                if (a, c) not in closed:
                    closed.add((a, c))
                    changed = True
    return frozenset(closed)


def is_transitively_closed(pairs: Iterable[Pair]) -> bool:
    """Whether a pair set already satisfies Armstrong axiom 3."""
    pair_set = frozenset(pairs)
    return transitive_closure(pair_set) == pair_set


def in_F(schema: Schema, e: EntityType, pairs: Iterable[Pair]) -> bool:
    """Membership in ``F_e``: pairs over ``G_e x G_e`` containing ``N_e``."""
    gen = GeneralisationStructure(schema)
    g_e = gen.G(e)
    pair_set = frozenset(pairs)
    if not all(x in g_e and y in g_e for x, y in pair_set):
        return False
    return nucleus(schema, e) <= pair_set


def in_DF(schema: Schema, e: EntityType, pairs: Iterable[Pair]) -> bool:
    """Membership in ``DF_e``: in ``F_e`` and transitively closed."""
    return in_F(schema, e, pairs) and is_transitively_closed(pairs)


def fd_pairs(db: DatabaseExtension, context: EntityType) -> frozenset[Pair]:
    """``fd_context``: the dependencies semantically holding in a state.

    The pair set of all ``(x, y)`` over ``G_context`` with
    ``fd(x, y, context)`` true in ``db``.  Always a member of
    ``DF_context`` (trivial dependencies hold; transitivity is a semantic
    law) — tests assert this.
    """
    gen = GeneralisationStructure(db.schema)
    g_ctx = sorted(gen.G(context))
    return frozenset(
        (x, y)
        for x in g_ctx
        for y in g_ctx
        if holds(EntityFD(x, y, context), db)
    )


class DependencyMappings:
    """The section 5.3 apparatus for one reference context ``e``.

    Parameters
    ----------
    db:
        The database state supplying the semantic ``fd_f`` sets.
    e:
        The reference entity type; specialisations ``f in S_e`` are the
        mapping's domain.
    fd_source:
        Optional override: a callable ``f -> pair set`` replacing the
        semantic source (e.g. the syntactic closure of an
        :class:`~repro.core.armstrong.ArmstrongEngine`).
    """

    def __init__(self, db: DatabaseExtension, e: EntityType,
                 fd_source: Callable[[EntityType], frozenset[Pair]] | None = None):
        self.db = db
        self.schema = db.schema
        self.e = e
        self.gen = GeneralisationStructure(self.schema)
        self.spec = SpecialisationStructure(self.schema)
        self._source = fd_source or (lambda f: fd_pairs(db, f))

    def F(self, f: EntityType) -> frozenset[Pair]:
        """``F_e(f) = fd_f intersect (G_e x G_e)`` for ``f in S_e``."""
        if f not in self.spec.S(self.e):
            raise DependencyError(f"{f.name!r} is not a specialisation of {self.e.name!r}")
        g_e = self.gen.G(self.e)
        return frozenset((x, y) for x, y in self._source(f) if x in g_e and y in g_e)

    def pF(self, f: EntityType, g: EntityType) -> dict[Pair, Pair]:
        """``pF(f, g, e) : F_e(f) -> F_e(g)`` for ``S_g subseteq S_f``.

        The propagation theorem makes this an inclusion (dependencies
        valid in context f remain valid in the specialisation g); the
        concrete dict witnesses it, raising when propagation fails —
        which only happens on states violating containment.
        """
        if g not in self.spec.S(f):
            raise DependencyError(f"{g.name!r} is not a specialisation of {f.name!r}")
        source, target = self.F(f), self.F(g)
        mapping: dict[Pair, Pair] = {}
        for pair in source:
            if pair not in target:
                raise DependencyError(
                    f"propagation fails: {pair[0].name}->{pair[1].name} valid in "
                    f"{f.name!r} but not in its specialisation {g.name!r}"
                )
            mapping[pair] = pair
        return mapping

    def piF(self, other: "DependencyMappings", g: EntityType) -> dict[Pair, Pair]:
        """``piF_g^f : F_e(g) -> F_f(g)`` where ``other`` is built over ``f``.

        Requires ``S_g subseteq S_f subseteq S_e``; since ``G_e subseteq
        G_f`` the map is again an inclusion of pair sets.
        """
        f, e = other.e, self.e
        if f not in self.spec.S(e) or g not in self.spec.S(f):
            raise DependencyError("piF needs the chain S_g <= S_f <= S_e")
        source = self.F(g)
        target = other.F(g)
        mapping: dict[Pair, Pair] = {}
        for pair in source:
            if pair not in target:
                raise DependencyError(
                    f"piF undefined on {pair!r}: G_e pair missing from the G_f view"
                )
            mapping[pair] = pair
        return mapping

    def corollary_holds(self, f: EntityType, g: EntityType) -> bool:
        """The section 5.3 corollary on the chain ``S_g <= S_f <= S_e``.

        (a) piF composes along the chain, (b) pF composes, (c) the square
        of pF and piF commutes.  With all maps being inclusions this
        amounts to the pair sets nesting coherently — checked concretely.
        """
        over_f = DependencyMappings(self.db, f, self._source)
        # (a) piF is defined on all of F_e(g): the map exists along the chain.
        a_ok = set(self.piF(over_f, g)) == self.F(g)
        # (b) pF composes along the chain e -> f -> g.
        first = self.pF(f, g)
        prior = self.pF(self.e, f) if f in self.spec.S(self.e) else {}
        composed = {pair: first[prior[pair]] for pair in prior if prior[pair] in first}
        through = self.pF(self.e, g)
        b_ok = all(composed[p] == through[p] for p in composed)
        # (c) commuting square: restrict-then-propagate == propagate-then-restrict.
        c_ok = True
        for pair in self.F(f):
            via_pf = self.pF(f, g).get(pair)
            if pair in over_f.F(f):
                via_pif = over_f.pF(f, g).get(pair)
                if via_pf != via_pif:
                    c_ok = False
        return a_ok and b_ok and c_ok
