"""Database extensions (section 4).

The domain of an entity type is the product of its attribute domains,
``D_e = product of d_a over a in A_e``; the instance set ``R_e`` is a
member of ``P(D_e)`` — "in the old terminology: R_e is a relation over e
and t_e is a tuple in R_e".

Two conditions tie the extension to the intension:

* the **Containment Condition** — for ``s in S_e``,
  ``pi_e^s(R_s) subseteq R_e`` (a specialisation's instances, with the
  extra attributes forgotten, are instances of the general type), and
* the **Extension Axiom** — for compound ``e`` there is an *injective*
  ``i : E_e(e) -> join of E_c(c) over c in CO_e``: a combination of
  contributor entities forms at most one compound entity ("an employee can
  be a manager in at most one way").
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Mapping

from repro.core.contributors import ContributorAssignment
from repro.core.entity_types import EntityType
from repro.core.generalisation import GeneralisationStructure
from repro.core.schema import Schema
from repro.core.specialisation import SpecialisationStructure
from repro.errors import ContainmentError, ExtensionError
from repro.kernel import ExtensionKernel, derive_extension_kernel
from repro.relational import Relation, Tuple, join_all, project

# How far a successor state may sit from its delta-chain root before the
# chain is severed.  Severing bounds the memory a long update stream pins
# (every delta holds its parent alive) and, because a severed state
# interns afresh on demand, also compacts the append-only shared symbol
# tables that would otherwise accumulate every value ever seen.  The
# default can be overridden per state (``DatabaseExtension(...,
# chain_cap=...)``, inherited by every derived successor) or process-wide
# through the ``REPRO_CHAIN_CAP`` environment variable.
DEFAULT_CHAIN_CAP = 1024

# Backwards-compatible alias for the pre-configurable name.
_CHAIN_CAP = DEFAULT_CHAIN_CAP


def _resolve_chain_cap(chain_cap: int | None) -> int:
    """The severing cap to use: explicit argument, else ``REPRO_CHAIN_CAP``
    from the environment, else the module default.  Must be >= 1 (a cap
    of 1 makes every successor a fresh root)."""
    if chain_cap is None:
        env = os.environ.get("REPRO_CHAIN_CAP")
        chain_cap = int(env) if env else DEFAULT_CHAIN_CAP
    if chain_cap < 1:
        raise ValueError(f"chain_cap must be >= 1, got {chain_cap}")
    return chain_cap


class StateDelta:
    """How one :class:`DatabaseExtension` was derived from its parent.

    ``added``/``removed`` map relation names to the tuples an update
    genuinely added or removed (no-op rows are filtered at construction
    of the successor); ``replaced`` names relations swapped wholesale.
    ``changed`` is the union of the touched names — the dirty set the
    audit caches and the kernel derivation consult.
    """

    __slots__ = ("parent", "added", "removed", "replaced", "changed")

    def __init__(self, parent: "DatabaseExtension",
                 added: Mapping[str, list] | None = None,
                 removed: Mapping[str, list] | None = None,
                 replaced: Iterable[str] = ()):
        self.parent = parent
        self.added = {name: tuple(ts) for name, ts in (added or {}).items()}
        self.removed = {name: tuple(ts) for name, ts in (removed or {}).items()}
        self.replaced = frozenset(replaced)
        self.changed = (frozenset(self.added) | frozenset(self.removed)
                        | self.replaced)

    def __repr__(self) -> str:
        return f"StateDelta(changed={sorted(self.changed)})"


class DatabaseExtension:
    """An assignment of a relation ``R_e`` to every entity type.

    Parameters
    ----------
    schema:
        The intension the extension instantiates.
    relations:
        Mapping from entity-type name to :class:`Relation` (or iterable of
        tuple-like mappings).  Missing types get empty relations.
    contributors:
        Optional designer contributor assignment; defaults to canonical
        (direct generalisations).

    The constructor validates shape (relation schema == ``A_e``) and value
    membership in the attribute domains; the Containment Condition and
    Extension Axiom are *checked on demand* so that violating states can be
    represented, diagnosed, and repaired.
    """

    def __init__(self,
                 schema: Schema,
                 relations: Mapping[str, object] | None = None,
                 contributors: ContributorAssignment | None = None,
                 chain_cap: int | None = None):
        self.schema = schema
        self._chain_cap = _resolve_chain_cap(chain_cap)
        self.spec = SpecialisationStructure(schema)
        self.gen = GeneralisationStructure(schema)
        self.contributors = contributors or ContributorAssignment(schema)
        self._relations: dict[EntityType, Relation] = {}
        relations = dict(relations or {})
        for name, rel in relations.items():
            e = schema[name]
            if not isinstance(rel, Relation):
                try:
                    rel = Relation(e.attributes, rel)
                except Exception as exc:
                    raise ExtensionError(
                        f"bad relation for {e.name!r}: {exc}"
                    ) from exc
            if rel.schema != e.attributes:
                raise ExtensionError(
                    f"relation for {e.name!r} has schema {sorted(rel.schema)}, "
                    f"expected {sorted(e.attributes)}"
                )
            self._validate_domains(e, rel.tuples)
            self._relations[e] = rel
        for e in schema:
            self._relations.setdefault(e, Relation(e.attributes))
        self._kernel: ExtensionKernel | None = None
        self._init_delta_state(None, 0)

    def _init_delta_state(self, delta: StateDelta | None, depth: int) -> None:
        self._delta = delta
        self._depth = depth
        # Set together when the kernel is chain-derived: the ancestor
        # state whose kernel was patched, and the id-level row changes
        # relative to it (the recheck granularity).
        self._kernel_base = None
        self._kernel_delta = None
        # Chained audit caches (see the "dirty-context audits" block
        # below): filled by the first audit of this state, consulted by
        # successor states for their clean contexts.
        self._containment_cache: dict | None = None
        self._ea_cache: dict = {}
        self._constraint_cache: dict | None = None
        self._checkset_cache: dict = {}

    @classmethod
    def _derived(cls, parent: "DatabaseExtension",
                 relations: dict[EntityType, Relation],
                 added: Mapping[str, list] | None = None,
                 removed: Mapping[str, list] | None = None,
                 replaced: Iterable[str] = ()) -> "DatabaseExtension":
        """A successor state sharing everything the update left alone.

        Schema, structures, contributor assignment, and every untouched
        :class:`Relation` are shared by reference; domain validation is
        the *caller's* duty for exactly the tuples it introduced (all
        other tuples were validated when their state was built).  The
        successor records the update as a :class:`StateDelta` so its
        kernel and audits derive incrementally — unless the delta chain
        has grown past the state's chain cap, where it is severed to
        bound memory and re-compact the shared symbol tables.
        """
        db = object.__new__(cls)
        db.schema = parent.schema
        db.spec = parent.spec
        db.gen = parent.gen
        db.contributors = parent.contributors
        db._relations = relations
        db._kernel = None
        db._chain_cap = parent._chain_cap
        if parent._depth + 1 >= parent._chain_cap:
            db._init_delta_state(None, 0)
        else:
            db._init_delta_state(
                StateDelta(parent, added, removed, replaced),
                parent._depth + 1,
            )
        return db

    def _validate_domains(self, e: EntityType, tuples: Iterable[Tuple]) -> None:
        for t in tuples:
            for a in e.attributes:
                domain = self.schema.universe.domain(a)
                if t[a] not in domain:
                    raise ExtensionError(
                        f"value {t[a]!r} for attribute {a!r} of {e.name!r} is "
                        f"outside its atomic value set {domain.name!r}"
                    )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def R(self, e: EntityType | str) -> Relation:
        """The stored instance set ``R_e``."""
        return self._relations[self._resolve(e)]

    def _resolve(self, e: EntityType | str) -> EntityType:
        if isinstance(e, str):
            return self.schema[e]
        if e not in self.schema:
            raise ExtensionError(f"{e!r} is not an entity type of this schema")
        return e

    def total_instances(self) -> int:
        """Total tuple count across all relations."""
        return sum(len(r) for r in self._relations.values())

    @property
    def kernel(self) -> ExtensionKernel:
        """The shared-interned kernel view of this state, built lazily.

        All relations of the extension intern into one symbol table per
        attribute, so the cross-relation comparisons behind the
        Containment Condition and the Extension Axiom are pure id-space
        lookups.  Relations are fixed after construction (every update
        returns a new ``DatabaseExtension``), so the kernel never goes
        stale.

        A state produced by ``insert``/``delete``/``replace`` whose
        ancestor already interned *derives* its kernel through
        :mod:`repro.kernel.delta` instead of re-interning: the walk
        finds the nearest interned ancestor, flattens the intervening
        :class:`StateDelta` steps into one net row delta per relation
        (so ten single-row updates between two audits cost one patch,
        not ten), and derives in a single call, recording the ancestor
        and the id-level :class:`~repro.kernel.delta.KernelDelta` so
        audits can re-sweep only dirty lhs-groups.
        :meth:`kernel_naive` is the from-scratch oracle.
        """
        if self._kernel is not None:
            return self._kernel
        chain: list[DatabaseExtension] = []
        node = self
        while node._kernel is None and node._delta is not None:
            chain.append(node)
            node = node._delta.parent
        if node._kernel is None or not chain:
            self._kernel = self.kernel_naive()
            return self._kernel
        patches, replacements = self._flatten_chain(chain)
        self._kernel, self._kernel_delta = derive_extension_kernel(
            node._kernel, patches, replacements)
        self._kernel_base = node
        return self._kernel

    def _flatten_chain(self, chain: list["DatabaseExtension"]
                       ) -> tuple[dict, dict]:
        """One net ``(added, removed)`` item-row delta per relation for
        the whole chain (oldest step first), plus the relations to
        re-intern wholesale.

        A replace wipes the patches before it (and any patch after it
        is already reflected in this state's relation, which is what
        gets re-interned); add/remove pairs of the same row cancel.
        The object-level updates filter no-ops, so every recorded
        removal was present and every addition absent at its step —
        which makes the cancellation exact.
        """
        acc: dict[str, list] = {}  # name -> [replaced, added set, removed set]
        for state in reversed(chain):
            delta = state._delta
            for name in delta.replaced:
                acc[name] = [True, set(), set()]
            for name, ts in delta.added.items():
                entry = acc.setdefault(name, [False, set(), set()])
                for t in ts:
                    items = tuple(t)
                    if items in entry[2]:
                        entry[2].discard(items)
                    else:
                        entry[1].add(items)
            for name, ts in delta.removed.items():
                entry = acc.setdefault(name, [False, set(), set()])
                for t in ts:
                    items = tuple(t)
                    if items in entry[1]:
                        entry[1].discard(items)
                    else:
                        entry[2].add(items)
        patches: dict[str, tuple] = {}
        replacements: dict[str, Relation] = {}
        for name, (replaced, added, removed) in acc.items():
            if replaced:
                replacements[name] = self._relations[self.schema[name]]
            elif added or removed:
                patches[name] = (tuple(added), tuple(removed))
        return patches, replacements

    def kernel_naive(self) -> ExtensionKernel:
        """A from-scratch interning of this state — the full-rebuild
        oracle the delta-derived :attr:`kernel` is equivalence-tested
        against (and the only route for delta-less states)."""
        return ExtensionKernel(
            {e.name: rel for e, rel in self._relations.items()}
        )

    def sever_history(self) -> None:
        """Cut this state loose from every predecessor it references.

        Drops the :class:`StateDelta` chain, the kernel-derivation base,
        and this state's own chained audit caches; an already-derived
        kernel is kept (it is complete data, not a reference into the
        past).  The store's version-graph GC calls this on each new
        history-floor state so collected predecessors actually become
        unreachable.  Safe under concurrent readers: a reader that saw
        the old chain computes the same results, one that sees the
        severed state falls back to its full (non-incremental) route —
        the same behaviour as a chain-cap sever at derivation time.
        """
        if self._delta is None and self._kernel_base is None:
            return
        self._init_delta_state(None, 0)

    def drop_kernel_base(self) -> None:
        """Forget the ancestor this state's kernel was patched from
        (the kernel itself stays).  GC applies this to retained states
        whose kernel base was collected: the next audit loses its
        dirty-group shortcut once, instead of the base state living on
        unreachably."""
        self._kernel_base = None
        self._kernel_delta = None

    def _dirty_since(self, has_cache) -> tuple["DatabaseExtension | None", frozenset[str] | None]:
        """The nearest ancestor satisfying ``has_cache`` plus the union
        of relation names changed between it and this state.

        Returns ``(None, None)`` when the delta chain ends (or is
        severed) before such an ancestor appears — the caller then runs
        its full, non-incremental route.
        """
        dirty: set[str] = set()
        node = self
        while True:
            delta = node._delta
            if delta is None:
                return None, None
            dirty |= delta.changed
            node = delta.parent
            if has_cache(node):
                return node, frozenset(dirty)

    # ------------------------------------------------------------------
    # projections and extension mappings (section 4.1-4.2)
    # ------------------------------------------------------------------
    def pi(self, s: EntityType | str, e: EntityType | str) -> Relation:
        """``pi_e^s(R_s)`` — project the specialisation's instances onto D_e."""
        s, e = self._resolve(s), self._resolve(e)
        if not e.attributes <= s.attributes:
            raise ExtensionError(
                f"pi is only defined from a specialisation: {s.name!r} does not "
                f"carry all attributes of {e.name!r}"
            )
        return project(self.R(s), e.attributes)

    def E(self, e: EntityType | str, s: EntityType | str) -> Relation:
        """``E_e(s) = pi_e^s(R_s)`` for ``s in S_e`` — the extension mapping.

        "With this definition we take care of the situation that
        information about entity type instances might be 'stored' within
        its specialisations only."
        """
        s, e = self._resolve(s), self._resolve(e)
        if s not in self.spec.S(e):
            raise ExtensionError(f"{s.name!r} is not a specialisation of {e.name!r}")
        return self.pi(s, e)

    # ------------------------------------------------------------------
    # Containment Condition
    # ------------------------------------------------------------------
    def containment_violations(self) -> list[tuple[EntityType, EntityType, Relation]]:
        """All pairs ``(s, e)`` where ``pi_e^s(R_s)`` escapes ``R_e``.

        Returns the offending projected tuples as a relation per pair;
        empty list means the Containment Condition holds.  Each pair is a
        cached id-level projection and a set difference in the shared
        symbol space — no tuples are built unless a violation exists; the
        object-level sweep is retained as
        :func:`containment_violations_naive`.

        Re-audits of an update chain are *dirty-context* sweeps: the
        per-pair verdicts are cached on each audited state, and a
        successor re-judges only the pairs whose relations changed since
        the nearest audited ancestor, merging the cached verdicts for
        the rest.
        """
        cache = self._containment_cache
        if cache is None:
            anc, dirty = self._dirty_since(
                lambda n: n._containment_cache is not None)
            prior = anc._containment_cache if anc is not None else None
            kern = None
            cache = {}
            for e in self.schema:
                for s in self.spec.S(e):
                    if s == e:
                        continue
                    pair = (s.name, e.name)
                    if (prior is not None and s.name not in dirty
                            and e.name not in dirty):
                        cache[pair] = prior[pair]
                        continue
                    if kern is None:
                        kern = self.kernel
                    stray = kern.stray_projection(s.name, e.attributes, e.name)
                    if stray:
                        cache[pair] = Relation._trusted(
                            e.attributes,
                            (Tuple._trusted(items) for items in
                             kern.decode_named(e.attributes, stray)),
                        )
                    else:
                        cache[pair] = None
            self._containment_cache = cache
        out: list[tuple[EntityType, EntityType, Relation]] = []
        for e in self.schema:
            for s in self.spec.S(e):
                if s == e:
                    continue
                stray_rel = cache[(s.name, e.name)]
                if stray_rel is not None:
                    out.append((s, e, stray_rel))
        return out

    def containment_violations_naive(self) -> list[tuple[EntityType, EntityType, Relation]]:
        """Reference oracle for :meth:`containment_violations`."""
        out: list[tuple[EntityType, EntityType, Relation]] = []
        for e in self.schema:
            r_e = self.R(e)
            for s in self.spec.S(e):
                if s == e:
                    continue
                projected = self.pi(s, e)
                stray = projected.tuples - r_e.tuples
                if stray:
                    out.append((s, e, Relation(e.attributes, stray)))
        return out

    def satisfies_containment(self) -> bool:
        """Whether the Containment Condition holds everywhere."""
        return not self.containment_violations()

    def require_containment(self) -> None:
        """Raise :class:`ContainmentError` describing the first violation."""
        violations = self.containment_violations()
        if violations:
            s, e, stray = violations[0]
            raise ContainmentError(
                f"pi_{e.name}^{s.name}(R_{s.name}) has {len(stray)} tuple(s) "
                f"missing from R_{e.name}"
            )

    # ------------------------------------------------------------------
    # Extension Axiom
    # ------------------------------------------------------------------
    def contributor_join(self, e: EntityType | str) -> Relation:
        """``join of E_c(c) over c in CO_e`` — the bound on a compound type.

        The n-ary join runs entirely in the shared id space (one hash
        join per contributor, no per-pair symbol translations) and each
        output row is decoded once; the pairwise object-level fold is
        retained as :meth:`contributor_join_naive`.
        """
        e = self._resolve(e)
        cos = self.contributors.contributors(e)
        if not cos:
            raise ExtensionError(f"{e.name!r} has no contributors; the join is undefined")
        names, rows = self.kernel.join_named(c.name for c in sorted(cos))
        return Relation._trusted(
            frozenset(names),
            (Tuple._trusted(items) for items in
             self.kernel.decode_named(names, rows)),
        )

    def contributor_join_naive(self, e: EntityType | str) -> Relation:
        """Reference oracle for :meth:`contributor_join`."""
        e = self._resolve(e)
        cos = self.contributors.contributors(e)
        if not cos:
            raise ExtensionError(f"{e.name!r} has no contributors; the join is undefined")
        return join_all(self.R(c) for c in sorted(cos))

    def extension_axiom_violations(self, e: EntityType | str) -> dict[str, object]:
        """Diagnose the Extension Axiom for one compound type.

        The injective ``i`` sends a compound instance to its combination
        of contributor instances, i.e. to its projection onto the union of
        contributor attributes.  Two failure modes:

        * ``unsupported``: compound tuples whose contributor projection is
          not in the contributor join (information not represented by the
          contributors), and
        * ``collisions``: groups of distinct compound tuples mapping to the
          same combination (injectivity failure — "an employee can be a
          manager in at most one way" would be violated).

        Membership of a full combined-width row in the contributor join
        factorises through the contributors, so the kernel probes each
        compound row against every contributor's row set directly and the
        join is never materialised; the join-building sweep is retained
        as :meth:`extension_axiom_violations_naive`.

        Reports are cached per compound type on the state; a successor
        in an update chain re-judges a compound only when its relation
        or one of its contributors' changed since the nearest audited
        ancestor, reusing the cached report otherwise.
        """
        e = self._resolve(e)
        cos = self.contributors.contributors(e)
        if not cos:
            return {"unsupported": Relation(e.attributes), "collisions": []}
        cached = self._ea_cache.get(e.name)
        if cached is not None:
            return _copy_ea_report(cached)
        anc, dirty = self._dirty_since(lambda n: e.name in n._ea_cache)
        if anc is not None:
            touched = {e.name} | {c.name for c in cos}
            if not (touched & dirty):
                report = anc._ea_cache[e.name]
                self._ea_cache[e.name] = report
                return _copy_ea_report(report)
        kern = self.kernel
        raw_unsupported, raw_collisions = kern.compound_report(
            e.name, (c.name for c in sorted(cos))
        )
        inst = kern.instance(e.name)
        collisions = sorted(
            (sorted((Tuple._trusted(inst.decode_row(row)) for row in group),
                    key=repr)
             for group in raw_collisions),
            key=repr,
        )
        report = {
            "unsupported": Relation._trusted(
                e.attributes,
                (Tuple._trusted(inst.decode_row(row))
                 for row in raw_unsupported),
            ),
            "collisions": collisions,
        }
        self._ea_cache[e.name] = report
        return _copy_ea_report(report)

    def extension_axiom_violations_naive(self, e: EntityType | str) -> dict[str, object]:
        """Reference oracle for :meth:`extension_axiom_violations`
        (materialises the contributor join)."""
        e = self._resolve(e)
        cos = self.contributors.contributors(e)
        if not cos:
            return {"unsupported": Relation(e.attributes), "collisions": []}
        joined = self.contributor_join_naive(e)
        combined_attrs = frozenset().union(*(c.attributes for c in cos))
        unsupported: list[Tuple] = []
        groups: dict[Tuple, list[Tuple]] = {}
        for t in self.R(e).tuples:
            image = t.project(combined_attrs)
            if image not in joined.tuples:
                unsupported.append(t)
            groups.setdefault(image, []).append(t)
        # Group order is pinned (like the in-group order) so reports are
        # reproducible regardless of which route — or which predecessor
        # state's interning — produced them.
        collisions = sorted(
            (sorted(g, key=repr) for g in groups.values() if len(g) > 1),
            key=repr,
        )
        return {
            "unsupported": Relation(e.attributes, unsupported),
            "collisions": collisions,
        }

    def satisfies_extension_axiom(self, e: EntityType | str | None = None) -> bool:
        """Whether the Extension Axiom holds (for one type or all compounds)."""
        if e is not None:
            report = self.extension_axiom_violations(e)
            return not len(report["unsupported"]) and not report["collisions"]
        return all(
            self.satisfies_extension_axiom(c)
            for c in self.contributors.compound_types()
        )

    def is_consistent(self) -> bool:
        """Containment plus the Extension Axiom for every compound type."""
        return self.satisfies_containment() and self.satisfies_extension_axiom()

    # ------------------------------------------------------------------
    # updates with semantic propagation
    # ------------------------------------------------------------------
    def insert(self, e: EntityType | str, row: Mapping, propagate: bool = True) -> "DatabaseExtension":
        """Insert a tuple into ``R_e``; optionally repair containment upward.

        With ``propagate`` the projections of the new tuple are inserted
        into every proper generalisation, keeping the Containment
        Condition invariant — the semantic reading of "each manager should
        be an employee".

        The successor is *delta-derived*: only the genuinely added
        tuples are validated, untouched relations are shared, and the
        successor's kernel and audits patch the predecessor's instead of
        rebuilding.  An insert that changes nothing returns ``self``.
        """
        e = self._resolve(e)
        t = row if isinstance(row, Tuple) else Tuple(dict(row))
        if t.schema != e.attributes:
            raise ExtensionError(
                f"tuple schema {sorted(t.schema)} does not match {e.name!r}"
            )
        self._validate_domains(e, [t])
        new = dict(self._relations)
        added: dict[str, list[Tuple]] = {}
        if t not in new[e].tuples:
            # _trusted: the new tuple was validated above and the
            # existing tuples by their own state's construction, so the
            # public constructor's per-tuple re-validation is skipped.
            new[e] = Relation._trusted(e.attributes, new[e].tuples | {t})
            added[e.name] = [t]
        if propagate:
            for g in self.gen.proper_generalisations(e):
                p = t.project(g.attributes)
                if p not in new[g].tuples:
                    new[g] = Relation._trusted(g.attributes,
                                               new[g].tuples | {p})
                    added[g.name] = [p]
        if not added:
            return self
        return DatabaseExtension._derived(self, new, added=added)

    def delete(self, e: EntityType | str, row: Mapping, propagate: bool = True) -> "DatabaseExtension":
        """Delete a tuple from ``R_e``; optionally cascade to specialisations.

        With ``propagate`` every specialisation tuple projecting onto the
        deleted one is removed too, keeping containment — deleting a
        person deletes the employee and manager facts about them.

        Like :meth:`insert`, the successor is delta-derived; a delete
        that changes nothing returns ``self``.  The cascade victims are
        found through the kernel's cached partition indexes when this
        state already interned, instead of projecting every
        specialisation tuple.
        """
        e = self._resolve(e)
        t = row if isinstance(row, Tuple) else Tuple(dict(row))
        if t.schema != e.attributes:
            raise ExtensionError(
                f"tuple schema {sorted(t.schema)} does not match {e.name!r}"
            )
        new = dict(self._relations)
        removed: dict[str, list[Tuple]] = {}
        if t in new[e].tuples:
            new[e] = Relation._trusted(e.attributes, new[e].tuples - {t})
            removed[e.name] = [t]
        if propagate:
            for s in self.spec.proper_specialisations(e):
                doomed = self._projecting_onto(s, e, t)
                if doomed:
                    new[s] = Relation._trusted(
                        s.attributes, new[s].tuples - set(doomed))
                    removed[s.name] = doomed
        if not removed:
            return self
        return DatabaseExtension._derived(self, new, removed=removed)

    def _projecting_onto(self, s: EntityType, e: EntityType,
                         t: Tuple) -> list[Tuple]:
        """The tuples of ``R_s`` whose projection onto ``A_e`` is ``t``.

        Routed through the interned instance's partition index when the
        kernel exists (one key lookup); the per-tuple projection scan is
        the fallback for never-interned states.
        """
        kern = self._kernel
        if kern is None:
            return [u for u in self.R(s).tuples
                    if u.project(e.attributes) == t]
        inst = kern.instance(s.name)
        idxs = inst.indices_of(e.attributes)
        key = []
        # Tuple iterates sorted by attribute, matching the sorted column
        # positions of ``idxs``.
        for i, (_, value) in zip(idxs, t):
            sid = inst.tables[i].get(value)
            if sid is None:
                return []
            key.append(sid)
        rows = inst.rows
        return [Tuple._trusted(inst.decode_row(rows[r]))
                for r in inst.partition(idxs).get(tuple(key), ())]

    def remove_tuples(self, e: EntityType | str, rows: Iterable) -> "DatabaseExtension":
        """Bulk non-propagating delete of ``rows`` from ``R_e``.

        The repair loops (:func:`repro.workloads.enforce_extension_axiom`)
        drop batches of victims from one relation at a time; expressing
        the drop as a patch delta (rather than a wholesale ``replace``)
        lets the successor's kernel and audit caches derive from this
        state's.  Rows not present are ignored; removing nothing returns
        ``self``.
        """
        e = self._resolve(e)
        present = self._relations[e].tuples
        doomed: list[Tuple] = []
        for row in rows:
            t = row if isinstance(row, Tuple) else Tuple(dict(row))
            if t.schema != e.attributes:
                raise ExtensionError(
                    f"tuple schema {sorted(t.schema)} does not match {e.name!r}"
                )
            if t in present:
                doomed.append(t)
        if not doomed:
            return self
        new = dict(self._relations)
        new[e] = Relation._trusted(e.attributes, new[e].tuples - set(doomed))
        return DatabaseExtension._derived(self, new, removed={e.name: doomed})

    def replace(self, e: EntityType | str, relation: Relation | Iterable) -> "DatabaseExtension":
        """A copy with ``R_e`` wholesale replaced (no propagation).

        The successor is delta-derived with ``e`` marked as replaced:
        its kernel re-interns only this relation (against the shared
        symbol tables) and audits re-judge only the contexts that read
        it.
        """
        e = self._resolve(e)
        if not isinstance(relation, Relation):
            relation = Relation(e.attributes, relation)
        if relation.schema != e.attributes:
            raise ExtensionError(
                f"relation for {e.name!r} has schema {sorted(relation.schema)}, "
                f"expected {sorted(e.attributes)}"
            )
        self._validate_domains(e, relation.tuples)
        new = dict(self._relations)
        new[e] = relation
        return DatabaseExtension._derived(self, new, replaced=(e.name,))

    def apply_changes(self,
                      added: Mapping[str, Iterable] | None = None,
                      removed: Mapping[str, Iterable] | None = None,
                      replaced: Mapping[str, object] | None = None,
                      validate: bool = True) -> "DatabaseExtension":
        """Apply one batched delta in a single derivation step.

        The transactional store's commit hook: a whole transaction's net
        effect — tuples added, tuples removed, relations replaced
        wholesale — lands as *one* :class:`StateDelta`, so the successor
        pays one relation copy per touched relation and one kernel patch
        per commit instead of one per buffered operation.  No semantic
        propagation happens here; the caller (a :class:`Transaction`)
        has already expanded its operations into their net row effect.

        ``added``/``removed`` map relation names to row iterables;
        rows already present (for ``added``) or absent (for ``removed``)
        are filtered out, so the recorded delta is the genuine set
        difference.  A name may be patched or replaced, not both.  With
        ``validate=False`` the schema/domain checks on introduced tuples
        are skipped — only for rows the caller has itself validated
        (e.g. a store replaying its own write-ahead log).  Returns
        ``self`` when nothing changes.
        """
        replaced = dict(replaced or {})
        new = dict(self._relations)
        net_added: dict[str, list[Tuple]] = {}
        net_removed: dict[str, list[Tuple]] = {}
        for name, rel in replaced.items():
            e = self._resolve(name)
            if not isinstance(rel, Relation):
                rel = Relation(e.attributes, rel)
            if rel.schema != e.attributes:
                raise ExtensionError(
                    f"relation for {e.name!r} has schema {sorted(rel.schema)}, "
                    f"expected {sorted(e.attributes)}"
                )
            if validate:
                self._validate_domains(e, rel.tuples)
            new[e] = rel
        for name, rows in (removed or {}).items():
            if name in replaced:
                raise ExtensionError(
                    f"{name!r} is both patched and replaced in one delta")
            e = self._resolve(name)
            doomed = []
            present = new[e].tuples
            for row in rows:
                t = row if isinstance(row, Tuple) else Tuple(dict(row))
                if t.schema != e.attributes:
                    raise ExtensionError(
                        f"tuple schema {sorted(t.schema)} does not match "
                        f"{e.name!r}")
                if t in present:
                    doomed.append(t)
            if doomed:
                new[e] = Relation._trusted(e.attributes,
                                           new[e].tuples - set(doomed))
                net_removed[e.name] = doomed
        for name, rows in (added or {}).items():
            if name in replaced:
                raise ExtensionError(
                    f"{name!r} is both patched and replaced in one delta")
            e = self._resolve(name)
            fresh = []
            present = new[e].tuples
            seen: set[Tuple] = set()
            for row in rows:
                t = row if isinstance(row, Tuple) else Tuple(dict(row))
                if t.schema != e.attributes:
                    raise ExtensionError(
                        f"tuple schema {sorted(t.schema)} does not match "
                        f"{e.name!r}")
                if t in present or t in seen:
                    continue
                if validate:
                    self._validate_domains(e, [t])
                seen.add(t)
                fresh.append(t)
            if fresh:
                new[e] = Relation._trusted(e.attributes,
                                           new[e].tuples | set(fresh))
                net_added[e.name] = fresh
        if not net_added and not net_removed and not replaced:
            return self
        return DatabaseExtension._derived(
            self, new, added=net_added, removed=net_removed,
            replaced=tuple(replaced),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseExtension):
            return NotImplemented
        return self.schema == other.schema and self._relations == other._relations

    def __repr__(self) -> str:
        return (f"DatabaseExtension({len(self.schema)} types, "
                f"{self.total_instances()} instances)")


def _copy_ea_report(report: dict) -> dict:
    """A caller-owned copy of a cached Extension-Axiom report.

    Reports are cached on the state (and inherited along delta chains),
    and their collision groups are plain lists — handing out the cached
    object would let a caller's mutation corrupt every later audit.
    Relations and Tuples are immutable, so one level of list copying
    restores the pre-caching ownership contract.
    """
    return {
        "unsupported": report["unsupported"],
        "collisions": [list(group) for group in report["collisions"]],
    }
