"""Database extensions (section 4).

The domain of an entity type is the product of its attribute domains,
``D_e = product of d_a over a in A_e``; the instance set ``R_e`` is a
member of ``P(D_e)`` — "in the old terminology: R_e is a relation over e
and t_e is a tuple in R_e".

Two conditions tie the extension to the intension:

* the **Containment Condition** — for ``s in S_e``,
  ``pi_e^s(R_s) subseteq R_e`` (a specialisation's instances, with the
  extra attributes forgotten, are instances of the general type), and
* the **Extension Axiom** — for compound ``e`` there is an *injective*
  ``i : E_e(e) -> join of E_c(c) over c in CO_e``: a combination of
  contributor entities forms at most one compound entity ("an employee can
  be a manager in at most one way").
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.contributors import ContributorAssignment
from repro.core.entity_types import EntityType
from repro.core.generalisation import GeneralisationStructure
from repro.core.schema import Schema
from repro.core.specialisation import SpecialisationStructure
from repro.errors import ContainmentError, ExtensionError
from repro.kernel import ExtensionKernel
from repro.relational import Relation, Tuple, join_all, project


class DatabaseExtension:
    """An assignment of a relation ``R_e`` to every entity type.

    Parameters
    ----------
    schema:
        The intension the extension instantiates.
    relations:
        Mapping from entity-type name to :class:`Relation` (or iterable of
        tuple-like mappings).  Missing types get empty relations.
    contributors:
        Optional designer contributor assignment; defaults to canonical
        (direct generalisations).

    The constructor validates shape (relation schema == ``A_e``) and value
    membership in the attribute domains; the Containment Condition and
    Extension Axiom are *checked on demand* so that violating states can be
    represented, diagnosed, and repaired.
    """

    def __init__(self,
                 schema: Schema,
                 relations: Mapping[str, object] | None = None,
                 contributors: ContributorAssignment | None = None):
        self.schema = schema
        self.spec = SpecialisationStructure(schema)
        self.gen = GeneralisationStructure(schema)
        self.contributors = contributors or ContributorAssignment(schema)
        self._relations: dict[EntityType, Relation] = {}
        relations = dict(relations or {})
        for name, rel in relations.items():
            e = schema[name]
            if not isinstance(rel, Relation):
                try:
                    rel = Relation(e.attributes, rel)
                except Exception as exc:
                    raise ExtensionError(
                        f"bad relation for {e.name!r}: {exc}"
                    ) from exc
            if rel.schema != e.attributes:
                raise ExtensionError(
                    f"relation for {e.name!r} has schema {sorted(rel.schema)}, "
                    f"expected {sorted(e.attributes)}"
                )
            self._validate_domains(e, rel)
            self._relations[e] = rel
        for e in schema:
            self._relations.setdefault(e, Relation(e.attributes))
        self._kernel: ExtensionKernel | None = None

    def _validate_domains(self, e: EntityType, rel: Relation) -> None:
        for t in rel.tuples:
            for a in e.attributes:
                domain = self.schema.universe.domain(a)
                if t[a] not in domain:
                    raise ExtensionError(
                        f"value {t[a]!r} for attribute {a!r} of {e.name!r} is "
                        f"outside its atomic value set {domain.name!r}"
                    )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def R(self, e: EntityType | str) -> Relation:
        """The stored instance set ``R_e``."""
        return self._relations[self._resolve(e)]

    def _resolve(self, e: EntityType | str) -> EntityType:
        if isinstance(e, str):
            return self.schema[e]
        if e not in self.schema:
            raise ExtensionError(f"{e!r} is not an entity type of this schema")
        return e

    def total_instances(self) -> int:
        """Total tuple count across all relations."""
        return sum(len(r) for r in self._relations.values())

    @property
    def kernel(self) -> ExtensionKernel:
        """The shared-interned kernel view of this state, built lazily.

        All relations of the extension intern into one symbol table per
        attribute, so the cross-relation comparisons behind the
        Containment Condition and the Extension Axiom are pure id-space
        lookups.  Relations are fixed after construction (every update
        returns a new ``DatabaseExtension``), so the kernel never goes
        stale.
        """
        if self._kernel is None:
            self._kernel = ExtensionKernel(
                {e.name: rel for e, rel in self._relations.items()}
            )
        return self._kernel

    # ------------------------------------------------------------------
    # projections and extension mappings (section 4.1-4.2)
    # ------------------------------------------------------------------
    def pi(self, s: EntityType | str, e: EntityType | str) -> Relation:
        """``pi_e^s(R_s)`` — project the specialisation's instances onto D_e."""
        s, e = self._resolve(s), self._resolve(e)
        if not e.attributes <= s.attributes:
            raise ExtensionError(
                f"pi is only defined from a specialisation: {s.name!r} does not "
                f"carry all attributes of {e.name!r}"
            )
        return project(self.R(s), e.attributes)

    def E(self, e: EntityType | str, s: EntityType | str) -> Relation:
        """``E_e(s) = pi_e^s(R_s)`` for ``s in S_e`` — the extension mapping.

        "With this definition we take care of the situation that
        information about entity type instances might be 'stored' within
        its specialisations only."
        """
        s, e = self._resolve(s), self._resolve(e)
        if s not in self.spec.S(e):
            raise ExtensionError(f"{s.name!r} is not a specialisation of {e.name!r}")
        return self.pi(s, e)

    # ------------------------------------------------------------------
    # Containment Condition
    # ------------------------------------------------------------------
    def containment_violations(self) -> list[tuple[EntityType, EntityType, Relation]]:
        """All pairs ``(s, e)`` where ``pi_e^s(R_s)`` escapes ``R_e``.

        Returns the offending projected tuples as a relation per pair;
        empty list means the Containment Condition holds.  Each pair is a
        cached id-level projection and a set difference in the shared
        symbol space — no tuples are built unless a violation exists; the
        object-level sweep is retained as
        :func:`containment_violations_naive`.
        """
        kern = self.kernel
        out: list[tuple[EntityType, EntityType, Relation]] = []
        for e in self.schema:
            for s in self.spec.S(e):
                if s == e:
                    continue
                stray = kern.stray_projection(s.name, e.attributes, e.name)
                if stray:
                    out.append((s, e, Relation._trusted(
                        e.attributes,
                        (Tuple._trusted(items) for items in
                         kern.decode_named(e.attributes, stray)),
                    )))
        return out

    def containment_violations_naive(self) -> list[tuple[EntityType, EntityType, Relation]]:
        """Reference oracle for :meth:`containment_violations`."""
        out: list[tuple[EntityType, EntityType, Relation]] = []
        for e in self.schema:
            r_e = self.R(e)
            for s in self.spec.S(e):
                if s == e:
                    continue
                projected = self.pi(s, e)
                stray = projected.tuples - r_e.tuples
                if stray:
                    out.append((s, e, Relation(e.attributes, stray)))
        return out

    def satisfies_containment(self) -> bool:
        """Whether the Containment Condition holds everywhere."""
        return not self.containment_violations()

    def require_containment(self) -> None:
        """Raise :class:`ContainmentError` describing the first violation."""
        violations = self.containment_violations()
        if violations:
            s, e, stray = violations[0]
            raise ContainmentError(
                f"pi_{e.name}^{s.name}(R_{s.name}) has {len(stray)} tuple(s) "
                f"missing from R_{e.name}"
            )

    # ------------------------------------------------------------------
    # Extension Axiom
    # ------------------------------------------------------------------
    def contributor_join(self, e: EntityType | str) -> Relation:
        """``join of E_c(c) over c in CO_e`` — the bound on a compound type.

        The n-ary join runs entirely in the shared id space (one hash
        join per contributor, no per-pair symbol translations) and each
        output row is decoded once; the pairwise object-level fold is
        retained as :meth:`contributor_join_naive`.
        """
        e = self._resolve(e)
        cos = self.contributors.contributors(e)
        if not cos:
            raise ExtensionError(f"{e.name!r} has no contributors; the join is undefined")
        names, rows = self.kernel.join_named(c.name for c in sorted(cos))
        return Relation._trusted(
            frozenset(names),
            (Tuple._trusted(items) for items in
             self.kernel.decode_named(names, rows)),
        )

    def contributor_join_naive(self, e: EntityType | str) -> Relation:
        """Reference oracle for :meth:`contributor_join`."""
        e = self._resolve(e)
        cos = self.contributors.contributors(e)
        if not cos:
            raise ExtensionError(f"{e.name!r} has no contributors; the join is undefined")
        return join_all(self.R(c) for c in sorted(cos))

    def extension_axiom_violations(self, e: EntityType | str) -> dict[str, object]:
        """Diagnose the Extension Axiom for one compound type.

        The injective ``i`` sends a compound instance to its combination
        of contributor instances, i.e. to its projection onto the union of
        contributor attributes.  Two failure modes:

        * ``unsupported``: compound tuples whose contributor projection is
          not in the contributor join (information not represented by the
          contributors), and
        * ``collisions``: groups of distinct compound tuples mapping to the
          same combination (injectivity failure — "an employee can be a
          manager in at most one way" would be violated).

        Membership of a full combined-width row in the contributor join
        factorises through the contributors, so the kernel probes each
        compound row against every contributor's row set directly and the
        join is never materialised; the join-building sweep is retained
        as :meth:`extension_axiom_violations_naive`.
        """
        e = self._resolve(e)
        cos = self.contributors.contributors(e)
        if not cos:
            return {"unsupported": Relation(e.attributes), "collisions": []}
        kern = self.kernel
        raw_unsupported, raw_collisions = kern.compound_report(
            e.name, (c.name for c in sorted(cos))
        )
        inst = kern.instance(e.name)
        collisions = [
            sorted((Tuple._trusted(inst.decode_row(row)) for row in group),
                   key=repr)
            for group in raw_collisions
        ]
        return {
            "unsupported": Relation._trusted(
                e.attributes,
                (Tuple._trusted(inst.decode_row(row))
                 for row in raw_unsupported),
            ),
            "collisions": collisions,
        }

    def extension_axiom_violations_naive(self, e: EntityType | str) -> dict[str, object]:
        """Reference oracle for :meth:`extension_axiom_violations`
        (materialises the contributor join)."""
        e = self._resolve(e)
        cos = self.contributors.contributors(e)
        if not cos:
            return {"unsupported": Relation(e.attributes), "collisions": []}
        joined = self.contributor_join_naive(e)
        combined_attrs = frozenset().union(*(c.attributes for c in cos))
        unsupported: list[Tuple] = []
        groups: dict[Tuple, list[Tuple]] = {}
        for t in self.R(e).tuples:
            image = t.project(combined_attrs)
            if image not in joined.tuples:
                unsupported.append(t)
            groups.setdefault(image, []).append(t)
        collisions = [sorted(g, key=repr) for g in groups.values() if len(g) > 1]
        return {
            "unsupported": Relation(e.attributes, unsupported),
            "collisions": collisions,
        }

    def satisfies_extension_axiom(self, e: EntityType | str | None = None) -> bool:
        """Whether the Extension Axiom holds (for one type or all compounds)."""
        if e is not None:
            report = self.extension_axiom_violations(e)
            return not len(report["unsupported"]) and not report["collisions"]
        return all(
            self.satisfies_extension_axiom(c)
            for c in self.contributors.compound_types()
        )

    def is_consistent(self) -> bool:
        """Containment plus the Extension Axiom for every compound type."""
        return self.satisfies_containment() and self.satisfies_extension_axiom()

    # ------------------------------------------------------------------
    # updates with semantic propagation
    # ------------------------------------------------------------------
    def insert(self, e: EntityType | str, row: Mapping, propagate: bool = True) -> "DatabaseExtension":
        """Insert a tuple into ``R_e``; optionally repair containment upward.

        With ``propagate`` the projections of the new tuple are inserted
        into every proper generalisation, keeping the Containment
        Condition invariant — the semantic reading of "each manager should
        be an employee".
        """
        e = self._resolve(e)
        t = row if isinstance(row, Tuple) else Tuple(dict(row))
        if t.schema != e.attributes:
            raise ExtensionError(
                f"tuple schema {sorted(t.schema)} does not match {e.name!r}"
            )
        new = {et.name: rel for et, rel in self._relations.items()}
        new[e.name] = self.R(e).with_tuples([t])
        if propagate:
            for g in self.gen.proper_generalisations(e):
                new[g.name] = new[g.name].with_tuples([t.project(g.attributes)])
        return DatabaseExtension(self.schema, new, self.contributors)

    def delete(self, e: EntityType | str, row: Mapping, propagate: bool = True) -> "DatabaseExtension":
        """Delete a tuple from ``R_e``; optionally cascade to specialisations.

        With ``propagate`` every specialisation tuple projecting onto the
        deleted one is removed too, keeping containment — deleting a
        person deletes the employee and manager facts about them.
        """
        e = self._resolve(e)
        t = row if isinstance(row, Tuple) else Tuple(dict(row))
        new = {et.name: rel for et, rel in self._relations.items()}
        new[e.name] = self.R(e).without_tuples([t])
        if propagate:
            for s in self.spec.proper_specialisations(e):
                doomed = [u for u in self.R(s).tuples if u.project(e.attributes) == t]
                if doomed:
                    new[s.name] = new[s.name].without_tuples(doomed)
        return DatabaseExtension(self.schema, new, self.contributors)

    def replace(self, e: EntityType | str, relation: Relation | Iterable) -> "DatabaseExtension":
        """A copy with ``R_e`` wholesale replaced (no propagation)."""
        e = self._resolve(e)
        new = {et.name: rel for et, rel in self._relations.items()}
        new[e.name] = relation if isinstance(relation, Relation) else Relation(e.attributes, relation)
        return DatabaseExtension(self.schema, new, self.contributors)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseExtension):
            return NotImplemented
        return self.schema == other.schema and self._relations == other._relations

    def __repr__(self) -> str:
        return (f"DatabaseExtension({len(self.schema)} types, "
                f"{self.total_instances()} instances)")
