"""Entity types: names for sets of property names (section 2).

The paper takes the "opposite position" to classical ER modelling: an
entity is *nothing more than a name for a set of attributes*; the name
carries no semantic information of its own.  Abstracting the value part
away leaves the entity type — a named subset ``A_e`` of the property
universe ``A``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.attributes import PropertyName
from repro.errors import SchemaError


class EntityType:
    """A named subset of the property-name universe.

    Equality and hashing include both the name and the attribute set so
    that entity types can serve as points of the intension topology.  The
    Entity Type Axiom (no two types with the same attribute set) is a
    *schema-level* constraint, enforced by :class:`repro.core.schema.Schema`,
    not here — individual values must be constructible to report the
    violation.

    Examples
    --------
    >>> person = EntityType("person", {"name", "age"})
    >>> person.attributes == frozenset({"name", "age"})
    True
    """

    __slots__ = ("name", "attributes", "_hash")

    def __init__(self, name: str, attributes: Iterable[PropertyName]):
        if not isinstance(name, str) or not name:
            raise SchemaError("an entity type needs a nonempty string name")
        attrs = frozenset(attributes)
        if not attrs:
            raise SchemaError(
                f"entity type {name!r} has no attributes; the paper's entities "
                "are fully described by their attributes, so an empty set would "
                "move all information into the name"
            )
        for a in attrs:
            if not isinstance(a, str) or not a:
                raise SchemaError(f"entity type {name!r} has a bad property name: {a!r}")
        self.name = name
        self.attributes = attrs
        # Entity types are the points of every topology and the keys of
        # every extension mapping; hashing is hot enough to precompute.
        self._hash = hash((name, attrs))

    def is_specialisation_of(self, other: "EntityType") -> bool:
        """Whether ``self`` carries at least all attributes of ``other``.

        ``x.is_specialisation_of(y)`` is the pointwise form of ``x in S_y``.
        Every type specialises itself.
        """
        return other.attributes <= self.attributes

    def is_generalisation_of(self, other: "EntityType") -> bool:
        """Whether ``self``'s attributes are contained in ``other``'s.

        ``x.is_generalisation_of(y)`` is the pointwise form of ``x in G_y``.
        """
        return self.attributes <= other.attributes

    def shared_attributes(self, other: "EntityType") -> frozenset[PropertyName]:
        """The common attributes of two types (section 2's relationship cue)."""
        return self.attributes & other.attributes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EntityType):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "EntityType") -> bool:
        """Sort by name for deterministic renders; not the ISA order."""
        if not isinstance(other, EntityType):
            return NotImplemented
        return self.name < other.name

    def __repr__(self) -> str:
        return f"EntityType({self.name!r}, {sorted(self.attributes)})"

    def __str__(self) -> str:
        return self.name
