"""Contributors: the components of compound entity types (section 3.3).

"Every entity that has a generalisation can be seen as a compound entity",
and the Extension Axiom makes the designated *contributors* determine the
compound's information.  The paper's closing observation — "the
contributers are the direct generalisations of an entity type" — is the
canonical assignment implemented here; designers may override it (the text
allows them to designate contributors) as long as the stated Property
(every contributor is a proper generalisation) holds.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.entity_types import EntityType
from repro.core.generalisation import GeneralisationStructure
from repro.core.schema import Schema
from repro.errors import SchemaError


def canonical_contributors(schema: Schema, e: EntityType) -> frozenset[EntityType]:
    """``CO_e``: the direct (maximal proper) generalisations of ``e``.

    ``f`` contributes to ``e`` iff ``f in G_e``, ``f != e``, and no other
    ``g in G_e`` lies strictly between: ``f in G_g`` with ``g != e, f``.
    This implements the paper's definition, whose conclusion is that the
    contributors are the direct generalisations.
    """
    gen = GeneralisationStructure(schema)
    g_e = gen.G(e)
    out: set[EntityType] = set()
    for f in g_e:
        if f == e:
            continue
        between = any(
            g not in (e, f) and f.attributes < g.attributes
            for g in g_e
        )
        if not between:
            out.add(f)
    return frozenset(out)


def is_compound(schema: Schema, e: EntityType) -> bool:
    """Whether ``e`` has at least one contributor (a proper generalisation)."""
    return bool(canonical_contributors(schema, e))


def primitive_types(schema: Schema) -> frozenset[EntityType]:
    """Entity types with no proper generalisation in ``E``.

    These are the atoms of information: the Extension Axiom never
    constrains them, and every compound's extension is ultimately bounded
    by theirs.
    """
    return frozenset(e for e in schema if not canonical_contributors(schema, e))


def contributed_attributes(schema: Schema, e: EntityType) -> frozenset[str]:
    """The attributes of ``e`` covered by its contributors."""
    covered: set[str] = set()
    for c in canonical_contributors(schema, e):
        covered |= c.attributes
    return frozenset(covered)


def augmented_attributes(schema: Schema, e: EntityType) -> frozenset[str]:
    """The relationship's own descriptive attributes: ``A_e`` minus covered.

    Section 2: "a relationship [is] a union of existing entities,
    augmented with attributes that represent the properties of the
    relationship"; these augmented attributes "should play a fairly
    unimportant role" — the Extension Axiom's injectivity makes that
    precise.
    """
    return e.attributes - contributed_attributes(schema, e)


class ContributorAssignment:
    """A designer-chosen contributor map, validated against the Property.

    Parameters
    ----------
    schema:
        The schema the assignment is about.
    assignment:
        Mapping from entity-type name to an iterable of contributor names.
        Types not mentioned get their canonical contributors.

    The paper's Property — "If f in CO_e, then f in G_e and f != e" — is
    enforced; assigning a non-generalisation raises
    :class:`~repro.errors.SchemaError`.
    """

    def __init__(self, schema: Schema,
                 assignment: Mapping[str, Iterable[str]] | None = None):
        self.schema = schema
        gen = GeneralisationStructure(schema)
        self._map: dict[EntityType, frozenset[EntityType]] = {}
        assignment = dict(assignment or {})
        for name, contributor_names in assignment.items():
            e = schema[name]
            contributors = frozenset(schema[c] for c in contributor_names)
            for f in contributors:
                if f == e:
                    raise SchemaError(f"{e.name!r} cannot contribute to itself")
                if f not in gen.G(e):
                    raise SchemaError(
                        f"{f.name!r} is not a generalisation of {e.name!r}; "
                        "the contributor Property requires f in G_e"
                    )
            self._map[e] = contributors
        for e in schema:
            self._map.setdefault(e, canonical_contributors(schema, e))

    def contributors(self, e: EntityType) -> frozenset[EntityType]:
        """``CO_e`` under this assignment."""
        if e not in self._map:
            raise SchemaError(f"{e!r} is not an entity type of this schema")
        return self._map[e]

    def matches_canonical(self) -> bool:
        """Whether the assignment coincides with direct generalisations.

        The paper: "by choosing the attributes carefully, the designer can
        achieve that the [direct-generalisation] definition captures
        exactly the contributers" — this predicate tells the designer
        whether they have.
        """
        return all(
            self._map[e] == canonical_contributors(self.schema, e)
            for e in self.schema
        )

    def compound_types(self) -> frozenset[EntityType]:
        """Types with a nonempty contributor set under this assignment."""
        return frozenset(e for e, cos in self._map.items() if cos)
