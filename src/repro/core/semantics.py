"""Model-theoretic semantics for entity-level dependencies.

The paper's soundness-and-completeness theorem (section 5.2) compares the
Armstrong system against *semantic implication*: ``fd`` follows from a
premise set when every allowable database state (an extension satisfying
the Containment Condition, the Extension Axiom, and the premises) that is
an extension of the schema satisfies ``fd``.

This module decides semantic implication exactly, by translating to the
attribute level:

* a premise ``fd(p, q, h')`` whose context generalises ``h`` contributes
  the attribute dependency ``A_p -> A_q`` inside ``h`` (this is the
  propagation theorem viewed extensionally), and
* the Extension Axiom contributes, for every compound ``c in G_h``, the
  dependency ``union of A_co over co in CO_c -> A_c`` — the injectivity of
  ``i`` means contributor parts determine the whole compound instance.

``fd(e, f, h)`` is semantically implied iff ``A_f`` lies in the attribute
closure of ``A_e`` under that theory; otherwise
:func:`counterexample_extension` produces the classical two-tuple witness,
lifted to a full consistent database state.

The reproduction finding documented in EXPERIMENTS.md lives here too:
completeness of the syntactic system holds on schemas whose contexts are
*union-closed*; :func:`completeness_gap_example` exhibits the minimal
schema where a semantically valid dependency is underivable.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.armstrong import ArmstrongEngine
from repro.core.contributors import ContributorAssignment
from repro.core.entity_types import EntityType
from repro.core.extension import DatabaseExtension
from repro.core.fd import EntityFD
from repro.core.generalisation import GeneralisationStructure
from repro.core.schema import Schema
from repro.errors import DependencyError
from repro.relational import FD, closure as attr_closure


def attribute_theory(schema: Schema,
                     premises: Iterable[EntityFD],
                     context: EntityType,
                     contributors: ContributorAssignment | None = None,
                     with_extension_axiom: bool = True) -> list[FD]:
    """The attribute-level dependency theory active inside ``context``.

    Premises from contexts generalising ``context`` apply (propagation);
    the Extension Axiom adds one dependency per compound type in
    ``G_context``.  Setting ``with_extension_axiom=False`` yields the
    semantics of bare containment models — used to demonstrate that the
    A2-union rule is unsound without the axiom.
    """
    gen = GeneralisationStructure(schema)
    contributors = contributors or ContributorAssignment(schema)
    g_ctx = gen.G(context)
    theory: list[FD] = []
    for premise in premises:
        premise.validate(schema)
        if premise.context in g_ctx:
            theory.append(FD(premise.determinant.attributes, premise.dependent.attributes))
    if with_extension_axiom:
        for c in sorted(g_ctx):
            cos = contributors.contributors(c)
            if cos:
                combined = frozenset().union(*(co.attributes for co in cos))
                theory.append(FD(combined, c.attributes))
    return theory


def semantically_implies(schema: Schema,
                         premises: Iterable[EntityFD],
                         candidate: EntityFD,
                         contributors: ContributorAssignment | None = None,
                         with_extension_axiom: bool = True) -> bool:
    """Whether every allowable state satisfying the premises satisfies ``candidate``."""
    candidate.validate(schema)
    theory = attribute_theory(schema, premises, candidate.context,
                              contributors, with_extension_axiom)
    closed = attr_closure(candidate.determinant.attributes, theory)
    return candidate.dependent.attributes <= closed


def counterexample_extension(schema: Schema,
                             premises: Iterable[EntityFD],
                             candidate: EntityFD,
                             contributors: ContributorAssignment | None = None
                             ) -> DatabaseExtension | None:
    """A consistent extension satisfying the premises but not ``candidate``.

    ``None`` when the candidate is semantically implied.  The witness is
    the classical two-tuple construction: both tuples of ``R_h`` agree
    exactly on the attribute closure of the determinant; every
    generalisation of ``h`` holds the projections (so the Containment
    Condition is immaculate); all other relations are empty.  Requires
    every attribute domain to offer at least two values.
    """
    candidate.validate(schema)
    premises = list(premises)
    contributors = contributors or ContributorAssignment(schema)
    theory = attribute_theory(schema, premises, candidate.context, contributors)
    agree = attr_closure(candidate.determinant.attributes, theory)
    if candidate.dependent.attributes <= agree:
        return None
    h = candidate.context
    values: dict[str, tuple] = {}
    for a in h.attributes:
        domain = sorted(schema.universe.domain(a).values, key=repr)
        if len(domain) < 2:
            raise DependencyError(
                f"attribute {a!r} has a single-value domain; no two-tuple "
                "witness can differ on it"
            )
        values[a] = (domain[0], domain[1])
    t1 = {a: values[a][0] for a in h.attributes}
    t2 = {a: values[a][0] if a in agree else values[a][1] for a in h.attributes}
    gen = GeneralisationStructure(schema)
    relations: dict[str, list[dict]] = {}
    for g in gen.G(h):
        relations[g.name] = [
            {a: row[a] for a in g.attributes} for row in (t1, t2)
        ]
    return DatabaseExtension(schema, relations, contributors)


def agreement_report(schema: Schema,
                     premises: Iterable[EntityFD],
                     contributors: ContributorAssignment | None = None) -> dict[str, object]:
    """Compare syntactic derivability with semantic implication everywhere.

    Iterates the full statement space and classifies each dependency as
    derivable/valid.  Soundness predicts the derivable-but-invalid bucket
    is empty; the valid-but-underivable bucket measures the completeness
    gap (empty on union-closed schemas).
    """
    premises = list(premises)
    engine = ArmstrongEngine(schema, premises, contributors)
    sound_violations: list[EntityFD] = []
    completeness_gap: list[EntityFD] = []
    agree = 0
    total = 0
    for statement in engine.statement_space():
        total += 1
        derivable = engine.derivable(statement)
        valid = semantically_implies(schema, premises, statement, contributors)
        if derivable and not valid:
            sound_violations.append(statement)
        elif valid and not derivable:
            completeness_gap.append(statement)
        else:
            agree += 1
    return {
        "total": total,
        "agreements": agree,
        "sound_violations": sound_violations,
        "completeness_gap": completeness_gap,
        "agreement_rate": agree / total if total else 1.0,
    }


def is_intersection_closed(schema: Schema) -> bool:
    """Whether the entity-type family is closed under nonempty intersection.

    For all ``x, y in E`` with ``A_x intersect A_y`` nonempty, some entity
    type carries exactly that attribute set.  On such schemas the
    Armstrong system is *complete*: whenever ``A_f`` is covered by
    determined types, A2-decomposition reaches the pieces
    ``A_f intersect A_g`` (entity types by closure, hence members of the
    relevant ``G`` sets) and A2-union reassembles ``f`` from its
    contributors — the induction the reproduction finding of EXPERIMENTS.md
    (experiment E10) spells out.  The condition is sufficient, not
    necessary: the employee schema is not intersection-closed yet shows no
    gap for its natural premises.

    Notably, the paper's section-2 design guidance pushes designers toward
    exactly this closure: "the occurrence of common attributes may
    indicate that the contributing entities are relationships themselves"
    (footnote: "or a set of attributes not yet recognised as an entity
    type").
    """
    attr_sets = {e.attributes for e in schema}
    sets = sorted(attr_sets, key=lambda s: (len(s), sorted(s)))
    for i, x in enumerate(sets):
        for y in sets[i + 1:]:
            shared = x & y
            if shared and shared not in attr_sets:
                return False
    return True


def completeness_gap_example() -> tuple[Schema, list[EntityFD], EntityFD]:
    """The minimal straddle schema where completeness fails.

    Types ``a = {p}``, ``x = {q, s}``, ``y = {r, t}``, ``co = {q, r}`` and
    context ``h = {p, q, r, s, t}``.  From ``fd(a, x, h)`` and
    ``fd(a, y, h)`` the dependency ``fd(a, co, h)`` is semantically valid
    (two h-tuples agreeing on ``p`` agree on ``q`` and ``r``, hence on
    ``co``'s projection) yet underivable: ``co`` has no contributors and
    no derivation path reaches it.  Closing the schema under intersection
    (adding types for ``{q}`` and ``{r}``) restores completeness — see
    :func:`is_intersection_closed`.
    """
    schema = Schema.from_attribute_sets({
        "a": {"p"},
        "x": {"q", "s"},
        "y": {"r", "t"},
        "co": {"q", "r"},
        "h": {"p", "q", "r", "s", "t"},
    })
    premises = [
        EntityFD(schema["a"], schema["x"], schema["h"]),
        EntityFD(schema["a"], schema["y"], schema["h"]),
    ]
    candidate = EntityFD(schema["a"], schema["co"], schema["h"])
    return schema, premises, candidate


def a2_union_soundness_example() -> tuple[Schema, list[EntityFD], EntityFD]:
    """The schema showing A2-union *needs* the Extension Axiom.

    ``d = {q, r, s}`` has contributors ``b = {q}`` and ``c = {r}``; from
    ``fd(a, b, h)`` and ``fd(a, c, h)`` the union rule derives
    ``fd(a, d, h)``.  Without the Extension Axiom a containment-only model
    can agree on ``q, r`` yet differ on ``s`` — the derived dependency
    fails.  With the axiom, contributor parts determine the d-instance and
    the derivation is sound.
    """
    schema = Schema.from_attribute_sets({
        "a": {"p"},
        "b": {"q"},
        "c": {"r"},
        "d": {"q", "r", "s"},
        "h": {"p", "q", "r", "s"},
    })
    premises = [
        EntityFD(schema["a"], schema["b"], schema["h"]),
        EntityFD(schema["a"], schema["c"], schema["h"]),
    ]
    derived = EntityFD(schema["a"], schema["d"], schema["h"])
    return schema, premises, derived
