"""Functional dependencies over entity types (section 5.1).

The Integrity Axiom makes dependencies range over *entity types*, not
attributes, and gives them a *context*: ``fd(e, f, h)`` says that within
the instances of ``h`` (a common specialisation of both), the e-part of a
tuple determines its f-part:

    for all t1, t2 in R_h:  pi_e(t1) = pi_e(t2)  implies  pi_f(t1) = pi_f(t2).

"Note that the context is necessary to disambiguate dependencies as well,
since entity types may be related in several ways."

The section's theorem is constructive here: :func:`lambda_mapping` builds
the map ``lambda : E_e(h) -> E_f(h)`` making the projection triangle
commute exactly when the dependency holds, and returns the witnessing
conflict otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.entity_types import EntityType
from repro.core.extension import DatabaseExtension
from repro.core.generalisation import GeneralisationStructure
from repro.core.schema import Schema
from repro.errors import DependencyError
from repro.relational import Tuple


@dataclass(frozen=True)
class EntityFD:
    """``fd(determinant, dependent, context)`` — an entity-level dependency.

    Validity of the typing (both sides generalise the context) is checked
    against a schema via :meth:`validate`, kept separate so that FD values
    can be constructed in bulk by generators before filtering.
    """

    determinant: EntityType
    dependent: EntityType
    context: EntityType

    def validate(self, schema: Schema) -> "EntityFD":
        """Raise :class:`DependencyError` unless the typing is legal."""
        gen = GeneralisationStructure(schema)
        for part, role in ((self.determinant, "determinant"),
                           (self.dependent, "dependent")):
            if part not in schema:
                raise DependencyError(f"{role} {part!r} is not in the schema")
            if part not in gen.G(self.context):
                raise DependencyError(
                    f"{role} {part.name!r} is not a generalisation of the "
                    f"context {self.context.name!r}; the Integrity Axiom "
                    "requires a common specialisation as context"
                )
        if self.context not in schema:
            raise DependencyError(f"context {self.context!r} is not in the schema")
        return self

    def is_trivial(self) -> bool:
        """Whether the dependent's attributes sit inside the determinant's.

        These are the nucleus dependencies of section 5.3 — they hold in
        every extension.
        """
        return self.dependent.attributes <= self.determinant.attributes

    def __repr__(self) -> str:
        return (f"fd({self.determinant.name}, {self.dependent.name}, "
                f"{self.context.name})")


def holds(fd: EntityFD, db: DatabaseExtension) -> bool:
    """Whether the extension satisfies ``fd`` (the section 5.1 definition).

    Runs on the context relation's instance inside the extension's
    shared kernel — derivability sweeps probe many dependencies against
    one state, so the interning and its determinant partitions are
    shared across every check (and every relation) of the state.
    :func:`holds_naive` retains the witness-dict sweep.
    """
    fd.validate(db.schema)
    return db.kernel.instance(fd.context.name).fd_holds(
        fd.determinant.attributes, fd.dependent.attributes
    )


def holds_naive(fd: EntityFD, db: DatabaseExtension) -> bool:
    """Reference oracle for :func:`holds`."""
    fd.validate(db.schema)
    witness: dict[Tuple, Tuple] = {}
    for t in db.R(fd.context).tuples:
        key = t.project(fd.determinant.attributes)
        value = t.project(fd.dependent.attributes)
        if key in witness and witness[key] != value:
            return False
        witness[key] = value
    return True


def violations(fd: EntityFD, db: DatabaseExtension) -> list[tuple[Tuple, Tuple]]:
    """All witnessing pairs of context tuples violating ``fd``.

    One walk over the cached determinant partition, emitting only the
    cross-bucket pairs (output-sensitive) instead of the all-pairs scan
    retained as :func:`violations_naive`; ordering matches the oracle.
    """
    from repro.kernel import CheckSet
    from repro.relational.fd import decode_witness_pairs

    fd.validate(db.schema)
    inst = db.kernel.instance(fd.context.name)
    verdict = CheckSet(inst).add_fd(
        0, fd.determinant.attributes, fd.dependent.attributes
    ).run(witnesses=True)[0]
    return decode_witness_pairs(inst, verdict.witness)


def violations_naive(fd: EntityFD, db: DatabaseExtension) -> list[tuple[Tuple, Tuple]]:
    """Reference oracle for :func:`violations` (all-pairs scan)."""
    fd.validate(db.schema)
    tuples = sorted(db.R(fd.context).tuples, key=repr)
    out = []
    for i, t1 in enumerate(tuples):
        for t2 in tuples[i + 1:]:
            if t1.project(fd.determinant.attributes) == t2.project(fd.determinant.attributes) \
                    and t1.project(fd.dependent.attributes) != t2.project(fd.dependent.attributes):
                out.append((t1, t2))
    return out


def lambda_mapping(fd: EntityFD, db: DatabaseExtension) -> dict[Tuple, Tuple] | None:
    """The commuting-triangle witness of the section 5.1 theorem.

    Builds ``lambda : E_e(h) -> E_f(h)`` with
    ``lambda(pi_e(t)) = pi_f(t)`` for every ``t in R_h``.  The map is
    well-defined iff the dependency holds; ``None`` is returned when it
    does not (the construction meets a conflict).
    """
    fd.validate(db.schema)
    mapping: dict[Tuple, Tuple] = {}
    for t in db.R(fd.context).tuples:
        key = t.project(fd.determinant.attributes)
        value = t.project(fd.dependent.attributes)
        if key in mapping and mapping[key] != value:
            return None
        mapping[key] = value
    return mapping


def triangle_commutes(fd: EntityFD, db: DatabaseExtension,
                      mapping: dict[Tuple, Tuple]) -> bool:
    """Verify ``lambda o pi_e = pi_f`` on every context tuple."""
    for t in db.R(fd.context).tuples:
        image = mapping.get(t.project(fd.determinant.attributes))
        if image != t.project(fd.dependent.attributes):
            return False
    return True


def propagates_to(fd: EntityFD, db: DatabaseExtension) -> list[tuple[EntityFD, bool]]:
    """The propagation theorem, instantiated.

    "Let e, f, g in E such that e, f in G_g and fd(e, f, g); furthermore
    let h in S_g; then fd(e, f, h) also holds."  Returns each propagated
    dependency together with its verdict in ``db`` — all True whenever the
    root dependency holds and the Containment Condition is satisfied.
    """
    out = []
    for h in sorted(db.spec.S(fd.context)):
        propagated = EntityFD(fd.determinant, fd.dependent, h)
        out.append((propagated, holds(propagated, db)))
    return out
