"""Property names, atomic value sets, and attributes (section 2).

The paper starts from "a symbolic name space, the non-literals, and value
space, the literals": property names on one side, a family of atomic value
sets on the other.  An *attribute* associates a property name with a value
drawn from a single atomic value set — the **Attribute Axiom** demands that
each attribute has a single non-decomposable semantic interpretation.

Structurally we enforce what is machine-checkable: every property name is
bound to exactly one atomic value set, and the values themselves are
atomic (not containers), so no attribute smuggles in decomposable
structure.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.errors import AxiomViolationError, SchemaError

PropertyName = str
Value = Hashable

_CONTAINER_TYPES = (tuple, list, set, frozenset, dict)


def is_atomic_value(value: object) -> bool:
    """Whether ``value`` is acceptable as an atomic (non-decomposable) value.

    Containers are rejected: an attribute whose values are tuples or sets
    "plays multiple semantic roles or represents an aggregation of smaller
    entities" (section 2) and must be split into several attributes.
    """
    return isinstance(value, Hashable) and not isinstance(value, _CONTAINER_TYPES)


class AtomicValueSet:
    """A named, finite set of atomic values — one semantic concept.

    Parameters
    ----------
    name:
        The concept name, e.g. ``"person-names"``; distinct concepts must
        use distinct names.
    values:
        The finite carrier.  Section 4.1: "an attribute value is just a
        member of a finite set".
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str, values: Iterable[Value]):
        if not isinstance(name, str) or not name:
            raise SchemaError("an atomic value set needs a nonempty string name")
        # Atomicity is judged *before* hashing into the frozenset, so an
        # unhashable composite (a list from a JSON document, say) is
        # reported as the Attribute Axiom violation it is rather than as
        # a bare TypeError.
        values = tuple(values)
        for v in values:
            if not is_atomic_value(v):
                raise AxiomViolationError(
                    "Attribute Axiom",
                    f"value {v!r} in set {name!r} is decomposable",
                    offenders=(name, v),
                )
        values = frozenset(values)
        if not values:
            raise SchemaError(f"atomic value set {name!r} is empty")
        self.name = name
        self.values = values

    def __contains__(self, value: object) -> bool:
        return value in self.values

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AtomicValueSet):
            return NotImplemented
        return self.name == other.name and self.values == other.values

    def __hash__(self) -> int:
        return hash((self.name, self.values))

    def __repr__(self) -> str:
        return f"AtomicValueSet({self.name!r}, {len(self.values)} values)"


class Attribute:
    """An association of a property name and an atomic value.

    "It represents a single non-decomposable piece of information extracted
    from the Universe-Of-Discourse.  The property name gives the value in
    the attribute a specific semantic role."
    """

    __slots__ = ("name", "value")

    def __init__(self, name: PropertyName, value: Value):
        if not isinstance(name, str) or not name:
            raise SchemaError("an attribute needs a nonempty string property name")
        if not is_atomic_value(value):
            raise AxiomViolationError(
                "Attribute Axiom",
                f"attribute {name!r} carries a decomposable value {value!r}",
                offenders=(name, value),
            )
        self.name = name
        self.value = value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return self.name == other.name and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.name, self.value))

    def __repr__(self) -> str:
        return f"Attribute({self.name!r}, {self.value!r})"


class AttributeUniverse:
    """The designer's property-name set ``A`` with its domain assignment.

    Binding every property name to exactly one :class:`AtomicValueSet` is
    the structural content of the Attribute Axiom: "to avoid
    mis-interpretation one should ensure that an attribute takes an element
    from a single atomic value set".

    Parameters
    ----------
    domains:
        Mapping from property name to its atomic value set.
    """

    __slots__ = ("_domains",)

    def __init__(self, domains: Mapping[PropertyName, AtomicValueSet]):
        self._domains: dict[PropertyName, AtomicValueSet] = {}
        for name, domain in domains.items():
            if not isinstance(name, str) or not name:
                raise SchemaError(f"bad property name: {name!r}")
            if not isinstance(domain, AtomicValueSet):
                raise SchemaError(f"domain of {name!r} is not an AtomicValueSet")
            self._domains[name] = domain

    @classmethod
    def from_values(cls, assignment: Mapping[PropertyName, Iterable[Value]]) -> "AttributeUniverse":
        """Convenience: build one value set per property name.

        The value set is named after the property, matching the common
        case where the semantic concept is private to the property.
        """
        return cls({
            name: AtomicValueSet(f"{name}-values", values)
            for name, values in assignment.items()
        })

    @property
    def property_names(self) -> frozenset[PropertyName]:
        """The set ``A`` of property names."""
        return frozenset(self._domains)

    def domain(self, name: PropertyName) -> AtomicValueSet:
        """The atomic value set bound to ``name``."""
        if name not in self._domains:
            raise SchemaError(f"unknown property name: {name!r}")
        return self._domains[name]

    def validate_attribute(self, attribute: Attribute) -> None:
        """Raise unless the attribute's value lies in its bound value set."""
        domain = self.domain(attribute.name)
        if attribute.value not in domain:
            raise AxiomViolationError(
                "Attribute Axiom",
                f"value {attribute.value!r} of {attribute.name!r} is outside "
                f"its atomic value set {domain.name!r}",
                offenders=(attribute,),
            )

    def shared_concepts(self) -> dict[AtomicValueSet, frozenset[PropertyName]]:
        """Group property names by shared atomic value set.

        Sharing a value set is legitimate (the paper's example separates
        persons' *name* from departments' *depname* precisely so they do
        NOT share a concept); this report lets the designer audit the
        sharing that remains.
        """
        groups: dict[AtomicValueSet, set[PropertyName]] = {}
        for name, domain in self._domains.items():
            groups.setdefault(domain, set()).add(name)
        return {d: frozenset(names) for d, names in groups.items() if len(names) > 1}

    def __contains__(self, name: object) -> bool:
        return name in self._domains

    def __len__(self) -> int:
        return len(self._domains)

    def __repr__(self) -> str:
        return f"AttributeUniverse({sorted(self._domains)})"
