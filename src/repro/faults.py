"""Deterministic fault injection: every failure mode from a seed.

Failover code is only trustworthy under failure, and failures summoned
by ``sleep`` calls are flaky theatre.  This module makes them
*scheduled*: a :class:`FaultPlan` is a seeded schedule of fault sites —
probabilistic rates and exact call-index trips — and the wrappers
consult it at each site, so a failing run is replayed exactly by
re-running with the same seed (the chaos CI lane prints it).

Two fault surfaces, matching where the store touches the world:

* :class:`FaultyWal` wraps a :class:`~repro.store.WriteAheadLog` and
  injects the crash shapes the PR-6 durability contract is written
  against — torn writes (a durable partial final line), short writes
  (a partial line that never reached disk), silent fsync loss (bytes
  the OS acknowledged but power loss would eat), and transient
  ``OSError``\\ s.  :meth:`FaultyWal.simulate_power_loss` then rolls the
  files back to their durable watermark, producing exactly the on-disk
  state a real crash would leave.
* :class:`ChaosProxy` is a frame-aware TCP relay (built on
  :func:`repro.io.split_frames`) injecting the network shapes client
  resilience is written against — delayed, dropped, and truncated
  frames, plain disconnects, and the ambiguous *disconnect-mid-commit*
  (the server receives and applies the commit; the client never sees
  the ack).

Fault types are typed so retry policies can classify them:
:class:`InjectedFault` is an ``OSError`` (transient, retryable);
:class:`InjectedCrash` is not (it *is* the simulated process death —
nothing downstream of it runs).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from collections import defaultdict
from random import Random
from typing import Any, Iterable, Mapping

from repro.io import FRAME_HEADER, MAX_FRAME_BYTES, split_frames
from repro.obs.trace import NULL_TRACER, Tracer
from repro.store.wal import WriteAheadLog


class InjectedFault(OSError):
    """A scheduled *transient* failure (I/O hiccup, flaky syscall).

    Derives from ``OSError`` so the production retry classification —
    which treats OS-level errors as retryable — applies to injected
    faults without special cases."""


class InjectedCrash(Exception):
    """A scheduled *process death* at a chosen point.

    Deliberately not an ``OSError``: nothing may catch-and-continue
    past it inside the system under test — the test harness catches it
    at the top, then inspects the on-disk wreckage."""


_MISS = object()


class FaultPlan:
    """A seeded schedule of fault sites.

    Parameters
    ----------
    seed:
        Seeds the plan's private RNG; two plans with equal seed, rates,
        and trips fire identically (given the same call order), which
        is what makes every chaos failure replayable.
    rates:
        ``{site: probability}`` — each :meth:`fire` call at ``site``
        draws once and fires with that probability.
    trips:
        ``{site: indices}`` — exact call indices (0-based, per site) at
        which the site fires.  Indices may carry payloads:
        ``{"wal.torn": {3: 17}}`` fires the 4th torn-write check with
        payload ``17`` (for :class:`FaultyWal`, the byte offset to cut
        the record at); a plain list/set/int fires with no payload.
        Trips fire regardless of the site's rate.

    Every firing is appended to :attr:`events` (site, per-site call
    index, payload), so a test can assert which faults actually
    happened and print the plan on failure.  :meth:`fire` is
    thread-safe — the proxy's pump threads share one plan.

    Attach a :class:`~repro.obs.trace.Tracer` (constructor argument or
    :attr:`tracer` assignment) and every firing is also stamped into
    its timeline as a ``fault.<site>`` event — injected faults then
    interleave, in wall-clock order, with the commit/election spans of
    the system under test.
    """

    def __init__(self, seed: int = 0,
                 rates: Mapping[str, float] | None = None,
                 trips: Mapping[str, Any] | None = None,
                 tracer: Tracer | None = None):
        self.seed = seed
        self.rates = {site: float(rate)
                      for site, rate in (rates or {}).items()}
        self.trips: dict[str, dict[int, Any]] = {
            site: self._normalise(spec)
            for site, spec in (trips or {}).items()}
        self._rng = Random(seed)
        self._counts: dict[str, int] = defaultdict(int)
        self._lock = threading.Lock()
        self.events: list[dict] = []
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @staticmethod
    def _normalise(spec: Any) -> dict[int, Any]:
        if isinstance(spec, Mapping):
            return {int(i): payload for i, payload in spec.items()}
        if isinstance(spec, Iterable) and not isinstance(spec, (str, bytes)):
            return {int(i): None for i in spec}
        return {int(spec): None}

    def configured(self, site: str) -> bool:
        """True when ``site`` can ever fire — wrappers use this to skip
        work (e.g. decoding a frame to find its op) for sites the plan
        never exercises."""
        return self.rates.get(site, 0.0) > 0.0 or site in self.trips

    def fire(self, site: str) -> dict | None:
        """One consultation of ``site``: returns the fault event (with
        its ``payload``, possibly ``None``) when the schedule says
        fire, else ``None``.  Each call advances the site's index."""
        with self._lock:
            index = self._counts[site]
            self._counts[site] += 1
            payload = self.trips.get(site, {}).get(index, _MISS)
            if payload is _MISS:
                rate = self.rates.get(site, 0.0)
                if rate <= 0.0 or self._rng.random() >= rate:
                    return None
                payload = None
            event = {"site": site, "index": index, "payload": payload}
            self.events.append(event)
        self.tracer.event(f"fault.{site}",
                          {"index": event["index"],
                           "payload": event["payload"]})
        return event

    def randrange(self, n: int) -> int:
        """A deterministic draw in ``[0, n)`` from the plan's RNG (cut
        offsets, delay jitter)."""
        with self._lock:
            return self._rng.randrange(n)

    def uniform(self, low: float, high: float) -> float:
        with self._lock:
            return self._rng.uniform(low, high)

    def describe(self) -> dict:
        """The replay recipe: everything needed to reconstruct this
        plan (print it when a chaos test fails)."""
        return {"seed": self.seed, "rates": dict(self.rates),
                "trips": {site: dict(spec)
                          for site, spec in self.trips.items()},
                "fired": list(self.events)}

    def __repr__(self) -> str:
        return (f"FaultPlan(seed={self.seed}, rates={self.rates}, "
                f"trips={self.trips}, fired={len(self.events)})")


# ----------------------------------------------------------------------
# the WAL file layer
# ----------------------------------------------------------------------
class FaultyWal:
    """A :class:`WriteAheadLog` wrapper that crashes on schedule.

    Drop-in for the engine's ``wal`` attribute (everything but
    :meth:`append` delegates to the wrapped log).  Sites, consulted on
    every append in this order:

    ``wal.io_error``
        Raise :class:`InjectedFault` before writing anything — a
        transient failure an engine-side caller may retry.
    ``wal.torn``
        Write a proper prefix of the encoded record, **fsync it**, and
        raise :class:`InjectedCrash` — the classic torn tail: the
        partial line is durably on disk.  The payload (or a seeded
        draw) picks the cut offset in ``[0, len(line)-1]``.
    ``wal.short``
        Write a proper prefix *without* syncing and raise
        :class:`InjectedCrash` — a short write the page cache held;
        :meth:`simulate_power_loss` makes it vanish entirely.
    ``wal.fsync_loss``
        Let the append succeed but *do not advance the durable
        watermark* — the record was acknowledged, yet a later
        :meth:`simulate_power_loss` erases it, modelling an fsync the
        device quietly dropped.

    The durable watermark is per file (rotation-aware): after every
    fully-durable append the current sizes of all the log's files are
    recorded, and :meth:`simulate_power_loss` truncates each file back
    to its watermark — producing exactly the bytes a real power cut at
    that point could have left behind.
    """

    def __init__(self, wal: WriteAheadLog, plan: FaultPlan):
        self.wal = wal
        self.plan = plan
        self._durable: dict[str, int] = {}
        self._mark_durable()

    def __getattr__(self, name: str) -> Any:
        return getattr(self.wal, name)

    def _mark_durable(self) -> None:
        for p in WriteAheadLog.segment_paths(self.wal.path):
            if p.exists():
                self._durable[str(p)] = p.stat().st_size

    def _write_partial(self, line: str, event: dict,
                       durable: bool) -> None:
        cut = event["payload"]
        if cut is None:
            cut = self.plan.randrange(max(1, len(line) - 1))
        cut = max(0, min(int(cut), len(line) - 1))
        fh = self.wal._fh
        fh.write(line[:cut])
        fh.flush()
        if durable:
            os.fsync(fh.fileno())
            self._mark_durable()

    def append(self, record: dict) -> None:
        event = self.plan.fire("wal.io_error")
        if event:
            raise InjectedFault(
                f"injected transient WAL failure "
                f"(site=wal.io_error, index={event['index']})")
        line = json.dumps(record, sort_keys=True) + "\n"
        event = self.plan.fire("wal.torn")
        if event:
            self._write_partial(line, event, durable=True)
            raise InjectedCrash(
                f"injected crash mid-append: torn write of "
                f"{record.get('type', '?')!r} record "
                f"(site=wal.torn, index={event['index']})")
        event = self.plan.fire("wal.short")
        if event:
            self._write_partial(line, event, durable=False)
            raise InjectedCrash(
                f"injected crash mid-append: short write of "
                f"{record.get('type', '?')!r} record "
                f"(site=wal.short, index={event['index']})")
        self.wal.append(record)
        if not self.plan.fire("wal.fsync_loss"):
            self._mark_durable()

    def simulate_power_loss(self) -> dict[str, int]:
        """Roll every log file back to its durable watermark, closing
        the wrapped handle first (the process is dead).  Returns
        ``{path: bytes dropped}`` for the files that lost data — the
        on-disk state recovery and promotion are then tested against.
        """
        self.wal.close()
        dropped: dict[str, int] = {}
        for p in WriteAheadLog.segment_paths(self.wal.path):
            if not p.exists():
                continue
            watermark = self._durable.get(str(p))
            if watermark is None or p.stat().st_size <= watermark:
                continue
            dropped[str(p)] = p.stat().st_size - watermark
            with open(p, "r+b") as fh:
                fh.truncate(watermark)
                fh.flush()
                os.fsync(fh.fileno())
        return dropped

    def __repr__(self) -> str:
        return f"FaultyWal({self.wal.path}, plan={self.plan!r})"


# ----------------------------------------------------------------------
# the network transport layer
# ----------------------------------------------------------------------
class ChaosProxy:
    """A frame-aware TCP relay that corrupts traffic on schedule.

    Sits between a :class:`~repro.server.StoreClient` and a
    :class:`~repro.server.StoreServer`; each accepted connection is
    paired with one upstream connection and pumped in both directions
    by daemon threads.  Bytes are regrouped into protocol frames
    (:func:`repro.io.split_frames` — no JSON decoding on the happy
    path), and each frame consults the plan:

    ``net.delay``
        Hold the frame for ``payload`` seconds (or a seeded draw up to
        ``max_delay``) before forwarding.
    ``net.drop``
        Swallow the frame (the peer sees silence, not a close).
    ``net.truncate``
        Forward a proper prefix of the frame, then close both sides —
        a mid-frame cut desynchronises the stream, so the connection
        cannot survive it (matching the server's own fatal-frame
        rule).
    ``net.disconnect``
        Close both sides instead of forwarding.
    ``net.commit_disconnect``
        Client→server direction only: when the frame is a ``commit``
        request, forward it and *then* close — the server applies the
        commit, the client never learns.  The ambiguous failure every
        retry design must survive.
    ``net.duplicate``
        Forward the frame **twice** — the retransmit-after-lost-ack
        shape; request ids make the duplicate detectable, idempotent
        replay makes it survivable.
    ``net.reorder``
        Hold the frame back and deliver it *after* the next frame in
        the same direction (held frames are flushed, in order, when
        the stream ends — reordering never silently drops).
    ``net.partition``
        Start a partition: frames in **both** directions are swallowed
        (the peer sees silence, exactly what a heartbeat prober sees)
        for ``payload`` seconds — or until :meth:`heal` when the
        payload is ``None``.  Also triggerable by hand via
        :meth:`partition`.
    ``net.pause``
        Freeze the relay (a SIGSTOP'd peer): frames queue behind the
        pause and flow again, in order, after ``payload`` seconds or
        :meth:`resume`.  Unlike a partition nothing is lost — only
        late.

    ``start()`` binds and returns the proxy's own ``(host, port)`` for
    clients to dial; ``stop()`` closes the listener and every live
    pair.  Multiple client connections are supported (each gets its
    own pump threads, all sharing the one plan).
    """

    def __init__(self, target: tuple[str, int], plan: FaultPlan,
                 host: str = "127.0.0.1", port: int = 0,
                 max_delay: float = 0.05):
        self.target = target
        self.plan = plan
        self.host = host
        self.port = port
        self.max_delay = max_delay
        self.address: tuple[str, int] | None = None
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._threads: list[threading.Thread] = []
        self._pairs: list[tuple[socket.socket, socket.socket]] = []
        self._lock = threading.Lock()
        self._stopping = False
        self._partition_until: float | None = None
        self._pause_until: float | None = None

    # -- manual partition / pause --------------------------------------
    def partition(self, duration: float | None = None) -> None:
        """Black-hole both directions for ``duration`` seconds (or
        until :meth:`heal`): frames are swallowed, connections stay
        up — the probe-timeout shape, as opposed to a clean close."""
        self._partition_until = (float("inf") if duration is None
                                 else time.monotonic() + duration)

    def heal(self) -> None:
        """End a partition (frames flow again; what was swallowed
        while partitioned stays lost)."""
        self._partition_until = None

    def pause(self, duration: float | None = None) -> None:
        """Freeze the relay for ``duration`` seconds (or until
        :meth:`resume`): frames queue behind the pause and are
        delivered, in order, once it lifts."""
        self._pause_until = (float("inf") if duration is None
                             else time.monotonic() + duration)

    def resume(self) -> None:
        self._pause_until = None

    def _partitioned(self) -> bool:
        until = self._partition_until
        if until is None:
            return False
        if time.monotonic() >= until:
            self._partition_until = None
            return False
        return True

    def _hold_while_paused(self) -> None:
        while not self._stopping:
            until = self._pause_until
            if until is None:
                return
            now = time.monotonic()
            if now >= until:
                self._pause_until = None
                return
            # Sleep in small slices so resume()/stop() take effect
            # promptly even under an open-ended pause.
            time.sleep(min(0.005, max(0.0, until - now)))

    # -- lifecycle -----------------------------------------------------
    def start(self) -> tuple[str, int]:
        if self._listener is not None:
            raise RuntimeError("proxy already started")
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.host, self.port))
        self._listener.listen()
        self.address = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_forever, name="chaos-proxy-accept",
            daemon=True)
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._lock:
            pairs, self._pairs = self._pairs, []
        for a, b in pairs:
            for s in (a, b):
                try:
                    s.close()
                except OSError:
                    pass
        for t in [self._accept_thread, *self._threads]:
            if t is not None:
                t.join(1.0)
        self._accept_thread = None
        self._threads = []

    def __enter__(self) -> "ChaosProxy":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- plumbing ------------------------------------------------------
    def _accept_forever(self) -> None:
        listener = self._listener
        while not self._stopping and listener is not None:
            try:
                downstream, _ = listener.accept()
            except OSError:
                return  # listener closed by stop()
            try:
                upstream = socket.create_connection(self.target,
                                                    timeout=10.0)
            except OSError:
                downstream.close()
                continue
            with self._lock:
                self._pairs.append((downstream, upstream))
            for src, dst, direction in (
                    (downstream, upstream, "c2s"),
                    (upstream, downstream, "s2c")):
                t = threading.Thread(
                    target=self._pump, args=(src, dst, direction),
                    name=f"chaos-proxy-{direction}", daemon=True)
                t.start()
                self._threads.append(t)

    def _close_pair(self, a: socket.socket, b: socket.socket) -> None:
        for s in (a, b):
            try:
                s.close()
            except OSError:
                pass

    @staticmethod
    def _frame_op(frame: bytes) -> str | None:
        """The ``op`` of one frame's request object, or ``None`` when
        the payload does not decode (corrupt frames are forwarded
        untouched — mangling them further is the server's problem)."""
        try:
            message = json.loads(frame[FRAME_HEADER.size:])
        except (ValueError, UnicodeDecodeError):
            return None
        return message.get("op") if isinstance(message, dict) else None

    def _pump(self, src: socket.socket, dst: socket.socket,
              direction: str) -> None:
        plan = self.plan
        buffer = b""
        held: list[bytes] = []  # frames net.reorder is holding back
        try:
            while True:
                data = src.recv(65536)
                if not data:
                    break
                buffer += data
                if len(buffer) > MAX_FRAME_BYTES + FRAME_HEADER.size:
                    # Never a protocol frame (the server would fatal it
                    # anyway); pass the bytes through rather than
                    # buffering without bound.
                    dst.sendall(buffer)
                    buffer = b""
                    continue
                frames, buffer = split_frames(buffer)
                for frame in frames:
                    if plan.fire("net.reorder"):
                        held.append(frame)
                        continue
                    if not self._relay_frame(frame, dst, direction):
                        self._close_pair(src, dst)
                        return
                    while held:  # held frames ride behind the next one
                        late = held.pop(0)
                        if not self._relay_frame(late, dst, direction):
                            self._close_pair(src, dst)
                            return
        except OSError:
            pass
        # Reordering must never silently drop: flush what is still held
        # before the close the peer is about to see.
        for late in held:
            try:
                dst.sendall(late)
            except OSError:
                break
        self._close_pair(src, dst)

    def _relay_frame(self, frame: bytes, dst: socket.socket,
                     direction: str) -> bool:
        """Forward one frame through the schedule; False = the pair
        must close (truncation/disconnect fired, or the peer is
        gone)."""
        plan = self.plan
        event = plan.fire("net.partition")
        if event:
            duration = event["payload"]
            self.partition(None if duration is None
                           else float(duration))
        event = plan.fire("net.pause")
        if event:
            duration = event["payload"]
            self.pause(None if duration is None else float(duration))
        if self._partitioned():
            return True  # the link eats the frame; connections live on
        self._hold_while_paused()
        event = plan.fire("net.delay")
        if event:
            delay = event["payload"]
            if delay is None:
                delay = plan.uniform(0.0, self.max_delay)
            time.sleep(float(delay))
        if plan.fire("net.drop"):
            return True
        event = plan.fire("net.truncate")
        if event:
            cut = event["payload"]
            if cut is None:
                cut = plan.randrange(max(1, len(frame) - 1))
            cut = max(0, min(int(cut), len(frame) - 1))
            try:
                dst.sendall(frame[:cut])
            except OSError:
                pass
            return False
        if plan.fire("net.disconnect"):
            return False
        duplicate = bool(plan.fire("net.duplicate"))
        commit_cut = (direction == "c2s"
                      and plan.configured("net.commit_disconnect")
                      and self._frame_op(frame) == "commit"
                      and plan.fire("net.commit_disconnect"))
        try:
            dst.sendall(frame)
            if duplicate:
                dst.sendall(frame)
        except OSError:
            return False
        return not commit_cut

    def __repr__(self) -> str:
        return (f"ChaosProxy({self.address} -> {self.target}, "
                f"plan={self.plan!r})")
