"""Counterexample ("Armstrong") relations for completeness arguments.

The paper proves its entity-level dependency system "sound and complete"
(section 5.2).  Completeness arguments for FD systems classically rest on a
construction: for any FD not implied by a set F, there is a *two-tuple
relation* satisfying all of F but violating the candidate.  This module
builds those witnesses, both at the attribute level (used by the
:mod:`repro.core.armstrong` tests through the entity-type lift) and the full
Armstrong relation that satisfies *exactly* the implied FDs.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.relational.fd import FD, all_implied_fds, closure, holds_in
from repro.relational.relation import AttrName, Relation, Tuple


def two_tuple_witness(schema: Iterable[AttrName], fds: Iterable[FD],
                      candidate: FD) -> Relation | None:
    """A two-tuple relation satisfying ``fds`` but violating ``candidate``.

    Returns ``None`` when ``candidate`` is implied by ``fds`` (no witness
    exists — that is exactly the soundness direction).  The construction is
    the classical one: both tuples agree on ``closure(candidate.lhs)`` and
    differ everywhere else.
    """
    schema_set = frozenset(schema)
    fds = list(fds)
    agree = closure(candidate.lhs, fds) & schema_set
    if candidate.rhs <= agree:
        return None
    t1 = Tuple({a: 0 for a in schema_set})
    t2 = Tuple({a: (0 if a in agree else 1) for a in schema_set})
    return Relation(schema_set, [t1, t2])


def witness_respects(schema: Iterable[AttrName], fds: Iterable[FD],
                     candidate: FD) -> bool:
    """Sanity predicate: the witness really separates ``candidate`` from ``fds``.

    True when either no witness exists (candidate implied) or the witness
    satisfies every FD in ``fds`` and falsifies ``candidate``.
    """
    witness = two_tuple_witness(schema, fds, candidate)
    if witness is None:
        return True
    return all(holds_in(fd, witness) for fd in fds) and not holds_in(candidate, witness)


def armstrong_relation(schema: Iterable[AttrName], fds: Iterable[FD]) -> Relation:
    """A relation satisfying exactly the FDs implied by ``fds``.

    Built by disjoint union (over fresh value ranges) of one two-tuple
    witness per non-implied FD, plus one base tuple.  Exponential in the
    schema size — intended for the small schemas of tests and benches.
    """
    schema_set = frozenset(schema)
    fds = list(fds)
    rows: list[Tuple] = [Tuple({a: "base" for a in schema_set})]
    counter = 0
    subsets: list[frozenset[AttrName]] = [frozenset()]
    for attr in sorted(schema_set):
        subsets += [s | {attr} for s in subsets]
    for lhs in subsets:
        agree = closure(lhs, fds) & schema_set
        if agree == schema_set:
            continue
        # Witness that lhs does not determine the attributes outside its closure.
        tag = f"w{counter}"
        counter += 1
        rows.append(Tuple({a: (f"{tag}a" if a in agree else f"{tag}x") for a in schema_set}))
        rows.append(Tuple({a: (f"{tag}a" if a in agree else f"{tag}y") for a in schema_set}))
    return Relation(schema_set, rows)


def satisfied_fds(relation: Relation) -> frozenset[FD]:
    """All single-attribute-RHS FDs holding in ``relation`` (exponential)."""
    out: set[FD] = set()
    schema = relation.schema
    subsets: list[frozenset[AttrName]] = [frozenset()]
    for attr in sorted(schema):
        subsets += [s | {attr} for s in subsets]
    for lhs in subsets:
        for attr in schema:
            fd = FD(lhs, {attr})
            if holds_in(fd, relation):
                out.add(fd)
    return out


def is_armstrong_for(relation: Relation, fds: Iterable[FD]) -> bool:
    """Whether ``relation`` satisfies exactly the closure of ``fds``."""
    implied = all_implied_fds(relation.schema, fds)
    return satisfied_fds(relation) == implied
