"""Relational algebra over :class:`~repro.relational.relation.Relation`.

The paper needs two operators by name — projection ``pi`` (sections 4.1 and
5.1) and the natural join ``*`` / ``II`` used to phrase the Extension Axiom
(section 4.2).  The rest of the classical algebra is implemented so the
Universal Relation baseline (windows are projections of a join) and the
normalization module have a complete substrate.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from functools import reduce

from repro.errors import RelationError
from repro.kernel import InstanceKernel, join_interned
from repro.relational.relation import AttrName, Relation, Tuple


def project(relation: Relation, attrs: Iterable[AttrName]) -> Relation:
    """``pi_attrs(relation)`` — duplicate-eliminating projection.

    Deduplicates on the interned id rows and decodes each distinct
    output row once into a trusted ``Tuple``; the per-tuple dict
    projection is retained as :func:`project_naive`.
    """
    wanted = frozenset(attrs)
    missing = wanted - relation.schema
    if missing:
        raise RelationError(f"projection on absent attributes: {sorted(missing)}")
    inst = InstanceKernel.of(relation)
    return Relation._trusted(
        wanted, (Tuple._trusted(items) for items in inst.project_items(wanted))
    )


def project_naive(relation: Relation, attrs: Iterable[AttrName]) -> Relation:
    """Reference oracle for :func:`project` (per-tuple dict projection)."""
    wanted = frozenset(attrs)
    missing = wanted - relation.schema
    if missing:
        raise RelationError(f"projection on absent attributes: {sorted(missing)}")
    return Relation(wanted, (t.project(wanted) for t in relation.tuples))


def select(relation: Relation, predicate: Callable[[Tuple], bool]) -> Relation:
    """``sigma_predicate(relation)`` — keep tuples satisfying the predicate."""
    return Relation(relation.schema, (t for t in relation.tuples if predicate(t)))


def rename(relation: Relation, renaming: Mapping[AttrName, AttrName]) -> Relation:
    """``rho`` — rename attributes; unmentioned attributes are kept."""
    new_schema = {renaming.get(a, a) for a in relation.schema}
    if len(new_schema) != len(relation.schema):
        raise RelationError("renaming collapses two attributes into one")
    return Relation(new_schema, (t.rename(renaming) for t in relation.tuples))


def natural_join(left: Relation, right: Relation) -> Relation:
    """``left * right`` — the join the Extension Axiom is phrased with.

    A hash join on the shared attributes (degenerating to the cartesian
    product when they are disjoint), run over the interned instances:
    right ids are translated into the left symbol space once per shared
    column, matching rows are found through the cached partition index,
    and each output row is decoded once into a trusted ``Tuple``.  The
    tuple-merge implementation is retained as :func:`natural_join_naive`.
    """
    schema = left.schema | right.schema
    joined = join_interned(InstanceKernel.of(left), InstanceKernel.of(right))
    return Relation._trusted(schema, (Tuple._trusted(items) for items in joined))


def natural_join_naive(left: Relation, right: Relation) -> Relation:
    """Reference oracle for :func:`natural_join` (tuple-merge hash join)."""
    shared = left.schema & right.schema
    schema = left.schema | right.schema
    index: dict[Tuple, list[Tuple]] = {}
    for t in right.tuples:
        index.setdefault(t.project(shared), []).append(t)
    out: list[Tuple] = []
    for t in left.tuples:
        for match in index.get(t.project(shared), ()):
            out.append(t.merge(match))
    return Relation(schema, out)


def join_all(relations: Iterable[Relation]) -> Relation:
    """``II relations`` — the n-ary natural join (paper's big-product join).

    The empty join is the zero-ary TRUE relation ``{()}``, the unit of
    natural join.
    """
    relations = list(relations)
    if not relations:
        return Relation((), [Tuple({})])
    return reduce(natural_join, relations)


def union(left: Relation, right: Relation) -> Relation:
    """Set union; schemas must agree."""
    _require_same_schema(left, right, "union")
    return Relation(left.schema, left.tuples | right.tuples)


def difference(left: Relation, right: Relation) -> Relation:
    """Set difference; schemas must agree."""
    _require_same_schema(left, right, "difference")
    return Relation(left.schema, left.tuples - right.tuples)


def intersection(left: Relation, right: Relation) -> Relation:
    """Set intersection; schemas must agree."""
    _require_same_schema(left, right, "intersection")
    return Relation(left.schema, left.tuples & right.tuples)


def cartesian_product(left: Relation, right: Relation) -> Relation:
    """Cross product; schemas must be disjoint."""
    if left.schema & right.schema:
        raise RelationError("cartesian product requires disjoint schemas; use natural_join")
    return natural_join(left, right)


def division(dividend: Relation, divisor: Relation) -> Relation:
    """``dividend / divisor`` — tuples related to *all* divisor tuples."""
    if not divisor.schema <= dividend.schema:
        raise RelationError("divisor schema must be contained in dividend schema")
    quotient_schema = dividend.schema - divisor.schema
    candidates = project(dividend, quotient_schema)
    keep = []
    for t in candidates.tuples:
        if all(t.merge(d) in dividend.tuples for d in divisor.tuples):
            keep.append(t)
    return Relation(quotient_schema, keep)


def semijoin(left: Relation, right: Relation) -> Relation:
    """Left tuples with at least one join partner on the right."""
    shared = left.schema & right.schema
    right_keys = {t.project(shared) for t in right.tuples}
    return Relation(left.schema, (t for t in left.tuples if t.project(shared) in right_keys))


def is_lossless_decomposition(relation: Relation,
                              schemas: Iterable[Iterable[AttrName]]) -> bool:
    """Whether projecting onto ``schemas`` and re-joining recovers ``relation``.

    This is the *instance-level* lossless check used to validate the chase
    (schema-level) test in :mod:`repro.relational.chase` and to demonstrate
    the information loss the View Axiom is designed to prevent.

    The projections and joins all stem from one relation, so the whole
    pipeline stays in its interned symbol space: id-level projections
    (cached on the instance), integer hash joins, and a final row-set
    comparison with no tuple decoding at all.  The object-level pipeline
    is retained as :func:`is_lossless_decomposition_naive`.
    """
    parts = [frozenset(s) for s in schemas]
    for part in parts:
        missing = part - relation.schema
        if missing:
            raise RelationError(f"projection on absent attributes: {sorted(missing)}")
    covered = frozenset().union(*parts) if parts else frozenset()
    if covered != relation.schema:
        raise RelationError("decomposition does not cover the schema")
    return InstanceKernel.of(relation).joins_back(parts)


def join_all_naive(relations: Iterable[Relation]) -> Relation:
    """The n-ary fold of :func:`natural_join_naive` from the TRUE unit.

    The oracle counterpart of :func:`join_all`, shared by every naive
    reconstruction pipeline (JD oracle, lossless oracle, known-lossless
    test fixtures) so they stay kernel-free through one code path.
    """
    joined = Relation((), [Tuple({})])
    for relation in relations:
        joined = natural_join_naive(joined, relation)
    return joined


def is_lossless_decomposition_naive(relation: Relation,
                                    schemas: Iterable[Iterable[AttrName]]) -> bool:
    """Reference oracle for :func:`is_lossless_decomposition`.

    Built exclusively from the naive projection and join so the oracle
    shares no code with the kernel route.
    """
    parts = [project_naive(relation, s) for s in schemas]
    covered = frozenset().union(*(p.schema for p in parts)) if parts else frozenset()
    if covered != relation.schema:
        raise RelationError("decomposition does not cover the schema")
    return join_all_naive(parts) == relation


def _require_same_schema(left: Relation, right: Relation, op: str) -> None:
    if left.schema != right.schema:
        raise RelationError(
            f"{op} requires identical schemas: "
            f"{sorted(left.schema)} vs {sorted(right.schema)}"
        )
