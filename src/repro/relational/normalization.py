"""Normalization baselines: BCNF decomposition and 3NF synthesis.

The paper's central complaint about attribute-oriented models is that
"the projection operator can easily destroy the semantic bonds between
attributes composing an entity" (section 6).  Classical normalization is
the canonical producer of such projections, so we implement it as a
baseline: benches contrast the entity hierarchy the axiom model prescribes
with the schemas BCNF/3NF would manufacture from the same dependencies.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.relational.chase import is_lossless
from repro.relational.fd import FD, candidate_keys, closure, implies, minimal_cover

AttrName = str


def bcnf_violations(schema: Iterable[AttrName], fds: Iterable[FD]) -> list[FD]:
    """Non-trivial projected FDs whose LHS is not a superkey of ``schema``.

    Projection of dependencies onto a sub-schema is computed with the
    closure trick (``X -> closure(X) intersect schema``), which is
    exponential in the sub-schema size — the correct but costly route;
    intended for design-time schemas, not wide tables.
    """
    schema_set = frozenset(schema)
    fds = list(fds)
    out = []
    subsets: list[frozenset[AttrName]] = [frozenset()]
    for attr in sorted(schema_set):
        subsets += [s | {attr} for s in subsets]
    for lhs in subsets:
        closed = closure(lhs, fds)
        rhs = (closed & schema_set) - lhs
        if rhs and not schema_set <= closed:
            out.append(FD(lhs, rhs))
    return sorted(out, key=repr)


def is_bcnf(schema: Iterable[AttrName], fds: Iterable[FD]) -> bool:
    """Whether ``schema`` is in Boyce-Codd normal form under ``fds``."""
    return not bcnf_violations(schema, fds)


def bcnf_decompose(schema: Iterable[AttrName],
                   fds: Iterable[FD]) -> list[frozenset[AttrName]]:
    """The classical (lossless, not necessarily dependency-preserving) split.

    Deterministic: the violating FD with the lexicographically smallest
    representation is split first, so tests can pin results.
    """
    schema_set = frozenset(schema)
    fds = list(fds)
    violations = bcnf_violations(schema_set, fds)
    if not violations:
        return [schema_set]
    fd = min(violations, key=lambda v: (len(v.lhs), repr(v)))
    lhs_closure = closure(fd.lhs, fds) & schema_set
    left = lhs_closure
    right = fd.lhs | (schema_set - lhs_closure)
    return sorted(
        set(bcnf_decompose(left, fds)) | set(bcnf_decompose(right, fds)),
        key=lambda s: sorted(s),
    )


def third_nf_synthesis(schema: Iterable[AttrName],
                       fds: Iterable[FD]) -> list[frozenset[AttrName]]:
    """Bernstein-style 3NF synthesis from a minimal cover, with a key relation.

    Lossless and dependency preserving; returns sorted schemas for
    determinism.
    """
    schema_set = frozenset(schema)
    cover = minimal_cover(fds)
    groups: dict[frozenset[AttrName], set[AttrName]] = {}
    for fd in cover:
        groups.setdefault(fd.lhs, set()).update(fd.rhs)
    schemas = {frozenset(lhs | rhs) for lhs, rhs in groups.items()}
    # Attributes mentioned in no FD still need a home.
    mentioned = frozenset().union(*schemas) if schemas else frozenset()
    orphans = schema_set - mentioned
    if orphans:
        schemas.add(frozenset(orphans))
    # Guarantee losslessness: some schema must contain a key of the whole.
    keys = candidate_keys(schema_set, cover)
    if not any(any(key <= s for key in keys) for s in schemas):
        schemas.add(min(keys, key=lambda k: sorted(k)))
    # Drop schemas subsumed by others.
    final = {s for s in schemas if not any(s < t for t in schemas)}
    return sorted(final, key=lambda s: sorted(s))


def preserves_dependencies(schemas: Iterable[Iterable[AttrName]],
                           fds: Iterable[FD]) -> bool:
    """Whether the union of projected FDs implies the originals.

    Projection of FDs onto a schema is computed by the closure trick
    (exponential in the sub-schema size; fine at bench scale).
    """
    fds = list(fds)
    projected: set[FD] = set()
    for schema in schemas:
        schema_set = frozenset(schema)
        subsets: list[frozenset[AttrName]] = [frozenset()]
        for attr in sorted(schema_set):
            subsets += [s | {attr} for s in subsets]
        for lhs in subsets:
            rhs = (closure(lhs, fds) & schema_set) - lhs
            if rhs:
                projected.add(FD(lhs, rhs))
    return all(implies(projected, fd) for fd in fds)


def decomposition_report(schema: Iterable[AttrName],
                         fds: Iterable[FD]) -> dict[str, object]:
    """BCNF vs 3NF on one schema: sizes, losslessness, preservation.

    The comparison rows of ablation bench A4.
    """
    schema_set = frozenset(schema)
    fds = list(fds)
    bcnf = bcnf_decompose(schema_set, fds)
    tnf = third_nf_synthesis(schema_set, fds)
    return {
        "schema": schema_set,
        "bcnf_parts": bcnf,
        "bcnf_lossless": is_lossless(schema_set, bcnf, fds),
        "bcnf_preserving": preserves_dependencies(bcnf, fds),
        "3nf_parts": tnf,
        "3nf_lossless": is_lossless(schema_set, tnf, fds),
        "3nf_preserving": preserves_dependencies(tnf, fds),
    }
