"""Multi-valued dependencies (the section-6 research programme).

"Currently we investigate more complex constraints, such as multi-valued
dependencies, join-dependencies and domain constraints.  It can be shown
that multi-valued dependencies are a special case of domain constraints."

This module supplies the classical MVD machinery the claim is about:
``X ->> Y`` holds in ``R`` over schema ``U`` iff whenever two tuples agree
on ``X``, the tuple mixing one's ``Y`` part with the other's ``U - X - Y``
part is also in ``R``.  The executable version of the paper's claim —
an MVD *is* a closure condition on the allowed subsets of the domain —
lives in :mod:`repro.core.domain_constraints`.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import DependencyError
from repro.kernel import CheckSet, InstanceKernel
from repro.relational.fd import FD
from repro.relational.relation import AttrName, Relation, Tuple


class MVD:
    """A multi-valued dependency ``lhs ->> rhs`` over a schema ``universe``.

    The universe matters: unlike FDs, MVD satisfaction depends on the
    complement ``universe - lhs - rhs``.
    """

    __slots__ = ("lhs", "rhs", "universe")

    def __init__(self, lhs: Iterable[AttrName], rhs: Iterable[AttrName],
                 universe: Iterable[AttrName]):
        self.lhs = frozenset(lhs)
        self.rhs = frozenset(rhs)
        self.universe = frozenset(universe)
        if not self.lhs <= self.universe or not self.rhs <= self.universe:
            raise DependencyError("MVD sides must lie inside the universe")

    @property
    def complement_attrs(self) -> frozenset[AttrName]:
        """``universe - lhs - rhs`` — the side the swap happens against."""
        return self.universe - self.lhs - self.rhs

    def complement(self) -> "MVD":
        """The complementation rule: ``X ->> Y`` iff ``X ->> U - X - Y``."""
        return MVD(self.lhs, self.complement_attrs, self.universe)

    def is_trivial(self) -> bool:
        """Trivial when ``rhs subseteq lhs`` or ``lhs | rhs == universe``."""
        return self.rhs <= self.lhs or (self.lhs | self.rhs) == self.universe

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MVD):
            return NotImplemented
        return (self.lhs, self.rhs, self.universe) == \
            (other.lhs, other.rhs, other.universe)

    def __hash__(self) -> int:
        return hash((MVD, self.lhs, self.rhs, self.universe))

    def __repr__(self) -> str:
        left = ",".join(sorted(self.lhs)) or "{}"
        right = ",".join(sorted(self.rhs))
        return f"{left} ->> {right}"


def holds_in(mvd: MVD, relation: Relation) -> bool:
    """The swap-closure semantics of an MVD.

    Runs on the interned instance: within each lhs-group the rows are
    ``(Y, Z)`` pairs over the disjoint blocks ``Y = rhs - lhs`` and
    ``Z = universe - lhs - rhs``, and swap closure is exactly the
    product condition ``|group| == |Y's| * |Z's|`` — one counting pass
    per group instead of the quadratic swap enumeration retained as
    :func:`holds_in_naive`.
    """
    if relation.schema != mvd.universe:
        raise DependencyError(
            f"MVD universe {sorted(mvd.universe)} does not match the "
            f"relation schema {sorted(relation.schema)}"
        )
    return InstanceKernel.of(relation).mvd_holds(mvd.lhs, mvd.rhs)


def holds_in_naive(mvd: MVD, relation: Relation) -> bool:
    """Reference oracle for :func:`holds_in` (explicit swap enumeration)."""
    if relation.schema != mvd.universe:
        raise DependencyError(
            f"MVD universe {sorted(mvd.universe)} does not match the "
            f"relation schema {sorted(relation.schema)}"
        )
    groups: dict[Tuple, list[Tuple]] = {}
    for t in relation.tuples:
        groups.setdefault(t.project(mvd.lhs), []).append(t)
    rest = mvd.complement_attrs
    for members in groups.values():
        for t1 in members:
            for t2 in members:
                mixed = t1.project(mvd.lhs | mvd.rhs).merge(t2.project(rest))
                if mixed not in relation.tuples:
                    return False
    return True


def violating_swaps(mvd: MVD, relation: Relation) -> list[Tuple]:
    """The missing swap tuples witnessing an MVD violation.

    Runs on the batch engine: per lhs-group the mixed tuples over all
    ordered row pairs are exactly the Y-part x Z-part product, so the
    witnesses are the product rows absent from the group — assembled in
    id space and decoded once each, instead of the quadratic
    project-and-merge enumeration retained as
    :func:`violating_swaps_naive`.
    """
    if relation.schema != mvd.universe:
        raise DependencyError("MVD universe does not match the relation schema")
    inst = InstanceKernel.of(relation)
    verdict = CheckSet(inst).add_mvd(0, mvd.lhs, mvd.rhs).run(witnesses=True)[0]
    return sorted(
        (Tuple._trusted(inst.decode_row(row)) for row in verdict.witness),
        key=repr,
    )


def violating_swaps_naive(mvd: MVD, relation: Relation) -> list[Tuple]:
    """Reference oracle for :func:`violating_swaps` (swap enumeration)."""
    if relation.schema != mvd.universe:
        raise DependencyError("MVD universe does not match the relation schema")
    groups: dict[Tuple, list[Tuple]] = {}
    for t in relation.tuples:
        groups.setdefault(t.project(mvd.lhs), []).append(t)
    rest = mvd.complement_attrs
    missing: set[Tuple] = set()
    for members in groups.values():
        for t1 in members:
            for t2 in members:
                mixed = t1.project(mvd.lhs | mvd.rhs).merge(t2.project(rest))
                if mixed not in relation.tuples:
                    missing.add(mixed)
    return sorted(missing, key=repr)


def swap_closure(mvd: MVD, relation: Relation) -> Relation:
    """The smallest superset of ``relation`` satisfying ``mvd``.

    Repairs a violation by *adding* the missing mixed tuples (the
    alternative repair, deletion, is not unique).  Completing each
    lhs-group to its Y-part x Z-part product adds no new Y- or Z-parts,
    so the fixpoint is reached after the *first* completion: the closure
    is computed in one id-space pass instead of the decode / re-intern
    fixpoint loop retained as :func:`swap_closure_naive`.  Returns the
    input relation itself when the MVD already holds.
    """
    if relation.schema != mvd.universe:
        raise DependencyError("MVD universe does not match the relation schema")
    inst = InstanceKernel.of(relation)
    verdict = CheckSet(inst).add_mvd(0, mvd.lhs, mvd.rhs).run(witnesses=True)[0]
    if not verdict.witness:
        return relation
    return Relation._trusted(
        relation.schema,
        set(relation.tuples) | {
            Tuple._trusted(inst.decode_row(row)) for row in verdict.witness
        },
    )


def swap_closure_naive(mvd: MVD, relation: Relation) -> Relation:
    """Reference oracle for :func:`swap_closure` (fixpoint of the naive
    witness producer; terminates because the closure is bounded by the
    product of the projected groups)."""
    current = relation
    while True:
        missing = violating_swaps_naive(mvd, current)
        if not missing:
            return current
        current = current.with_tuples(missing)


def fd_implies_mvd(fd: FD, universe: Iterable[AttrName]) -> MVD:
    """Promotion: every FD ``X -> Y`` is the MVD ``X ->> Y`` (classical).

    The returned MVD is implied by the FD on every relation over
    ``universe`` — tests verify by random search.
    """
    return MVD(fd.lhs, fd.rhs, universe)


def decomposition_mvd(universe: Iterable[AttrName],
                      left: Iterable[AttrName],
                      right: Iterable[AttrName]) -> MVD:
    """The MVD equivalent to losslessness of a binary decomposition.

    ``R = pi_left(R) * pi_right(R)`` iff ``(left & right) ->> left`` —
    Fagin's theorem, used to cross-validate against the chase in tests.
    """
    left, right = frozenset(left), frozenset(right)
    if left | right != frozenset(universe):
        raise DependencyError("decomposition must cover the universe")
    return MVD(left & right, left - right, universe)
