"""The chase: tableau-based reasoning about decompositions.

The View Axiom restricts views so that "a unique translation exists for
updates"; the Extension Axiom bounds a compound type by the join of its
contributors.  Both hinge on when a decomposition is *lossless* — the
schema-level question the chase answers.  This module implements the
classical FD-chase on tableaux and the lossless-join test, validated in
tests against the brute-force instance-level check of
:func:`repro.relational.algebra.is_lossless_decomposition`.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.kernel import is_lossless_indices
from repro.relational.fd import FD

AttrName = str


class Tableau:
    """A chase tableau: rows map attributes to symbols.

    Symbols are ``("a", attr)`` for distinguished variables and
    ``("b", attr, row_index)`` for non-distinguished ones.
    """

    def __init__(self, schema: Iterable[AttrName], rows: list[dict[AttrName, tuple]]):
        self.schema = frozenset(schema)
        self.rows = [dict(r) for r in rows]

    @classmethod
    def for_decomposition(cls, schema: Iterable[AttrName],
                          parts: Iterable[Iterable[AttrName]]) -> "Tableau":
        """The initial tableau of the lossless-join test: one row per part."""
        schema_set = frozenset(schema)
        rows = []
        for i, part in enumerate(parts):
            part_set = frozenset(part)
            row = {
                a: (("a", a) if a in part_set else ("b", a, i))
                for a in schema_set
            }
            rows.append(row)
        return cls(schema_set, rows)

    def has_distinguished_row(self) -> bool:
        """Whether some row is all-distinguished (the test's success state)."""
        return any(all(sym[0] == "a" for sym in row.values()) for row in self.rows)

    def chase_step(self, fd: FD) -> bool:
        """Apply one FD once; returns True when a symbol was changed.

        When two rows agree on ``fd.lhs`` their ``fd.rhs`` symbols are
        equated, preferring distinguished symbols (classical rule).  A
        symbol-location index built once per step makes each merge cost
        proportional to the dropped symbol's occurrence count; the old
        loop rescanned every cell of every row per merge, which was
        quadratic in the tableau size for merge-heavy FDs.
        """
        changed = False
        locations: dict[tuple, list[tuple[dict, AttrName]]] = {}
        for row in self.rows:
            for attr, sym in row.items():
                locations.setdefault(sym, []).append((row, attr))
        for i, r1 in enumerate(self.rows):
            for r2 in self.rows[i + 1:]:
                if any(r1[a] != r2[a] for a in fd.lhs):
                    continue
                for b in fd.rhs:
                    s1, s2 = r1[b], r2[b]
                    if s1 == s2:
                        continue
                    keep = s1 if s1[0] == "a" else (s2 if s2[0] == "a" else min(s1, s2))
                    drop = s2 if keep == s1 else s1
                    dropped = locations.pop(drop, ())
                    for row, attr in dropped:
                        row[attr] = keep
                    locations.setdefault(keep, []).extend(dropped)
                    changed = True
        return changed

    def chase(self, fds: Iterable[FD], max_rounds: int = 10_000) -> "Tableau":
        """Chase to a fixpoint (terminates: symbols strictly decrease)."""
        fds = list(fds)
        for _ in range(max_rounds):
            if not any(self.chase_step(fd) for fd in fds):
                break
        return self


_LOSSLESS_MEMO: dict[tuple, bool] = {}
_LOSSLESS_MEMO_CAP = 4096


def is_lossless(schema: Iterable[AttrName],
                parts: Iterable[Iterable[AttrName]],
                fds: Iterable[FD]) -> bool:
    """Schema-level lossless-join test via the chase.

    True iff every instance satisfying ``fds`` is recovered by joining its
    projections onto ``parts``.  Runs on the bitset kernel's array chase
    (rows of symbol ids, union-find equating, LHS-partition index); the
    tableau-object route is retained as :func:`is_lossless_naive`.

    The verdict is a pure function of ``(schema, parts, fds)`` and is
    invariant under reordering and duplication of parts and FDs, so
    results are memoised on the canonical key — the axiom checkers probe
    the same decompositions against many states, and repeat queries
    return in sub-microsecond time.  The memo is bounded and flushed
    wholesale when full.
    """
    schema = frozenset(schema)
    parts = [frozenset(p) for p in parts]
    fds = list(fds)
    key = (schema, frozenset(parts), frozenset(fds))
    hit = _LOSSLESS_MEMO.get(key)
    if hit is not None:
        return hit
    attrs = sorted(schema)
    index = {a: i for i, a in enumerate(attrs)}
    # Part attributes outside the schema are ignored, as in the tableau
    # construction (rows only carry schema attributes).
    part_indices = [tuple(index[a] for a in part if a in index)
                    for part in parts]
    fd_indices = [
        (tuple(index[a] for a in fd.lhs), tuple(index[a] for a in fd.rhs))
        for fd in fds
    ]
    verdict = is_lossless_indices(len(attrs), part_indices, fd_indices)
    if len(_LOSSLESS_MEMO) >= _LOSSLESS_MEMO_CAP:
        _LOSSLESS_MEMO.clear()
    _LOSSLESS_MEMO[key] = verdict
    return verdict


def is_lossless_naive(schema: Iterable[AttrName],
                      parts: Iterable[Iterable[AttrName]],
                      fds: Iterable[FD]) -> bool:
    """Reference oracle for :func:`is_lossless`: the tableau-object chase."""
    tableau = Tableau.for_decomposition(schema, parts)
    tableau.chase(fds)
    return tableau.has_distinguished_row()


def binary_lossless(schema: Iterable[AttrName],
                    left: Iterable[AttrName],
                    right: Iterable[AttrName],
                    fds: Iterable[FD]) -> bool:
    """The binary shortcut: lossless iff the shared attributes determine a side.

    Provided separately so tests can cross-validate it against the chase.
    """
    from repro.relational.fd import closure

    left_set, right_set = frozenset(left), frozenset(right)
    shared = left_set & right_set
    shared_closure = closure(shared, fds)
    return left_set <= shared_closure or right_set <= shared_closure
