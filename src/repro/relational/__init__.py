"""Relational substrate: relations, algebra, FDs, chase, normalization.

The paper's extensional layer (section 4) speaks "the old terminology":
relations over entity types, tuples, projections ``pi`` and the natural
join ``*``.  This package implements that substrate from scratch, plus the
classical attribute-level dependency theory (Armstrong [1]) the paper lifts
to entity types, and the normalization machinery used as a baseline.
"""

from repro.relational.relation import Tuple, Relation
from repro.relational.algebra import (
    project,
    project_naive,
    select,
    rename,
    natural_join,
    natural_join_naive,
    join_all,
    join_all_naive,
    union,
    difference,
    intersection,
    cartesian_product,
    division,
    semijoin,
    is_lossless_decomposition,
    is_lossless_decomposition_naive,
)
from repro.relational.fd import (
    FD,
    holds_in,
    holds_in_naive,
    violating_pairs,
    violating_pairs_naive,
    closure,
    implies,
    equivalent,
    minimal_cover,
    candidate_keys,
    is_superkey,
    all_implied_fds,
)
from repro.relational.chase import Tableau, is_lossless, binary_lossless
from repro.relational.jd import (
    JoinDependency,
    mvd_as_binary_jd,
    spurious_tuples,
    spurious_tuples_naive,
)
from repro.relational.mvd import (
    MVD,
    decomposition_mvd,
    fd_implies_mvd,
    swap_closure,
    swap_closure_naive,
    violating_swaps,
    violating_swaps_naive,
)
from repro.relational.armstrong_relation import (
    two_tuple_witness,
    witness_respects,
    armstrong_relation,
    satisfied_fds,
    is_armstrong_for,
)
from repro.relational.normalization import (
    bcnf_violations,
    is_bcnf,
    bcnf_decompose,
    third_nf_synthesis,
    preserves_dependencies,
    decomposition_report,
)

__all__ = [
    "Tuple",
    "Relation",
    "project",
    "project_naive",
    "select",
    "rename",
    "natural_join",
    "natural_join_naive",
    "join_all",
    "join_all_naive",
    "union",
    "difference",
    "intersection",
    "cartesian_product",
    "division",
    "semijoin",
    "is_lossless_decomposition",
    "is_lossless_decomposition_naive",
    "FD",
    "holds_in",
    "holds_in_naive",
    "violating_pairs",
    "violating_pairs_naive",
    "closure",
    "implies",
    "equivalent",
    "minimal_cover",
    "candidate_keys",
    "is_superkey",
    "all_implied_fds",
    "Tableau",
    "JoinDependency",
    "mvd_as_binary_jd",
    "spurious_tuples",
    "spurious_tuples_naive",
    "MVD",
    "decomposition_mvd",
    "fd_implies_mvd",
    "swap_closure",
    "swap_closure_naive",
    "violating_swaps",
    "violating_swaps_naive",
    "is_lossless",
    "binary_lossless",
    "two_tuple_witness",
    "witness_respects",
    "armstrong_relation",
    "satisfied_fds",
    "is_armstrong_for",
    "bcnf_violations",
    "is_bcnf",
    "bcnf_decompose",
    "third_nf_synthesis",
    "preserves_dependencies",
    "decomposition_report",
]
