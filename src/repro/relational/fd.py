"""Attribute-level functional dependencies and the classical Armstrong system.

The paper lifts functional dependencies from attribute sets to entity types
(section 5).  To validate that lift — and to serve as the baseline of
ablation experiment A3 — this module implements the textbook machinery the
paper cites from Armstrong [1]: FDs ``X -> Y`` over attribute sets, the
attribute-set closure algorithm, implication, minimal covers, and candidate
keys.
"""

from __future__ import annotations

from collections.abc import Iterable
from itertools import combinations

from repro.errors import DependencyError
from repro.kernel import CheckSet, FDKernel, InstanceKernel
from repro.relational.relation import AttrName, Relation, Tuple


class FD:
    """A functional dependency ``lhs -> rhs`` over attribute names."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Iterable[AttrName], rhs: Iterable[AttrName]):
        self.lhs: frozenset[AttrName] = frozenset(lhs)
        self.rhs: frozenset[AttrName] = frozenset(rhs)
        if not self.rhs:
            raise DependencyError("an FD needs a nonempty right-hand side")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FD):
            return NotImplemented
        return self.lhs == other.lhs and self.rhs == other.rhs

    def __hash__(self) -> int:
        return hash((self.lhs, self.rhs))

    def __repr__(self) -> str:
        left = ",".join(sorted(self.lhs)) or "{}"
        right = ",".join(sorted(self.rhs))
        return f"{left} -> {right}"

    def is_trivial(self) -> bool:
        """Armstrong axiom 1: an FD with ``rhs subseteq lhs`` always holds."""
        return self.rhs <= self.lhs

    def decompose(self) -> frozenset["FD"]:
        """Split into single-attribute right-hand sides."""
        return frozenset(FD(self.lhs, {a}) for a in self.rhs)


def holds_in(fd: FD, relation: Relation) -> bool:
    """Whether ``relation`` satisfies ``fd`` (the semantic definition).

    Runs on the interned instance (symbol-id rows grouped by the cached
    lhs partition) instead of projecting dict-tuples per row; the
    original sweep is retained as :func:`holds_in_naive`.  Repeated
    checks against one relation — dependency sweeps, Armstrong-relation
    search — reuse the interning via the instance memo.
    """
    if not (fd.lhs | fd.rhs) <= relation.schema:
        raise DependencyError(
            f"FD {fd!r} mentions attributes outside schema {sorted(relation.schema)}"
        )
    return InstanceKernel.of(relation).fd_holds(fd.lhs, fd.rhs)


def holds_in_naive(fd: FD, relation: Relation) -> bool:
    """Reference oracle for :func:`holds_in` (witness-dict sweep)."""
    if not (fd.lhs | fd.rhs) <= relation.schema:
        raise DependencyError(
            f"FD {fd!r} mentions attributes outside schema {sorted(relation.schema)}"
        )
    witness: dict = {}
    for t in relation.tuples:
        key = t.project(fd.lhs)
        value = t.project(fd.rhs)
        if key in witness and witness[key] != value:
            return False
        witness[key] = value
    return True


def violating_pairs(fd: FD, relation: Relation) -> list[tuple]:
    """All tuple pairs witnessing a violation of ``fd`` in ``relation``.

    Runs on the batch engine: one walk over the cached lhs partition,
    bucketing each group by its rhs projection and emitting only the
    cross-bucket pairs — output-sensitive instead of the all-pairs scan
    retained as :func:`violating_pairs_naive`.  Pair and list order match
    the oracle (both sort by tuple repr).
    """
    if not (fd.lhs | fd.rhs) <= relation.schema:
        raise DependencyError(
            f"FD {fd!r} mentions attributes outside schema {sorted(relation.schema)}"
        )
    inst = InstanceKernel.of(relation)
    verdict = CheckSet(inst).add_fd(0, fd.lhs, fd.rhs).run(witnesses=True)[0]
    return decode_witness_pairs(inst, verdict.witness)


def decode_witness_pairs(inst: InstanceKernel, witness) -> list[tuple]:
    """Decode kernel ``(row, row)`` witnesses into repr-ordered pairs.

    Matches the naive producers' ordering: each pair is repr-sorted and
    the list is sorted lexicographically by the pair's reprs.
    """
    pairs = []
    for ra, rb in witness:
        ta = Tuple._trusted(inst.decode_row(ra))
        tb = Tuple._trusted(inst.decode_row(rb))
        pairs.append((ta, tb) if repr(ta) <= repr(tb) else (tb, ta))
    return sorted(pairs, key=lambda p: (repr(p[0]), repr(p[1])))


def violating_pairs_naive(fd: FD, relation: Relation) -> list[tuple]:
    """Reference oracle for :func:`violating_pairs` (all-pairs scan)."""
    tuples = sorted(relation.tuples, key=repr)
    out = []
    for i, t1 in enumerate(tuples):
        for t2 in tuples[i + 1:]:
            if t1.project(fd.lhs) == t2.project(fd.lhs) and \
                    t1.project(fd.rhs) != t2.project(fd.rhs):
                out.append((t1, t2))
    return out


# Below this many FDs the C-speed frozenset sweep beats the kernel's
# per-call attribute interning; above it the Beeri–Bernstein counters win
# (the sweep is quadratic on derivation chains).  Callers issuing many
# queries against one FD set should hold an :class:`FDKernel` instead,
# which pays the encoding once.
_KERNEL_MIN_FDS = 24


def closure(attrs: Iterable[AttrName], fds: Iterable[FD]) -> frozenset[AttrName]:
    """The attribute-set closure ``attrs+`` under ``fds``.

    Large dependency sets route through the bitset kernel's
    Beeri–Bernstein counter algorithm (linear in the dependency-set
    size); small ones use the frozenset sweep directly, which is faster
    below the interning overhead.  :func:`closure_naive` is the retained
    reference oracle.
    """
    fds = fds if isinstance(fds, (list, tuple)) else list(fds)
    if len(fds) >= _KERNEL_MIN_FDS:
        return FDKernel(fds).closure(attrs)
    result = set(attrs)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if fd.lhs <= result and not fd.rhs <= result:
                result |= fd.rhs
                changed = True
    return frozenset(result)


def closure_naive(attrs: Iterable[AttrName], fds: Iterable[FD]) -> frozenset[AttrName]:
    """Reference oracle for :func:`closure` (quadratic fixpoint sweep)."""
    result = set(attrs)
    fds = list(fds)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if fd.lhs <= result and not fd.rhs <= result:
                result |= fd.rhs
                changed = True
    return frozenset(result)


def implies(fds: Iterable[FD], candidate: FD) -> bool:
    """Whether ``fds |= candidate`` (via the closure test)."""
    return candidate.rhs <= closure(candidate.lhs, fds)


def equivalent(first: Iterable[FD], second: Iterable[FD]) -> bool:
    """Whether two FD sets imply each other."""
    first, second = list(first), list(second)
    return all(implies(second, fd) for fd in first) and \
        all(implies(first, fd) for fd in second)


def minimal_cover(fds: Iterable[FD]) -> frozenset[FD]:
    """A canonical cover: singleton RHS, no redundant FDs, reduced LHS."""
    work: set[FD] = set()
    for fd in fds:
        work |= fd.decompose()
    # Reduce left-hand sides.  The dependency set is fixed throughout the
    # reduction, so large inputs compile one kernel for every query;
    # small ones stay on the direct sweep (cheaper than interning).
    if len(work) < _KERNEL_MIN_FDS:
        work_list = sorted(work, key=repr)
        query = lambda attrs: closure_naive(attrs, work_list)  # noqa: E731
    else:
        query = FDKernel(work).closure
    reduced: set[FD] = set()
    for fd in sorted(work, key=repr):
        lhs = set(fd.lhs)
        for attr in sorted(fd.lhs):
            if len(lhs) > 1 and fd.rhs <= query(lhs - {attr}):
                lhs.discard(attr)
        reduced.add(FD(lhs, fd.rhs))
    # Remove redundant FDs.
    final = set(reduced)
    for fd in sorted(reduced, key=repr):
        if fd in final and implies(final - {fd}, fd):
            final.discard(fd)
    return frozenset(final)


def candidate_keys(schema: Iterable[AttrName], fds: Iterable[FD]) -> frozenset[frozenset[AttrName]]:
    """All minimal attribute sets whose closure is the full schema."""
    schema_set = frozenset(schema)
    fds = list(fds)
    if len(fds) < _KERNEL_MIN_FDS:
        keys: list[frozenset[AttrName]] = []
        for size in range(len(schema_set) + 1):
            for combo in combinations(sorted(schema_set), size):
                candidate = frozenset(combo)
                if any(key <= candidate for key in keys):
                    continue
                if closure_naive(candidate, fds) == schema_set:
                    keys.append(candidate)
        return frozenset(keys)
    kern = FDKernel(fds, attrs=sorted(schema_set))
    target = kern.universe.encode(schema_set)
    found: list[frozenset[AttrName]] = []
    key_masks: list[int] = []
    for size in range(len(schema_set) + 1):
        for combo in combinations(sorted(schema_set), size):
            mask = kern.universe.encode(combo)
            if any(key & ~mask == 0 for key in key_masks):
                continue
            if kern.closure_mask_of(mask) == target:
                found.append(frozenset(combo))
                key_masks.append(mask)
    return frozenset(found)


def is_superkey(attrs: Iterable[AttrName], schema: Iterable[AttrName],
                fds: Iterable[FD]) -> bool:
    """Whether ``attrs`` functionally determines the whole schema."""
    return frozenset(schema) <= closure(attrs, fds)


def all_implied_fds(schema: Iterable[AttrName], fds: Iterable[FD]) -> frozenset[FD]:
    """Every implied single-attribute-RHS FD over ``schema`` (exponential).

    Useful only for small schemas in tests; the closure test should be
    preferred for single questions.
    """
    schema_set = frozenset(schema)
    kern = FDKernel(fds, attrs=sorted(schema_set))
    out: set[FD] = set()
    subsets: list[frozenset[AttrName]] = [frozenset()]
    for attr in sorted(schema_set):
        subsets += [s | {attr} for s in subsets]
    for lhs in subsets:
        for attr in kern.closure(lhs):
            out.add(FD(lhs, {attr}))
    return frozenset(out)
