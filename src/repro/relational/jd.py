"""Join dependencies (the third constraint family of section 6).

A join dependency ``JD[R1, ..., Rn]`` holds in ``R`` when joining the
projections onto the component schemas reconstructs ``R`` exactly.  MVDs
are the binary case (Fagin); the chase of
:mod:`repro.relational.chase` decides the schema-level question for the
FD-implied fragment.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import DependencyError
from repro.kernel import CheckSet, InstanceKernel
from repro.relational.algebra import join_all_naive, project_naive
from repro.relational.mvd import MVD
from repro.relational.relation import AttrName, Relation, Tuple


class JoinDependency:
    """``JD[components]`` over a universe of attributes."""

    __slots__ = ("components", "universe")

    def __init__(self, components: Iterable[Iterable[AttrName]],
                 universe: Iterable[AttrName]):
        self.components: tuple[frozenset[AttrName], ...] = tuple(
            sorted({frozenset(c) for c in components}, key=sorted)
        )
        self.universe = frozenset(universe)
        if not self.components:
            raise DependencyError("a join dependency needs at least one component")
        covered = frozenset().union(*self.components)
        if covered != self.universe:
            raise DependencyError(
                f"components cover {sorted(covered)}, not the universe "
                f"{sorted(self.universe)}"
            )

    def is_trivial(self) -> bool:
        """Trivial when some component is the whole universe."""
        return any(c == self.universe for c in self.components)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JoinDependency):
            return NotImplemented
        return (self.components, self.universe) == (other.components, other.universe)

    def __hash__(self) -> int:
        return hash((JoinDependency, self.components, self.universe))

    def __repr__(self) -> str:
        inner = ", ".join("{" + ",".join(sorted(c)) + "}" for c in self.components)
        return f"JD[{inner}]"


def holds_in(jd: JoinDependency, relation: Relation) -> bool:
    """Whether joining the projections reconstructs the relation.

    The projections and joins never leave the relation's interned symbol
    space (see :func:`repro.relational.algebra.is_lossless_decomposition`);
    the object-level pipeline is retained as :func:`holds_in_naive`.
    """
    if relation.schema != jd.universe:
        raise DependencyError(
            f"JD universe {sorted(jd.universe)} does not match the relation "
            f"schema {sorted(relation.schema)}"
        )
    return InstanceKernel.of(relation).jd_holds(jd.components)


def holds_in_naive(jd: JoinDependency, relation: Relation) -> bool:
    """Reference oracle for :func:`holds_in`, built from the naive
    projection and join only."""
    if relation.schema != jd.universe:
        raise DependencyError(
            f"JD universe {sorted(jd.universe)} does not match the relation "
            f"schema {sorted(relation.schema)}"
        )
    joined = join_all_naive(project_naive(relation, c) for c in jd.components)
    return joined == relation


def spurious_tuples(jd: JoinDependency, relation: Relation) -> Relation:
    """The tuples the join manufactures beyond ``relation`` (the witness).

    The reconstruction can only ever *add* tuples, so a nonempty result is
    exactly a violation.  The whole pipeline — cached id-level
    projections, integer hash joins, the final difference — runs in the
    relation's interned symbol space and only the spurious rows are ever
    decoded; the object-level pipeline is retained as
    :func:`spurious_tuples_naive`.
    """
    if relation.schema != jd.universe:
        raise DependencyError("JD universe does not match the relation schema")
    inst = InstanceKernel.of(relation)
    verdict = CheckSet(inst).add_jd(0, jd.components).run(witnesses=True)[0]
    return Relation._trusted(
        jd.universe,
        (Tuple._trusted(inst.decode_row(row)) for row in verdict.witness),
    )


def spurious_tuples_naive(jd: JoinDependency, relation: Relation) -> Relation:
    """Reference oracle for :func:`spurious_tuples`, built from the naive
    projection and join only."""
    if relation.schema != jd.universe:
        raise DependencyError("JD universe does not match the relation schema")
    joined = join_all_naive(project_naive(relation, c) for c in jd.components)
    return Relation(jd.universe, joined.tuples - relation.tuples)


def mvd_as_binary_jd(mvd: MVD) -> JoinDependency:
    """Fagin's correspondence: ``X ->> Y`` is ``JD[XY, X(U-Y)]``.

    Tests confirm the two verdicts coincide on random instances, closing
    the section-6 triangle FD < MVD < JD (< domain constraint).
    """
    return JoinDependency(
        [mvd.lhs | mvd.rhs, mvd.lhs | mvd.complement_attrs],
        mvd.universe,
    )
