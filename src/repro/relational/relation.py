"""Relations and tuples — the extensional substrate.

Section 4 of the paper defines the domain of an entity type as the product
of its attribute domains and its instance set ``R_e`` as a member of the
powerset of that product; "in the old terminology: R_e is a relation over e
and t_e is a tuple in R_e".  This module supplies that old terminology as a
first-class, immutable value model: a :class:`Tuple` is a frozen mapping
from attribute names to atomic values and a :class:`Relation` is a frozen
set of equal-schema tuples.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.errors import RelationError

AttrName = str
Value = Hashable


class Tuple:
    """An immutable attribute-to-value mapping.

    Equality and hashing are value-based, so tuples behave as members of
    sets — exactly the semantics the paper needs for ``R_e``.

    Examples
    --------
    >>> t = Tuple({"name": "ann", "age": 31})
    >>> t["age"]
    31
    >>> t.project({"name"})
    Tuple({'name': 'ann'})
    """

    __slots__ = ("_items", "_hash", "_proj")

    def __init__(self, items: Mapping[AttrName, Value]):
        for attr, value in items.items():
            if not isinstance(attr, str):
                raise RelationError(f"attribute names must be strings, got {attr!r}")
            if not isinstance(value, Hashable):
                raise RelationError(f"value for {attr!r} is unhashable: {value!r}")
        self._items: tuple[tuple[AttrName, Value], ...] = tuple(sorted(items.items()))
        self._hash = hash(self._items)
        self._proj: dict | None = None

    @property
    def schema(self) -> frozenset[AttrName]:
        """The attribute names this tuple is defined on."""
        return frozenset(attr for attr, _ in self._items)

    def __getitem__(self, attr: AttrName) -> Value:
        for name, value in self._items:
            if name == attr:
                return value
        raise KeyError(attr)

    def get(self, attr: AttrName, default: Value | None = None) -> Value | None:
        try:
            return self[attr]
        except KeyError:
            return default

    def as_dict(self) -> dict[AttrName, Value]:
        """A fresh mutable dict copy of the tuple."""
        return dict(self._items)

    def project(self, attrs: Iterable[AttrName]) -> "Tuple":
        """The tuple restricted to ``attrs`` (the projection pi of section 4).

        Items are already sorted and validated, and filtering preserves
        both, so the projection goes through the trusted constructor.
        Projections are the store's per-commit hot path (probe keys,
        conflict footprints, propagation) and the same tuple is asked
        for the same few attribute sets again and again, so results are
        memoised on the tuple (lazily — only tuples that are projected
        allocate the cache, and the key space is bounded by the attr
        sets the schema's checks use).
        """
        wanted = attrs if isinstance(attrs, frozenset) else frozenset(attrs)
        cache = self._proj
        if cache is None:
            cache = {}
            self._proj = cache
        else:
            hit = cache.get(wanted)
            if hit is not None:
                return hit
        items = tuple(item for item in self._items if item[0] in wanted)
        if len(items) != len(wanted):
            missing = wanted - self.schema
            raise RelationError(
                f"cannot project on absent attributes: {sorted(missing)}")
        out = Tuple._trusted(items)
        cache[wanted] = out
        return out

    def merge(self, other: "Tuple") -> "Tuple":
        """Combine two tuples that agree on shared attributes.

        Raises :class:`RelationError` on a join conflict.
        """
        mine = self.as_dict()
        for attr, value in other._items:
            if attr in mine and mine[attr] != value:
                raise RelationError(f"join conflict on {attr!r}: {mine[attr]!r} vs {value!r}")
            mine[attr] = value
        return Tuple(mine)

    def joinable(self, other: "Tuple") -> bool:
        """Whether the two tuples agree on every shared attribute."""
        shared = self.schema & other.schema
        return all(self[a] == other[a] for a in shared)

    def rename(self, renaming: Mapping[AttrName, AttrName]) -> "Tuple":
        """A copy with attributes renamed by ``renaming`` (others kept)."""
        return Tuple({renaming.get(a, a): v for a, v in self._items})

    @classmethod
    def _trusted(cls, items: tuple) -> "Tuple":
        """Wrap pre-sorted, pre-validated ``(attr, value)`` items.

        The decode path of :mod:`repro.kernel.instance` emits items
        already in sorted order with known-hashable values, so the
        constructor's re-sort and validation would be pure overhead.
        The randomized kernel-equivalence suite guards this shortcut.
        """
        t = object.__new__(cls)
        t._items = items
        t._hash = hash(items)
        t._proj = None
        return t

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        inner = ", ".join(f"{a!r}: {v!r}" for a, v in self._items)
        return "Tuple({" + inner + "})"


class Relation:
    """A finite set of tuples sharing a schema.

    Parameters
    ----------
    schema:
        The attribute names; may be empty (the two zero-ary relations are
        the classical TRUE ``{()}`` and FALSE ``{}``).
    tuples:
        Tuples (or plain mappings) whose schema must equal ``schema``.
    """

    __slots__ = ("_schema", "_tuples")

    def __init__(self, schema: Iterable[AttrName], tuples: Iterable = ()):
        self._schema: frozenset[AttrName] = frozenset(schema)
        normalised: set[Tuple] = set()
        for t in tuples:
            if not isinstance(t, Tuple):
                t = Tuple(t)
            if t.schema != self._schema:
                raise RelationError(
                    f"tuple schema {sorted(t.schema)} does not match "
                    f"relation schema {sorted(self._schema)}"
                )
            normalised.add(t)
        self._tuples: frozenset[Tuple] = frozenset(normalised)

    @property
    def schema(self) -> frozenset[AttrName]:
        return self._schema

    @property
    def tuples(self) -> frozenset[Tuple]:
        return self._tuples

    @classmethod
    def _trusted(cls, schema: Iterable[AttrName], tuples: Iterable) -> "Relation":
        """Wrap tuples already known to share ``schema``.

        Kernel decode produces equal-schema :class:`Tuple` values by
        construction, so the per-tuple schema validation of the public
        constructor is skipped — the same trusted-construction policy as
        ``FiniteSpace._trusted`` in the topology layer.
        """
        r = object.__new__(cls)
        r._schema = frozenset(schema)
        r._tuples = frozenset(tuples)
        return r

    @classmethod
    def from_rows(cls, schema: Iterable[AttrName], rows: Iterable[Iterable[Value]]) -> "Relation":
        """Build a relation from positional rows, in the order ``schema`` lists.

        ``schema`` must therefore be a sequence (its iteration order gives
        each row's column order).
        """
        attrs = list(schema)
        if len(set(attrs)) != len(attrs):
            raise RelationError(f"duplicate attributes in schema: {attrs}")
        tuples = []
        for row in rows:
            row = list(row)
            if len(row) != len(attrs):
                raise RelationError(f"row {row!r} has arity {len(row)}, schema needs {len(attrs)}")
            tuples.append(Tuple(dict(zip(attrs, row))))
        return cls(attrs, tuples)

    def __contains__(self, t: object) -> bool:
        if isinstance(t, Mapping):
            t = Tuple(t)
        return t in self._tuples

    def __iter__(self):
        return iter(sorted(self._tuples, key=repr))

    def __len__(self) -> int:
        return len(self._tuples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema == other._schema and self._tuples == other._tuples

    def __hash__(self) -> int:
        return hash((self._schema, self._tuples))

    def __repr__(self) -> str:
        return f"Relation({sorted(self._schema)}, {len(self._tuples)} tuples)"

    def is_subset_of(self, other: "Relation") -> bool:
        """Set containment over identical schemas.

        This is the shape of the paper's Containment Condition
        ``pi_e^s(R_s) subseteq R_e``.
        """
        if self._schema != other._schema:
            raise RelationError("containment requires identical schemas")
        return self._tuples <= other._tuples

    def with_tuples(self, extra: Iterable) -> "Relation":
        """A new relation with ``extra`` tuples added."""
        return Relation(self._schema, list(self._tuples) + list(extra))

    def without_tuples(self, gone: Iterable) -> "Relation":
        """A new relation with the given tuples removed."""
        gone_set = {t if isinstance(t, Tuple) else Tuple(t) for t in gone}
        return Relation(self._schema, self._tuples - gone_set)
