"""A blocking socket client for the store's wire protocol.

:class:`StoreClient` mirrors the embedded :class:`~repro.store.Session`
API over a TCP connection: ``begin``/``stage``/``commit`` with the same
exceptions — a rejected commit raises :class:`CommitRejected` with the
witness findings the server's axiom gate produced, a lost optimistic
race raises :class:`TransactionConflict` with the overlapping keys (in
their JSON-flattened wire form).  The client is deliberately simple and
synchronous: tests, benchmarks, and the CLI drive it; concurrency comes
from threads each holding their own client (see
:class:`~repro.server.pool.ClientPool`).
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Iterable

from repro.errors import ProtocolError
from repro.io import FrameDecoder, encode_frame
from repro.server.protocol import raise_for_error


class RemoteTxn:
    """A transaction handle living on the server; :meth:`stage` buffers
    WAL-form op records there, :meth:`commit` consumes the handle."""

    __slots__ = ("client", "handle", "base")

    def __init__(self, client: "StoreClient", handle: str, base: str):
        self.client = client
        self.handle = handle
        self.base = base

    def stage(self, ops: Iterable[dict]) -> int:
        return self.client.stage(self.handle, ops)

    def insert(self, relation: str, row: dict,
               propagate: bool = True) -> int:
        return self.stage([{"op": "insert", "relation": relation,
                            "row": row, "propagate": propagate}])

    def delete(self, relation: str, row: dict,
               propagate: bool = True) -> int:
        return self.stage([{"op": "delete", "relation": relation,
                            "row": row, "propagate": propagate}])

    def commit(self) -> dict:
        return self.client.commit(self.handle)

    def __repr__(self) -> str:
        return f"RemoteTxn({self.handle}, base={self.base})"


class StoreClient:
    """One connection to a :class:`~repro.server.StoreServer`.

    Sends the ``hello`` handshake on construction (set ``hello=False``
    to skip, e.g. for protocol tests that speak raw frames).  Methods
    raise the bridged store exceptions on error responses; transport
    problems raise :class:`ProtocolError`.
    """

    def __init__(self, host: str, port: int, branch: str = "main",
                 timeout: float = 30.0, hello: bool = True):
        self.timeout = timeout
        self.sock = socket.create_connection((host, port),
                                             timeout=timeout)
        self._decoder = FrameDecoder()
        self._ids = itertools.count(1)
        self._inbox: list[dict] = []
        self.branch = branch
        self.server_info: dict | None = None
        if hello:
            self.server_info = self.hello(branch)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def send_raw(self, data: bytes) -> None:
        """Ship raw bytes (fuzzing hook — bypasses frame encoding)."""
        self.sock.sendall(data)

    def send_message(self, message: dict) -> None:
        self.sock.sendall(encode_frame(message))

    def recv_message(self) -> dict:
        """The next complete frame from the server."""
        while not self._inbox:
            data = self.sock.recv(65536)
            if not data:
                raise ProtocolError(
                    "server closed the connection" +
                    (" mid-frame" if self._decoder.pending_bytes else ""))
            self._inbox.extend(self._decoder.feed(data))
        return self._inbox.pop(0)

    def request(self, op: str, **fields: Any) -> dict:
        """One round trip: send ``op``, await its response (matched by
        id), raise the bridged exception on an error response."""
        rid = next(self._ids)
        self.send_message({"id": rid, "op": op, **fields})
        response = self.recv_message()
        if not response.get("ok") and response.get("id") is None:
            # server-initiated error (overloaded, fatal bad frame)
            raise_for_error(response.get("error", {}))
        if response.get("id") != rid:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {rid!r}")
        if not response.get("ok"):
            raise_for_error(response.get("error", {}))
        return response

    @property
    def role(self) -> str | None:
        """The server's self-reported role from the ``hello`` handshake
        (``"primary"`` / ``"replica"``; ``None`` without a hello)."""
        return (self.server_info or {}).get("role")

    @property
    def server_epoch(self) -> int:
        """The promotion epoch the server reported at ``hello`` (0
        without a hello — epoch 0 is also the pre-failover epoch)."""
        return int((self.server_info or {}).get("epoch", 0))

    def is_stale(self) -> bool:
        """True when the connection is unusable without a round trip.

        A non-blocking one-byte ``MSG_PEEK``: a clean EOF or an error
        means the peer is gone; *readable data* outside a request also
        means stale (responses must only ever arrive inside
        :meth:`request`, so stray bytes are a desynchronised stream);
        ``BlockingIOError`` — nothing to read — is the healthy case.
        The pool consults this before handing out an idle client.
        """
        if self.sock.fileno() < 0:
            return True
        try:
            self.sock.setblocking(False)
            try:
                self.sock.recv(1, socket.MSG_PEEK)
            finally:
                self.sock.settimeout(self.timeout)
            return True  # EOF (b"") or unsolicited bytes: both stale
        except (BlockingIOError, InterruptedError):
            return False
        except OSError:
            return True

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "StoreClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the session mirror
    # ------------------------------------------------------------------
    def hello(self, branch: str = "main") -> dict:
        info = self.request("hello", branch=branch)
        self.branch = branch
        return info

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def status(self) -> dict:
        response = self.request("status")
        return {k: v for k, v in response.items()
                if k not in ("id", "ok")}

    def metrics(self, traces: int = 0) -> dict:
        """The server's observability snapshot: ``metrics``
        (counters/gauges/histogram summaries), ``slow_commits``, and —
        with ``traces=N`` — the N slowest recent ``traces``."""
        fields: dict[str, Any] = {}
        if traces:
            fields["traces"] = traces
        response = self.request("metrics", **fields)
        return {k: v for k, v in response.items()
                if k not in ("id", "ok")}

    def begin(self) -> RemoteTxn:
        response = self.request("begin")
        return RemoteTxn(self, response["txn"], response["base"])

    def stage(self, txn: RemoteTxn | str, ops: Iterable[dict]) -> int:
        handle = txn.handle if isinstance(txn, RemoteTxn) else txn
        response = self.request("stage", txn=handle, ops=list(ops))
        return response["staged"]

    def commit(self, txn: RemoteTxn | str) -> dict:
        handle = txn.handle if isinstance(txn, RemoteTxn) else txn
        response = self.request("commit", txn=handle)
        return {"version": response["version"],
                "parent": response["parent"],
                "branch": response["branch"]}

    def read(self, relation: str, at: str | None = None,
             branch: str | None = None) -> list[dict]:
        fields: dict[str, Any] = {"relation": relation}
        if at is not None:
            fields["at"] = at
        if branch is not None:
            fields["branch"] = branch
        return self.request("read", **fields)["rows"]

    def read_at(self, relation: str, at: str | None = None,
                branch: str | None = None) -> tuple[list[dict], str]:
        """Rows plus the version id they were served at."""
        fields: dict[str, Any] = {"relation": relation}
        if at is not None:
            fields["at"] = at
        if branch is not None:
            fields["branch"] = branch
        response = self.request("read", **fields)
        return response["rows"], response["version"]

    def create_branch(self, name: str, at: str | None = None,
                      from_branch: str | None = None) -> dict:
        fields: dict[str, Any] = {"name": name}
        if at is not None:
            fields["at"] = at
        if from_branch is not None:
            fields["from_branch"] = from_branch
        response = self.request("branch", **fields)
        return {"branch": response["branch"], "at": response["at"]}

    def run(self, ops: Iterable[dict]) -> dict:
        """Convenience: begin, stage ``ops``, commit — one remote
        transaction."""
        txn = self.begin()
        txn.stage(ops)
        return txn.commit()
