"""A bounded pool of :class:`~repro.server.client.StoreClient`\\ s.

Threads borrow a connected client with :meth:`ClientPool.acquire` (a
context manager); the pool lazily dials up to ``size`` connections and
blocks further borrowers until one is returned — the client-side mirror
of the server's bounded connection count.  A client whose borrow ended
in a transport error is discarded and replaced on the next acquire, so
one torn connection never poisons the pool.
"""

from __future__ import annotations

import queue
import threading
from contextlib import contextmanager

from repro.errors import ProtocolError, StoreError
from repro.obs.metrics import MetricsRegistry
from repro.server.client import StoreClient


class ClientPool:
    def __init__(self, host: str, port: int, size: int = 4,
                 branch: str = "main", timeout: float = 30.0,
                 metrics: MetricsRegistry | None = None):
        if size < 1:
            raise StoreError("pool size must be at least 1")
        self.host = host
        self.port = port
        self.size = size
        self.branch = branch
        self.timeout = timeout
        self._slots: queue.Queue = queue.Queue()
        for _ in range(size):
            self._slots.put(None)  # None = permission to dial
        self._lock = threading.Lock()
        self._open: list[StoreClient] = []
        self._closed = False
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._c_evicted = self.metrics.counter("pool.evicted")
        self._c_dials = self.metrics.counter("pool.dials")
        self._c_discards = self.metrics.counter("pool.discards")

    @property
    def evicted(self) -> int:
        """Stale idle connections quietly replaced so far."""
        return self._c_evicted.value

    def _dial(self) -> StoreClient:
        client = StoreClient(self.host, self.port, branch=self.branch,
                             timeout=self.timeout)
        self._c_dials.inc()
        with self._lock:
            self._open.append(client)
        return client

    @contextmanager
    def acquire(self):
        """Borrow a client; returns it to the pool on clean exit,
        discards it (freeing the slot for a fresh dial) when the block
        raised a transport error.

        A pooled client is validated before it is handed out
        (:meth:`StoreClient.is_stale` — one non-blocking peek, no
        round trip): a connection whose socket died while idle (server
        restart, idle-timeout close, network partition) is silently
        evicted and replaced by a fresh dial instead of surfacing a
        stale-socket error to the borrower."""
        if self._closed:
            raise StoreError("pool is closed")
        slot = self._slots.get()
        if slot is not None and slot.is_stale():
            self._discard(slot)
            self._c_evicted.inc()
            slot = None
        if slot is None:
            try:
                slot = self._dial()
            except BaseException:
                # A failed dial must not consume the slot, or a down
                # server would permanently shrink the pool and
                # eventually deadlock every borrower.
                self._slots.put(None)
                raise
        client = slot
        try:
            yield client
        except (ProtocolError, OSError):
            self._discard(client)
            self._slots.put(None)
            raise
        else:
            self._slots.put(client)

    def _discard(self, client: StoreClient) -> None:
        self._c_discards.inc()
        with self._lock:
            if client in self._open:
                self._open.remove(client)
        client.close()

    def close(self) -> None:
        self._closed = True
        with self._lock:
            clients, self._open = self._open, []
        for client in clients:
            client.close()

    def __enter__(self) -> "ClientPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
