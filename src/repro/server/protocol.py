"""The store's wire protocol: message shapes over length-prefixed frames.

The byte layer lives in :mod:`repro.io` (``encode_frame`` /
``FrameDecoder``); this module fixes what the frames *say*.  Every
message is one JSON object.  Requests carry a client-chosen ``id``
(echoed verbatim in the response, so a client may pipeline) and an
``op``:

``hello``
    Bind the connection to a branch (``branch``, default ``"main"``)
    and learn the store's shape.  Response: ``protocol``, ``role``
    (``"primary"`` or ``"replica"``), ``epoch`` (the promotion epoch
    the served graph is at — failover clients refuse primaries whose
    epoch regressed below one they have seen), ``branches``,
    ``relations``, ``validation``.
``ping``
    Liveness probe.  Response: ``{"pong": true}``.
``begin``
    Open a transaction pinned at the session branch's head.  Response:
    ``txn`` (a server-assigned handle) and ``base`` (the head's vid).
``stage``
    Buffer operations into an open transaction: ``txn`` plus ``ops``,
    a list of WAL-form op records (``{"op": "insert", "relation": ...,
    "row": {...}, "propagate": ...}`` and friends).  Rows are validated
    on arrival; a malformed row fails the *stage*, with the transaction
    left as it was before the call.  Response: ``staged`` (total ops
    buffered).
``commit``
    Validate and install an open transaction (``txn``); the handle is
    consumed either way.  Response: ``version``, ``parent``, ``branch``.
    Rejections answer with code ``commit-rejected`` carrying the witness
    ``findings``; optimistic-concurrency losses (after the server-side
    retry loop) answer ``conflict`` with the overlapping ``keys``.
``read``
    One relation's instance set at a pinned version: ``relation``,
    optional ``at`` (vid) / ``branch``.  Response: ``rows`` (list of
    attribute->scalar objects), ``version`` (the vid served).
``branch``
    Create a branch: ``name``, optional ``at`` / ``from_branch``.
    Replica connections refuse with ``read-only``.  Response:
    ``branch``, ``at``.
``status``
    Server-side statistics.  Every status response — primary or
    replica — shares one documented core (see *The status schema*
    below); a primary adds its connection/commit-queue gauges, a
    replica its staleness/lag report.  A server wired into a cluster
    (``StoreServer(cluster=...)``) additionally gossips its health
    view: a ``cluster`` object whose ``suspicion`` table maps peer ids
    to ``{state, misses, probes, role, epoch, behind_bytes}``, with
    ``state`` one of :data:`SUSPICION_STATES` — so any client can ask
    one node what it believes about the others.
``metrics``
    The server's observability snapshot
    (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`): ``metrics``
    (``{"counters", "gauges", "histograms"}`` — histograms summarised
    as count/sum/min/max/p50/p95/p99), ``slow_commits`` (the engine's
    threshold-gated slow-commit log, newest last), and — when the
    request carries ``traces: N`` — ``traces``, the N slowest recent
    traces from the server's ring buffer.

The status schema
-----------------
``status`` responses historically invented their key shapes per role;
the schema is now fixed (additively — every pre-existing key kept its
name and meaning, consumers like ``election_rank`` still work):

* Core, always present: ``role`` (``"primary"``/``"replica"``),
  ``epoch`` (int, the promotion epoch), ``ready`` (bool — a primary is
  always ready; a replica is ready once bootstrapped from its WAL),
  and ``counters`` (a flat ``{name: number}`` map of the server's
  registry counters/gauges — the uniform home of what used to be
  ad-hoc attributes).
* When ready: ``seq``, ``versions``, ``branches``.
* Primary extras: ``connections``, ``max_connections``,
  ``inflight_commits``, ``max_inflight_commits``, ``commits``,
  ``frames_served``, ``bad_frames``, ``rejected_overloaded``,
  ``idle_closed``, ``live_sessions``.
* Replica extras: ``wal``, ``position`` (``[segment, offset]``),
  ``behind_bytes``, ``applied_records``, ``promoted``, ``verify``,
  ``seconds_since_sync``.
* Optional: ``cluster`` (the gossip object above).

:func:`validate_status` checks the core; the round-trip test in
``tests/test_obs.py`` holds both roles to it.

Responses are ``{"id": ..., "ok": true, ...payload}`` on success and
``{"id": ..., "ok": false, "error": {"code", "message", ...}}`` on
failure.  Error codes map 1:1 onto the store's exception types
(:func:`error_payload`, :func:`raise_for_error`), so a remote caller
sees the same :class:`~repro.errors.CommitRejected` — witness findings
included — that a local :class:`~repro.store.Session` user does.
"""

from __future__ import annotations

from typing import Any

from repro.errors import (
    CommitRejected,
    EpochFenced,
    ExtensionError,
    ProtocolError,
    ServerOverloaded,
    StoreError,
    TransactionConflict,
)

PROTOCOL_VERSION = 1

#: The failure-detector suspicion ladder, least to most suspicious;
#: the ``cluster`` gossip in ``status`` responses uses exactly these
#: (see :class:`repro.server.cluster.HealthMonitor`).
SUSPICION_STATES = ("alive", "suspect", "dead")

#: Every operation a client may request, and which of them mutate.
OPS = frozenset(
    {"hello", "ping", "begin", "stage", "commit", "read", "branch",
     "status", "metrics"})
WRITE_OPS = frozenset({"begin", "stage", "commit", "branch"})

#: The keys every ``status`` response must carry, whatever the role.
STATUS_CORE_KEYS = ("role", "epoch", "ready", "counters")

#: Error codes, most specific first.  ``bad-frame`` answers payloads the
#: frame layer could delimit but not parse; ``fatal`` marks errors after
#: which the server closes the connection (stream desync, oversize).
ERROR_CODES = (
    "commit-rejected", "conflict", "epoch-fenced", "read-only",
    "overloaded", "extension-error", "store-error", "protocol-error",
    "bad-frame",
)


def ok_response(rid: Any, **payload: Any) -> dict:
    return {"id": rid, "ok": True, **payload}


def error_response(rid: Any, code: str, message: str,
                   **extra: Any) -> dict:
    return {"id": rid, "ok": False,
            "error": {"code": code, "message": message, **extra}}


def error_payload(exc: BaseException) -> dict:
    """One exception as the ``error`` object of a response — the
    server-side half of the exception bridge."""
    if isinstance(exc, CommitRejected):
        return {"code": "commit-rejected", "message": str(exc),
                "findings": [dict(f) for f in exc.findings]}
    if isinstance(exc, TransactionConflict):
        return {"code": "conflict", "message": str(exc),
                "keys": [_jsonable_key(k) for k in exc.keys]}
    if isinstance(exc, EpochFenced):
        return {"code": "epoch-fenced", "message": str(exc),
                "held": exc.held, "current": exc.current}
    if isinstance(exc, ServerOverloaded):
        return {"code": "overloaded", "message": str(exc)}
    if isinstance(exc, StoreError):
        return {"code": "store-error", "message": str(exc)}
    if isinstance(exc, ExtensionError):
        return {"code": "extension-error", "message": str(exc)}
    if isinstance(exc, ProtocolError):
        return {"code": "protocol-error", "message": str(exc)}
    return {"code": "store-error",
            "message": f"{type(exc).__name__}: {exc}"}


def _jsonable_key(key: Any) -> Any:
    """Conflict keys are ``(relation, attrs-frozenset, projected-row)``
    triples; flatten the non-JSON members to sorted/readable forms."""
    try:
        relation, attrs, row = key
        return [relation, sorted(attrs), repr(row)]
    except (TypeError, ValueError):
        return repr(key)


def raise_for_error(error: dict) -> None:
    """Re-raise a response's ``error`` object as the exception it
    encodes — the client-side half of the bridge.  Findings and conflict
    keys survive the round trip (keys as their JSON-flattened form)."""
    code = error.get("code", "store-error")
    message = error.get("message", "remote error")
    if code == "commit-rejected":
        raise CommitRejected(message,
                             tuple(error.get("findings", ())))
    if code == "conflict":
        raise TransactionConflict(
            message, keys=tuple(tuple(k) if isinstance(k, list) else k
                                for k in error.get("keys", ())))
    if code == "epoch-fenced":
        raise EpochFenced(message, held=int(error.get("held", 0)),
                          current=int(error.get("current", 0)))
    if code == "overloaded":
        raise ServerOverloaded(message)
    if code in ("protocol-error", "bad-frame"):
        raise ProtocolError(message)
    if code == "extension-error":
        raise ExtensionError(message)
    if code == "read-only":
        raise StoreError(f"read-only replica: {message}")
    raise StoreError(message)


def status_payload(role: str, epoch: int, ready: bool,
                   counters: dict | None = None, **extra: Any) -> dict:
    """A ``status`` response body with the schema's core fields in
    place; role-specific extras ride along verbatim."""
    return {"role": role, "epoch": int(epoch), "ready": bool(ready),
            "counters": dict(counters or {}), **extra}


def validate_status(status: dict) -> dict:
    """Check a ``status`` body against the schema's core (see the
    module docstring); returns it unchanged or raises
    :class:`ProtocolError` naming the violation."""
    for key in STATUS_CORE_KEYS:
        if key not in status:
            raise ProtocolError(f"status response lacks {key!r}")
    role = status["role"]
    if role not in ("primary", "replica"):
        raise ProtocolError(f"status role must be primary/replica, "
                            f"got {role!r}")
    if not isinstance(status["epoch"], int) or status["epoch"] < 0:
        raise ProtocolError(f"status epoch must be a non-negative int, "
                            f"got {status['epoch']!r}")
    if not isinstance(status["ready"], bool):
        raise ProtocolError(f"status ready must be a bool, "
                            f"got {status['ready']!r}")
    counters = status["counters"]
    if not isinstance(counters, dict):
        raise ProtocolError("status counters must be an object")
    for name, value in counters.items():
        if not isinstance(name, str) or isinstance(value, bool) \
                or not isinstance(value, (int, float)):
            raise ProtocolError(
                f"status counter {name!r} -> {value!r} is not a "
                "name-to-number entry")
    if status["ready"]:
        for key in ("seq", "versions", "branches"):
            if key not in status:
                raise ProtocolError(
                    f"ready status lacks {key!r}")
    return status


def validate_request(message: dict) -> tuple[Any, str]:
    """``(id, op)`` of a request, or :class:`ProtocolError` when the
    object is not a well-formed request.  The id may be any JSON scalar;
    it is only echoed."""
    if "op" not in message:
        raise ProtocolError("request has no 'op' field")
    op = message["op"]
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(f"unknown op {op!r}")
    rid = message.get("id")
    if isinstance(rid, (dict, list)):
        raise ProtocolError("request 'id' must be a JSON scalar")
    return rid, op
