"""The store's wire protocol: message shapes over length-prefixed frames.

The byte layer lives in :mod:`repro.io` (``encode_frame`` /
``FrameDecoder``); this module fixes what the frames *say*.  Every
message is one JSON object.  Requests carry a client-chosen ``id``
(echoed verbatim in the response, so a client may pipeline) and an
``op``:

``hello``
    Bind the connection to a branch (``branch``, default ``"main"``)
    and learn the store's shape.  Response: ``protocol``, ``role``
    (``"primary"`` or ``"replica"``), ``epoch`` (the promotion epoch
    the served graph is at — failover clients refuse primaries whose
    epoch regressed below one they have seen), ``branches``,
    ``relations``, ``validation``.
``ping``
    Liveness probe.  Response: ``{"pong": true}``.
``begin``
    Open a transaction pinned at the session branch's head.  Response:
    ``txn`` (a server-assigned handle) and ``base`` (the head's vid).
``stage``
    Buffer operations into an open transaction: ``txn`` plus ``ops``,
    a list of WAL-form op records (``{"op": "insert", "relation": ...,
    "row": {...}, "propagate": ...}`` and friends).  Rows are validated
    on arrival; a malformed row fails the *stage*, with the transaction
    left as it was before the call.  Response: ``staged`` (total ops
    buffered).
``commit``
    Validate and install an open transaction (``txn``); the handle is
    consumed either way.  Response: ``version``, ``parent``, ``branch``.
    Rejections answer with code ``commit-rejected`` carrying the witness
    ``findings``; optimistic-concurrency losses (after the server-side
    retry loop) answer ``conflict`` with the overlapping ``keys``.
``read``
    One relation's instance set at a pinned version: ``relation``,
    optional ``at`` (vid) / ``branch``.  Response: ``rows`` (list of
    attribute->scalar objects), ``version`` (the vid served).
``branch``
    Create a branch: ``name``, optional ``at`` / ``from_branch``.
    Replica connections refuse with ``read-only``.  Response:
    ``branch``, ``at``.
``status``
    Server-side statistics: connection and commit-queue gauges on a
    primary, the staleness/lag report on a replica.  A server wired
    into a cluster (``StoreServer(cluster=...)``) additionally gossips
    its health view: a ``cluster`` object whose ``suspicion`` table
    maps peer ids to ``{state, misses, probes, role, epoch,
    behind_bytes}``, with ``state`` one of :data:`SUSPICION_STATES` —
    so any client can ask one node what it believes about the others.

Responses are ``{"id": ..., "ok": true, ...payload}`` on success and
``{"id": ..., "ok": false, "error": {"code", "message", ...}}`` on
failure.  Error codes map 1:1 onto the store's exception types
(:func:`error_payload`, :func:`raise_for_error`), so a remote caller
sees the same :class:`~repro.errors.CommitRejected` — witness findings
included — that a local :class:`~repro.store.Session` user does.
"""

from __future__ import annotations

from typing import Any

from repro.errors import (
    CommitRejected,
    EpochFenced,
    ExtensionError,
    ProtocolError,
    ServerOverloaded,
    StoreError,
    TransactionConflict,
)

PROTOCOL_VERSION = 1

#: The failure-detector suspicion ladder, least to most suspicious;
#: the ``cluster`` gossip in ``status`` responses uses exactly these
#: (see :class:`repro.server.cluster.HealthMonitor`).
SUSPICION_STATES = ("alive", "suspect", "dead")

#: Every operation a client may request, and which of them mutate.
OPS = frozenset(
    {"hello", "ping", "begin", "stage", "commit", "read", "branch",
     "status"})
WRITE_OPS = frozenset({"begin", "stage", "commit", "branch"})

#: Error codes, most specific first.  ``bad-frame`` answers payloads the
#: frame layer could delimit but not parse; ``fatal`` marks errors after
#: which the server closes the connection (stream desync, oversize).
ERROR_CODES = (
    "commit-rejected", "conflict", "epoch-fenced", "read-only",
    "overloaded", "extension-error", "store-error", "protocol-error",
    "bad-frame",
)


def ok_response(rid: Any, **payload: Any) -> dict:
    return {"id": rid, "ok": True, **payload}


def error_response(rid: Any, code: str, message: str,
                   **extra: Any) -> dict:
    return {"id": rid, "ok": False,
            "error": {"code": code, "message": message, **extra}}


def error_payload(exc: BaseException) -> dict:
    """One exception as the ``error`` object of a response — the
    server-side half of the exception bridge."""
    if isinstance(exc, CommitRejected):
        return {"code": "commit-rejected", "message": str(exc),
                "findings": [dict(f) for f in exc.findings]}
    if isinstance(exc, TransactionConflict):
        return {"code": "conflict", "message": str(exc),
                "keys": [_jsonable_key(k) for k in exc.keys]}
    if isinstance(exc, EpochFenced):
        return {"code": "epoch-fenced", "message": str(exc),
                "held": exc.held, "current": exc.current}
    if isinstance(exc, ServerOverloaded):
        return {"code": "overloaded", "message": str(exc)}
    if isinstance(exc, StoreError):
        return {"code": "store-error", "message": str(exc)}
    if isinstance(exc, ExtensionError):
        return {"code": "extension-error", "message": str(exc)}
    if isinstance(exc, ProtocolError):
        return {"code": "protocol-error", "message": str(exc)}
    return {"code": "store-error",
            "message": f"{type(exc).__name__}: {exc}"}


def _jsonable_key(key: Any) -> Any:
    """Conflict keys are ``(relation, attrs-frozenset, projected-row)``
    triples; flatten the non-JSON members to sorted/readable forms."""
    try:
        relation, attrs, row = key
        return [relation, sorted(attrs), repr(row)]
    except (TypeError, ValueError):
        return repr(key)


def raise_for_error(error: dict) -> None:
    """Re-raise a response's ``error`` object as the exception it
    encodes — the client-side half of the bridge.  Findings and conflict
    keys survive the round trip (keys as their JSON-flattened form)."""
    code = error.get("code", "store-error")
    message = error.get("message", "remote error")
    if code == "commit-rejected":
        raise CommitRejected(message,
                             tuple(error.get("findings", ())))
    if code == "conflict":
        raise TransactionConflict(
            message, keys=tuple(tuple(k) if isinstance(k, list) else k
                                for k in error.get("keys", ())))
    if code == "epoch-fenced":
        raise EpochFenced(message, held=int(error.get("held", 0)),
                          current=int(error.get("current", 0)))
    if code == "overloaded":
        raise ServerOverloaded(message)
    if code in ("protocol-error", "bad-frame"):
        raise ProtocolError(message)
    if code == "extension-error":
        raise ExtensionError(message)
    if code == "read-only":
        raise StoreError(f"read-only replica: {message}")
    raise StoreError(message)


def validate_request(message: dict) -> tuple[Any, str]:
    """``(id, op)`` of a request, or :class:`ProtocolError` when the
    object is not a well-formed request.  The id may be any JSON scalar;
    it is only echoed."""
    if "op" not in message:
        raise ProtocolError("request has no 'op' field")
    op = message["op"]
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(f"unknown op {op!r}")
    rid = message.get("id")
    if isinstance(rid, (dict, list)):
        raise ProtocolError("request 'id' must be a JSON scalar")
    return rid, op
