"""WAL-tailing read replicas: horizontal scale-out for snapshot reads.

A :class:`ReplicaEngine` owns a :class:`~repro.store.WalCursor` over the
primary's write-ahead log and an inner :class:`~repro.store.StoreEngine`
it never writes to directly: every record the cursor yields is applied
through :meth:`StoreEngine.apply_wal_record`, the exact code path
``StoreEngine.replay`` drains a log through.  A replica's version graph
is therefore *identical* — version ids, branch heads, states — to what
a full replay of the same WAL prefix produces; the differential suite
in ``tests/test_replica.py`` holds it to that.

The topology reading (PAPERS.md's Alexandrov-topologies framing):
replica lag is one more dimension of the version graph.  A replica's
head is always some *ancestor* of the primary's head — an
older-but-valid version, never an invalid state — because the primary
only logs commits its axiom gate admitted, and the replica applies
whole records or nothing.  Reads served from a replica are exactly the
lock-free snapshot reads the store already gives local readers, just
pinned a few commits behind.

Crash tolerance is inherited from the PR-6 recovery contract via the
cursor: an in-progress (or torn) final line is waited out, the
primary's repair truncation is absorbed by offset clamping, and a
pruned-under-cursor segment triggers :meth:`resync` from the newest
checkpoint.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.errors import DeadlineExceeded, EpochFenced, StoreError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.store.engine import StoreEngine
from repro.store.wal import WalCursor, WriteAheadLog


class ReplicaEngine:
    """A read-only store that follows a primary's WAL.

    Parameters
    ----------
    wal_path:
        The primary's log — a single file or a segment directory.  The
        replica only ever reads it.
    from_checkpoint:
        When ``True`` (default), bootstrap skips to the newest
        checkpoint-headed segment (and, within the first batch, to the
        newest inline checkpoint), mirroring
        ``StoreEngine.replay(from_checkpoint=True)`` — pre-checkpoint
        versions are simply absent, restored as floor versions.  With
        ``False`` the replica applies the full history from v0.
    verify:
        Re-gate every followed commit through the replica's own axiom
        validation (the distrusting mode); the default trusts the
        primary's gate and installs records directly, which still
        re-derives every state and checks version-id agreement.
    validation:
        Validation mode for the inner engine (only consulted under
        ``verify``).
    follow_epochs:
        When ``True`` (default) the replica follows promotion ``epoch``
        records — its graph tracks whichever primary currently owns
        the log.  With ``False`` the replica is *pinned* to the epoch
        it first applied records under: an epoch record appearing in
        the tail raises :class:`~repro.errors.EpochFenced`, the loud
        "your primary was demoted" signal a strict follower wants.

    Concurrency: :meth:`sync` is serialised by an internal lock (one
    tailer); reads are lock-free against the immutable graph, exactly
    as on a primary.  After :func:`repro.server.failover.promote` the
    replica is *promoted*: further :meth:`sync`/:meth:`resync` calls
    raise :class:`~repro.errors.EpochFenced` — the graph now belongs
    to the promoted :class:`StoreEngine`, which writes the log the
    cursor used to follow.
    """

    def __init__(self, wal_path: str | Path, validation: str = "delta",
                 from_checkpoint: bool = True, verify: bool = False,
                 follow_epochs: bool = True):
        self.wal_path = Path(wal_path)
        self.validation = validation
        self.from_checkpoint = from_checkpoint
        self.verify = verify
        self.follow_epochs = follow_epochs
        self.promoted = False
        self._engine: StoreEngine | None = None
        self._cursor = WalCursor(self.wal_path)
        if from_checkpoint:
            self._cursor.seek_newest_checkpoint_segment()
        self._skip_to_checkpoint = from_checkpoint
        self._lock = threading.Lock()
        self._applied_records = 0
        self._last_sync: float | None = None
        self.metrics: MetricsRegistry | None = None
        self.tracer = NULL_TRACER
        self._slow_commit_threshold: float | None = None
        self._c_syncs = None
        self._c_applied = None
        self._g_behind = None

    def attach_observability(self, metrics: MetricsRegistry | None = None,
                             tracer: Tracer | None = None,
                             slow_commit_threshold: float | None = None,
                             ) -> None:
        """Wire a registry/tracer into the tailer (``replica.*``
        instruments) and through to the inner engine — including one
        bootstrapped later, and therefore the engine a promotion turns
        into the new primary, so commit-phase histograms start the
        moment this node starts committing."""
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._slow_commit_threshold = slow_commit_threshold
        if metrics is None:
            self._c_syncs = self._c_applied = self._g_behind = None
        else:
            self._c_syncs = metrics.counter("replica.syncs")
            self._c_applied = metrics.counter("replica.applied_records")
            self._g_behind = metrics.gauge("replica.behind_bytes")
        if self._engine is not None:
            self._engine.attach_observability(
                metrics, tracer, slow_commit_threshold=slow_commit_threshold)

    @property
    def slow_commits(self):
        """The inner engine's slow-commit log (empty until
        bootstrapped) — uniform access for the ``metrics`` op."""
        engine = self._engine
        return () if engine is None else engine.slow_commits

    # ------------------------------------------------------------------
    # tailing
    # ------------------------------------------------------------------
    def sync(self, max_records: int | None = None) -> int:
        """Apply the records the primary appended since the last sync.

        Returns the number applied (0 when caught up, or while the
        primary is mid-append).  Raises :class:`StoreError` on genuine
        log corruption, and on a pruned-under-cursor segment — call
        :meth:`resync` for the latter.
        """
        with self._lock, self.tracer.span("replica.sync"):
            self._check_promoted()
            records = self._cursor.poll(max_records)
            if self._skip_to_checkpoint and self._engine is None:
                # A single-segment (or single-file) log keeps its
                # checkpoints inline; resume at the newest one visible
                # in the bootstrap batch, exactly like replay.
                for i in range(len(records) - 1, -1, -1):
                    if records[i].get("type") == "checkpoint":
                        records = records[i:]
                        break
            applied = 0
            for record in records:
                self._apply(record)
                applied += 1
            if applied or self._engine is not None:
                self._skip_to_checkpoint = False
            self._applied_records += applied
            self._last_sync = time.monotonic()
            if self._c_syncs is not None:
                self._c_syncs.inc()
                if applied:
                    self._c_applied.inc(applied)
                self._g_behind.set(self._cursor.behind_bytes())
            return applied

    def _check_promoted(self) -> None:
        if self.promoted:
            epoch = (self._engine.epoch
                     if self._engine is not None else 0)
            raise EpochFenced(
                "replica was promoted; it writes this log now and no "
                "longer tails it", held=epoch, current=epoch)

    def _apply(self, record: dict) -> None:
        if (record.get("type") == "epoch" and not self.follow_epochs
                and self._engine is not None):
            raise EpochFenced(
                f"replica is pinned to epoch {self._engine.epoch} but "
                f"the log advanced to epoch {record.get('epoch')} (a "
                "promotion happened); resubscribe with "
                "follow_epochs=True to track the new primary",
                held=self._engine.epoch,
                current=int(record.get("epoch", 0)))
        if self._engine is None:
            self._engine = StoreEngine.from_wal_record(
                record, validation=self.validation, verify=self.verify)
            if self.metrics is not None:
                self._engine.attach_observability(
                    self.metrics, self.tracer,
                    slow_commit_threshold=self._slow_commit_threshold)
            return
        self._engine.apply_wal_record(record, verify=self.verify)

    def catch_up(self, timeout: float = 5.0,
                 poll_interval: float = 0.01,
                 min_interval: float = 0.0005,
                 backoff: float = 2.0,
                 deadline: float | None = None) -> int:
        """Sync until the cursor reports nothing left behind (or the
        timeout lapses — a live primary can outrun a poll, so callers
        needing a hard guarantee stop the writers first).  Returns the
        records applied.

        Polling backs off: an empty poll doubles (``backoff``) the
        sleep from ``min_interval`` up to ``poll_interval``, and any
        progress resets it — so a busy tail is drained at full speed
        while a quiet primary costs a handful of stats per
        ``poll_interval``, not a busy loop.

        ``deadline`` is the *hard* form of ``timeout`` (and overrides
        it): every backoff sleep is capped against the remaining
        budget, transient ``OSError``\\ s from the poll (a flaky disk,
        an injected fault) are retried inside the budget instead of
        aborting the catch-up, and when the budget lapses while still
        behind, :class:`~repro.errors.DeadlineExceeded` is raised with
        the last transient failure chained as ``__cause__`` — exactly
        the :meth:`RetryPolicy.call <repro.server.failover.RetryPolicy
        .call>` contract, so supervision loops polling a dead or torn
        primary fail loudly and boundedly instead of backing off past
        any bound and returning as if nothing were wrong.
        """
        bound = timeout if deadline is None else deadline
        deadline_at = time.monotonic() + bound
        interval = max(0.0, min(min_interval, poll_interval))
        applied = 0
        last_failure: OSError | None = None
        while True:
            got = 0
            try:
                got = self.sync()
                applied += got
                last_failure = None
            except OSError as exc:
                if deadline is None:
                    raise  # soft mode keeps the historical contract
                last_failure = exc
            if last_failure is None and self.behind_bytes() == 0:
                return applied
            now = time.monotonic()
            if now >= deadline_at:
                if deadline is not None:
                    raise DeadlineExceeded(
                        f"replica still {self.behind_bytes()} bytes "
                        f"behind when the {bound}s catch-up deadline "
                        "lapsed (dead or torn primary?)"
                    ) from last_failure
                return applied
            if got:
                interval = max(0.0, min(min_interval, poll_interval))
            else:
                time.sleep(min(interval,
                               max(0.0, deadline_at - now)))
                interval = min(poll_interval,
                               max(interval, min_interval) * backoff)

    def resync(self) -> int:
        """Re-bootstrap from the newest checkpoint after the tail was
        pruned out from under the cursor; the graph is rebuilt from
        scratch (version ids stay identical — the sequence counter is
        part of the checkpoint)."""
        with self._lock:
            self._check_promoted()
            self._engine = None
            self._cursor = WalCursor(self.wal_path)
            self._cursor.seek_newest_checkpoint_segment()
            self._skip_to_checkpoint = True
        return self.sync()

    def mark_promoted(self) -> None:
        """Fence this replica's own tailing (called by
        :func:`repro.server.failover.promote` before the epoch stamp
        lands, so a racing background sync can never re-apply the
        promotion record to the very engine that now owns it)."""
        with self._lock:
            self.promoted = True

    def unmark_promoted(self) -> None:
        """Roll back :meth:`mark_promoted` after a promotion that
        failed to stamp (someone else won the race) — the replica goes
        back to tailing whoever did win."""
        with self._lock:
            self.promoted = False

    # ------------------------------------------------------------------
    # reads (lock-free once bootstrapped)
    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """True once the bootstrap record (snapshot or checkpoint) has
        been applied and reads can be served."""
        return self._engine is not None

    @property
    def engine(self) -> StoreEngine:
        engine = self._engine
        if engine is None:
            raise StoreError(
                "replica has not bootstrapped yet (no snapshot or "
                "checkpoint record visible in the WAL); sync() first")
        return engine

    @property
    def graph(self):
        return self.engine.graph

    @property
    def schema(self):
        return self.engine.schema

    def state(self, vid: str | None = None, branch: str = "main"):
        return self.engine.state(vid, branch)

    def read(self, relation: str, branch: str = "main",
             at: str | None = None):
        return self.engine.read(relation, branch, at)

    def head_version(self, branch: str = "main"):
        return self.engine.head_version(branch)

    def describe(self) -> dict:
        summary = self.engine.describe()
        summary["role"] = "replica"
        return summary

    # ------------------------------------------------------------------
    # staleness / lag
    # ------------------------------------------------------------------
    def behind_bytes(self) -> int:
        """Unconsumed log bytes — 0 means every durably written record
        has been applied."""
        return self._cursor.behind_bytes()

    def status(self) -> dict:
        """The staleness/lag report: where the replica is, how far
        behind the durable log it is, and what it serves."""
        engine = self._engine
        behind = self.behind_bytes()
        status = {
            "role": "replica",
            "ready": engine is not None,
            "promoted": self.promoted,
            "epoch": engine.epoch if engine is not None else 0,
            "counters": {
                "replica.syncs": (self._c_syncs.value
                                  if self._c_syncs is not None else 0),
                "replica.applied_records": self._applied_records,
                "replica.behind_bytes": behind,
            },
            "wal": str(self.wal_path),
            "position": self._cursor.position(),
            "behind_bytes": behind,
            "applied_records": self._applied_records,
            "verify": self.verify,
            "seconds_since_sync": (
                round(time.monotonic() - self._last_sync, 6)
                if self._last_sync is not None else None),
        }
        if engine is not None:
            status["branches"] = engine.graph.branches()
            status["seq"] = engine.graph.seq
            status["versions"] = len(engine.graph)
        return status

    def lag(self) -> dict:
        """The short form of :meth:`status` for monitoring loops."""
        return {
            "behind_bytes": self.behind_bytes(),
            "current": self.behind_bytes() == 0,
            "applied_records": self._applied_records,
        }

    def close(self) -> None:
        """Replicas hold no file handles between polls; closing only
        drops the engine reference."""
        with self._lock:
            self._engine = None

    def __repr__(self) -> str:
        head = self._engine.graph.branches() if self._engine else None
        return (f"ReplicaEngine({self.wal_path}, ready={self.ready}, "
                f"heads={head})")


def segments_snapshot(wal_path: str | Path) -> list[str]:
    """The log's current segment names (diagnostics for lag reports)."""
    return [p.name for p in WriteAheadLog.segment_paths(wal_path)
            if p.exists()]
