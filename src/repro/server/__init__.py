"""`repro.server` — the store over the wire, plus WAL-tailing replicas.

An asyncio front end (:mod:`server`) speaks a length-prefixed JSON
frame protocol (:mod:`protocol`; byte layer in :mod:`repro.io`) over a
:class:`~repro.store.StoreEngine`, mirroring the embedded session API —
begin/stage/commit with the same typed errors, witness findings
included.  :mod:`replica` adds read scale-out: a
:class:`ReplicaEngine` tails the primary's write-ahead log and applies
every record through the replay code path, so its version graph is
identical to the primary's at the prefix it has consumed.
:mod:`failover` closes the availability loop: :func:`promote` turns a
caught-up replica into the next-epoch primary (fencing the old one via
the WAL's epoch stamp), :class:`RetryPolicy` and
:class:`FailoverClient` give clients backoff, heartbeats, client-side
epoch fencing, and bounded-staleness replica reads.  :mod:`cluster`
makes the loop autonomous: a :class:`HealthMonitor` failure detector
(alive → suspect → dead suspicion levels over ``status`` probes), a
:class:`Coordinator` per replica running deterministic leader election
(rank by durable WAL position, the epoch stamp as final arbiter), and
a :class:`ReadBalancer` fanning reads out across replicas with
staleness budgets and a graceful degradation ladder.  See ``README.md``
in this directory for the wire-protocol specification, the replica
consistency semantics, and the epoch/fencing state machine.
"""

from repro.server.client import RemoteTxn, StoreClient
from repro.server.cluster import (
    Coordinator,
    HealthMonitor,
    ReadBalancer,
    election_rank,
    engine_probe,
    wire_probe,
)
from repro.server.failover import FailoverClient, RetryPolicy, promote
from repro.server.pool import ClientPool
from repro.server.protocol import (
    OPS,
    PROTOCOL_VERSION,
    STATUS_CORE_KEYS,
    SUSPICION_STATES,
    WRITE_OPS,
    error_payload,
    error_response,
    ok_response,
    raise_for_error,
    status_payload,
    validate_request,
    validate_status,
)
from repro.server.replica import ReplicaEngine
from repro.server.server import StoreServer

__all__ = [
    "ClientPool",
    "Coordinator",
    "FailoverClient",
    "HealthMonitor",
    "OPS",
    "PROTOCOL_VERSION",
    "ReadBalancer",
    "RemoteTxn",
    "ReplicaEngine",
    "RetryPolicy",
    "STATUS_CORE_KEYS",
    "StoreClient",
    "StoreServer",
    "SUSPICION_STATES",
    "WRITE_OPS",
    "election_rank",
    "engine_probe",
    "error_payload",
    "error_response",
    "ok_response",
    "promote",
    "raise_for_error",
    "status_payload",
    "validate_request",
    "validate_status",
    "wire_probe",
]
