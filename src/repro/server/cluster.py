"""Self-healing cluster: failure detection, deterministic leader
election, and replica fan-out reads.

PR 8 made promotion *safe* — epoch fencing, the race-guarded
:func:`~repro.server.failover.promote`, zero acked-commit loss — but an
operator still had to notice the primary died and run it.  This module
closes the loop with three cooperating pieces:

* :class:`HealthMonitor` — a seeded, clock-injected failure detector.
  Heartbeat probes ride the existing ``hello``/``status`` ops (or call
  a local engine directly); consecutive misses walk a peer through
  *alive → suspect → dead* suspicion levels, so one dropped frame never
  triggers an election.  The clock is injected, which makes detection
  timing a pure function of ticks — the chaos suite drives it with a
  fake clock and counts them.
* :class:`Coordinator` — one per replica, runs deterministic leader
  election when the monitor declares the primary dead.  Candidates
  rank by ``(durable WAL position, replica id)``: the most-caught-up
  replica wins, ties break on the highest id, and no external
  consensus service is needed because every candidate ranks against
  the same durable log.  The winner calls ``promote()``; the epoch
  stamp's race guard remains the final arbiter, so even coordinators
  with disjoint membership views cannot split-brain — at most one
  stamp lands, losers get :class:`~repro.errors.EpochFenced` and
  re-pin to the new epoch by simply continuing to tail the log.
* :class:`ReadBalancer` — fan-out reads across N replicas with
  per-replica staleness budgets.  Replicas the monitor marks suspect
  are ejected from the rotation; when no healthy in-budget replica
  remains the balancer degrades down a ladder — primary first, then
  any reachable replica within ``max_staleness`` — instead of failing.

The election rule leans on a property the store already guarantees:
replicas of one log apply identical prefixes, so the cursor position
``(segment, offset)`` is totally ordered across candidates and "most
caught up" is well defined without any vote exchange.
"""

from __future__ import annotations

import time
from random import Random
from typing import Any, Callable, Mapping, Sequence

from repro.errors import (
    CommitRejected,
    EpochFenced,
    ProtocolError,
    ServerOverloaded,
    StoreError,
    TransactionConflict,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.server.client import StoreClient
from repro.server.failover import promote
from repro.server.protocol import SUSPICION_STATES
from repro.server.replica import ReplicaEngine

ALIVE, SUSPECT, DEAD = SUSPICION_STATES


# ----------------------------------------------------------------------
# probes
# ----------------------------------------------------------------------
def wire_probe(address: Sequence, timeout: float = 1.0
               ) -> Callable[[], dict]:
    """A probe that dials ``address`` and asks ``status`` over the wire
    (one ``hello`` + one ``status`` round trip per call, so a probe
    failure is indistinguishable from the process being gone — which is
    the point)."""
    host, port = str(address[0]), int(address[1])

    def probe() -> dict:
        with StoreClient(host, port, timeout=timeout) as client:
            return client.status()

    probe.address = (host, port)  # type: ignore[attr-defined]
    return probe


def engine_probe(target: Any) -> Callable[[], dict]:
    """A probe over a local object — a :class:`ReplicaEngine` (its
    :meth:`~ReplicaEngine.status` report) or a primary
    :class:`~repro.store.StoreEngine` (its ``describe`` summary, tagged
    with the primary role)."""

    def probe() -> dict:
        if hasattr(target, "status"):
            return target.status()
        summary = target.describe()
        summary.setdefault("role", "primary")
        return summary

    return probe


class _Peer:
    __slots__ = ("peer_id", "probe", "state", "misses", "probes",
                 "last_status", "last_error", "last_ok_at", "next_due")

    def __init__(self, peer_id: str, probe: Callable[[], dict],
                 due: float):
        self.peer_id = peer_id
        self.probe = probe
        self.state = ALIVE
        self.misses = 0
        self.probes = 0
        self.last_status: dict | None = None
        self.last_error: str | None = None
        self.last_ok_at: float | None = None
        self.next_due = due


# ----------------------------------------------------------------------
# the failure detector
# ----------------------------------------------------------------------
class HealthMonitor:
    """A timeout-with-suspicion failure detector.

    Parameters
    ----------
    clock:
        The time source (``time.monotonic`` by default).  Tests inject
        a fake clock, making every transition a pure function of ticks.
    probe_interval:
        Seconds between probes of one peer.
    suspect_after, dead_after:
        Consecutive misses before a peer is marked ``suspect`` /
        ``dead``.  ``suspect_after`` must be at least 2 — one dropped
        frame never even raises suspicion, let alone an election — and
        ``dead_after`` must be strictly larger.
    seed, jitter:
        With ``jitter > 0`` each probe's next due time is stretched by
        a seeded uniform draw in ``[0, jitter]`` of the interval, so a
        fleet of monitors does not synchronise its probe bursts.  The
        draw comes from a private ``Random(seed)`` — deterministic.

    :meth:`tick` runs every due probe once and returns the state
    *transitions* it caused; the full event history accumulates in
    :attr:`events`.  A probe is any callable returning a status
    mapping (see :func:`wire_probe` / :func:`engine_probe`); raising
    counts as a miss.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 probe_interval: float = 0.05, suspect_after: int = 2,
                 dead_after: int = 4, seed: int = 0,
                 jitter: float = 0.0):
        if suspect_after < 2:
            raise StoreError(
                f"suspect_after must be >= 2 so a single dropped probe "
                f"never raises suspicion, got {suspect_after}")
        if dead_after <= suspect_after:
            raise StoreError(
                f"dead_after ({dead_after}) must exceed suspect_after "
                f"({suspect_after}): a peer is suspected before it is "
                "declared dead, never the other way around")
        self.clock = clock
        self.probe_interval = probe_interval
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.jitter = jitter
        self._rng = Random(seed)
        self._peers: dict[str, _Peer] = {}
        self.events: list[dict] = []
        self.metrics: MetricsRegistry | None = None
        self.tracer = NULL_TRACER
        self._c_probes = None
        self._c_misses = None
        self._c_transitions = None

    def attach_observability(self, metrics: MetricsRegistry | None = None,
                             tracer: Tracer | None = None) -> None:
        """Count probes/misses/suspicion transitions into a registry
        (``cluster.*``) and stamp transitions into a tracer's timeline;
        the per-peer ``probes``/``misses`` attributes stay as they
        were."""
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if metrics is None:
            self._c_probes = self._c_misses = self._c_transitions = None
        else:
            self._c_probes = metrics.counter("cluster.probes")
            self._c_misses = metrics.counter("cluster.probe_misses")
            self._c_transitions = metrics.counter("cluster.transitions")

    # -- membership ----------------------------------------------------
    def add_peer(self, peer_id: str, probe: Callable[[], dict]) -> None:
        """Register ``peer_id``; its first probe is due immediately.
        Re-adding replaces the probe and resets suspicion."""
        self._peers[str(peer_id)] = _Peer(str(peer_id), probe,
                                          self.clock())

    def remove_peer(self, peer_id: str) -> None:
        self._peers.pop(str(peer_id), None)

    def peer_ids(self) -> list[str]:
        return sorted(self._peers)

    # -- probing -------------------------------------------------------
    def tick(self) -> list[dict]:
        """Probe every peer whose next probe is due; returns the state
        transitions this tick caused (empty when nothing changed)."""
        now = self.clock()
        transitions: list[dict] = []
        for peer in self._peers.values():
            if peer.next_due > now:
                continue
            self._probe(peer, now, transitions)
        return transitions

    def _probe(self, peer: _Peer, now: float,
               transitions: list[dict]) -> None:
        peer.probes += 1
        if self._c_probes is not None:
            self._c_probes.inc()
        previous = peer.state
        try:
            status = peer.probe()
            if not isinstance(status, Mapping):
                raise StoreError(
                    f"probe for {peer.peer_id!r} returned "
                    f"{type(status).__name__}, not a status mapping")
        except Exception as exc:
            peer.misses += 1
            if self._c_misses is not None:
                self._c_misses.inc()
            peer.last_error = repr(exc)
            if peer.misses >= self.dead_after:
                peer.state = DEAD
            elif peer.misses >= self.suspect_after:
                peer.state = SUSPECT
        else:
            peer.misses = 0
            peer.state = ALIVE
            peer.last_status = dict(status)
            peer.last_error = None
            peer.last_ok_at = now
        stretch = 1.0
        if self.jitter > 0.0:
            stretch += self._rng.uniform(0.0, self.jitter)
        peer.next_due = now + self.probe_interval * stretch
        if peer.state != previous:
            event = {"peer": peer.peer_id, "from": previous,
                     "to": peer.state, "misses": peer.misses, "at": now}
            self.events.append(event)
            transitions.append(event)
            if self._c_transitions is not None:
                self._c_transitions.inc()
            self.tracer.event("cluster.transition", event)

    # -- state ---------------------------------------------------------
    def _peer(self, peer_id: str) -> _Peer:
        try:
            return self._peers[str(peer_id)]
        except KeyError:
            raise StoreError(
                f"unknown peer {peer_id!r}; known: "
                f"{self.peer_ids()}") from None

    def state(self, peer_id: str) -> str:
        return self._peer(peer_id).state

    def status(self, peer_id: str) -> dict | None:
        """The peer's last *successful* probe payload (``None`` before
        the first success) — stale by at most the suspicion window,
        which is exactly why election ranks re-read live positions
        where they can."""
        return self._peer(peer_id).last_status

    def healthy(self, peer_id: str) -> bool:
        return self._peer(peer_id).state == ALIVE

    def gossip(self) -> dict:
        """The suspicion table in wire form — merged into the ``status``
        op's response (see :class:`~repro.server.StoreServer`) so any
        client can ask one node what it believes about the others."""
        suspicion = {}
        for peer in self._peers.values():
            status = peer.last_status or {}
            suspicion[peer.peer_id] = {
                "state": peer.state,
                "misses": peer.misses,
                "probes": peer.probes,
                "role": status.get("role"),
                "epoch": status.get("epoch"),
                "behind_bytes": status.get("behind_bytes"),
            }
        return {"probe_interval": self.probe_interval,
                "suspect_after": self.suspect_after,
                "dead_after": self.dead_after,
                "suspicion": suspicion}

    def __repr__(self) -> str:
        states = {p.peer_id: p.state for p in self._peers.values()}
        return f"HealthMonitor({states})"


# ----------------------------------------------------------------------
# leader election
# ----------------------------------------------------------------------
def election_rank(status: Mapping, candidate_id: str
                  ) -> tuple[str, int, str]:
    """The deterministic election key: ``(segment, offset, id)``.

    Replicas of one log consume identical prefixes, so the cursor
    position orders candidates by how caught up they are (segment
    names sort lexicographically by design; the offset orders within
    a segment).  The id is the total tie-break — every coordinator
    computes the same winner from the same statuses."""
    position = status.get("position") or {}
    return (str(position.get("segment") or ""),
            int(position.get("offset") or 0),
            str(candidate_id))


class Coordinator:
    """One replica's seat in the autonomous failover loop.

    Each :meth:`step`:

    1. ticks the shared :class:`HealthMonitor` (probes fire on the
       injected clock's schedule);
    2. keeps the local replica tailing (transient sync failures are
       swallowed — they only make this candidate's rank staler);
    3. if the log's epoch advanced past the last one this coordinator
       observed, some election already resolved: re-pin to the new
       primary (``repinned``) and re-target the monitor's view of who
       the primary is;
    4. if the monitor says the primary is ``dead``, run the election:
       rank every non-dead, non-promoted candidate (self via a live
       status; peers via their monitored statuses) by
       :func:`election_rank` — the winner promotes, everyone else
       defers (``deferred``) and waits for the stamp to show up in
       the tail.

    Losing the promote race (:class:`EpochFenced`) is a normal
    outcome, not an error: the stamp that beat ours is the truth, the
    replica already rolled its promoted mark back, and the next step
    re-pins.  A deferred-to winner that dies before stamping is
    declared dead by the monitor after ``dead_after`` more misses and
    drops out of the next round's candidate set — detection, election
    and promotion all complete within a bounded number of ticks.
    """

    def __init__(self, replica_id: str, replica: ReplicaEngine,
                 monitor: HealthMonitor, primary_id: str = "primary",
                 promote_timeout: float = 5.0, sync: bool = False,
                 segment_records: int | None = None,
                 segment_bytes: int | None = None,
                 sync_on_step: bool = True,
                 on_promoted: Callable[[Any], None] | None = None):
        self.replica_id = str(replica_id)
        self.replica = replica
        self.monitor = monitor
        self.primary_id = str(primary_id)
        self.promote_timeout = promote_timeout
        self.sync = sync
        self.segment_records = segment_records
        self.segment_bytes = segment_bytes
        self.sync_on_step = sync_on_step
        self.on_promoted = on_promoted
        self.role = "follower"
        self.engine = None  # the promoted StoreEngine once primary
        self.elections = 0
        self.events: list[dict] = []
        self._baseline_epoch = (replica.engine.epoch
                                if replica.ready else 0)
        self.tracer = NULL_TRACER
        self._c_elections = None

    def attach_observability(self, metrics: MetricsRegistry | None = None,
                             tracer: Tracer | None = None) -> None:
        """Count election rounds into a registry and stamp every
        coordinator event (repinned/deferred/promoted/...) into a
        tracer's timeline; :attr:`elections`/:attr:`events` stay as
        they were."""
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._c_elections = (None if metrics is None
                             else metrics.counter("cluster.elections"))

    # -- the loop ------------------------------------------------------
    def step(self) -> dict | None:
        """One supervision round; returns the event it caused (or
        ``None`` for an uneventful round)."""
        self.monitor.tick()
        if self.role == "primary":
            return None
        if self.sync_on_step:
            self._sync_quietly()
        event = self._maybe_repin()
        if event is not None:
            return event
        primary_state = self.monitor.state(self.primary_id)
        if primary_state == ALIVE:
            status = self.monitor.status(self.primary_id) or {}
            self._baseline_epoch = max(self._baseline_epoch,
                                       int(status.get("epoch") or 0))
            return None
        if primary_state == SUSPECT:
            return None  # suspicion alone never elects
        return self._elect()

    def _sync_quietly(self) -> None:
        try:
            self.replica.sync()
        except (StoreError, OSError):
            # EpochFenced is a StoreError: a pinned follower crossing a
            # stamp, or transient tail trouble — either way the rank
            # just goes stale; the election logic reads epochs itself.
            pass

    def _event(self, action: str, **fields: Any) -> dict:
        event = {"action": action, "replica_id": self.replica_id,
                 **fields}
        self.events.append(event)
        self.tracer.event(f"cluster.{action}", event)
        return event

    # -- epoch re-pinning ----------------------------------------------
    def _maybe_repin(self) -> dict | None:
        """When the log's epoch advanced past the last one we observed,
        an election already resolved — adopt its outcome."""
        if not self.replica.ready:
            return None
        epoch = self.replica.engine.epoch
        if epoch <= self._baseline_epoch:
            return None
        self._baseline_epoch = epoch
        winner = self._find_promoted_peer()
        if winner is not None:
            self.primary_id = winner
        return self._event("repinned", epoch=epoch,
                           primary=self.primary_id)

    def _find_promoted_peer(self) -> str | None:
        best: tuple[int, str] | None = None
        for peer_id in self.monitor.peer_ids():
            if self.monitor.state(peer_id) == DEAD:
                continue
            status = self.monitor.status(peer_id) or {}
            if status.get("promoted") or status.get("role") == "primary":
                key = (int(status.get("epoch") or 0), peer_id)
                if best is None or key > best:
                    best = key
        return best[1] if best is not None else None

    # -- the election --------------------------------------------------
    def _elect(self) -> dict:
        self.elections += 1
        if self._c_elections is not None:
            self._c_elections.inc()
        with self.tracer.span("cluster.election",
                              replica=self.replica_id):
            return self._elect_inner()

    def _elect_inner(self) -> dict:
        candidates: dict[str, tuple[str, int, str]] = {}
        if self.replica.ready and not self.replica.promoted:
            candidates[self.replica_id] = election_rank(
                self.replica.status(), self.replica_id)
        for peer_id in self.monitor.peer_ids():
            if peer_id == self.primary_id or peer_id == self.replica_id:
                continue
            if self.monitor.state(peer_id) == DEAD:
                continue
            status = self.monitor.status(peer_id)
            if status is None or not status.get("ready", True):
                continue
            if status.get("promoted") or status.get("role") == "primary":
                # Already the new primary; the repin path adopts it.
                continue
            if status.get("role") != "replica":
                continue
            candidates[peer_id] = election_rank(status, peer_id)
        if not candidates:
            return self._event("no-candidates",
                               primary=self.primary_id)
        winner = max(candidates.values())[2]
        if winner != self.replica_id:
            return self._event("deferred", winner=winner,
                               rank=candidates[self.replica_id]
                               if self.replica_id in candidates
                               else None)
        return self._promote_self(candidates)

    def _promote_self(self, candidates: Mapping) -> dict:
        # Last look before stamping: the tail may already carry a
        # winner's stamp (promote()'s own race guard still backstops
        # the narrower window after this check).
        self._sync_quietly()
        repin = self._maybe_repin()
        if repin is not None:
            return repin
        try:
            engine = promote(self.replica, timeout=self.promote_timeout,
                             sync=self.sync,
                             segment_records=self.segment_records,
                             segment_bytes=self.segment_bytes)
        except EpochFenced as exc:
            # Raced and lost: the stamp that beat ours is the truth;
            # the replica resumed following, the next step re-pins.
            return self._event("election-lost", held=exc.held,
                               current=exc.current)
        except StoreError as exc:
            # A live tail (the "dead" primary is writing) or a replica
            # that cannot serve yet: refuse, keep following.
            return self._event("aborted", reason=str(exc))
        self.role = "primary"
        self.engine = engine
        self._baseline_epoch = engine.epoch
        if self.on_promoted is not None:
            self.on_promoted(engine)
        return self._event("promoted", epoch=engine.epoch,
                           candidates={cid: list(rank) for cid, rank
                                       in candidates.items()})

    def describe(self) -> dict:
        return {"replica_id": self.replica_id, "role": self.role,
                "primary_id": self.primary_id,
                "epoch": (self.replica.engine.epoch
                          if self.replica.ready else 0),
                "elections": self.elections,
                "events": len(self.events)}

    def __repr__(self) -> str:
        return (f"Coordinator({self.replica_id}, role={self.role}, "
                f"primary={self.primary_id})")


# ----------------------------------------------------------------------
# fan-out reads
# ----------------------------------------------------------------------
class ReadBalancer:
    """Spread ``read``/``read_at`` across N replicas, within budgets.

    Parameters
    ----------
    replicas:
        ``{replica_id: (host, port)}`` — ids must match the monitor's
        peer ids when a monitor is supplied.
    primary:
        The primary's address — the first fallback rung (and
        re-targetable after a failover via :meth:`set_primary`).
    staleness_budget:
        Per-replica freshness bound in WAL bytes: an int applies to
        every replica, a mapping sets per-replica budgets (missing ids
        are unbounded), ``None`` accepts any lag.  A replica over its
        budget leaves the rotation until it catches back up.
    max_staleness:
        The *hard* bound used by the last degradation rung; ``None``
        means any reachable replica may serve it.
    monitor:
        Anything with ``state(peer_id) -> str`` (a
        :class:`HealthMonitor`); replicas not reported ``alive`` are
        ejected from the rotation.
    seed:
        Seeds the rotation's starting point, keeping fan-out spread
        deterministic for tests.
    refresh_every:
        How many reads a cached ``behind_bytes`` measurement may
        serve before the next read re-asks ``status`` (1 = every
        read).
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` to count into
        (``balancer.reads.<rid>``, ``balancer.fallbacks.*``,
        ``balancer.ejections``); a private registry is created when
        omitted, so the counter properties always work.

    The degradation ladder, in order: healthy in-budget replicas
    (rotation) → the primary → any reachable replica within
    ``max_staleness``.  Only when every rung fails does the last
    error surface.  Counters (:attr:`reads`, :attr:`fallbacks`,
    :attr:`ejections`) expose where traffic actually went.
    """

    def __init__(self, replicas: Mapping[str, Sequence],
                 primary: Sequence | None = None, branch: str = "main",
                 staleness_budget: int | Mapping[str, int] | None = None,
                 max_staleness: int | None = None,
                 monitor: Any = None, seed: int = 0,
                 timeout: float = 5.0, refresh_every: int = 8,
                 metrics: MetricsRegistry | None = None):
        self._replicas = {
            str(rid): (str(addr[0]), int(addr[1]))
            for rid, addr in dict(replicas).items()}
        if not self._replicas:
            raise StoreError("read balancer needs at least one replica")
        self._primary = (None if primary is None
                         else (str(primary[0]), int(primary[1])))
        self.branch = branch
        self.staleness_budget = staleness_budget
        self.max_staleness = max_staleness
        self.monitor = monitor
        self.timeout = timeout
        self.refresh_every = max(1, int(refresh_every))
        self._clients: dict[str, StoreClient] = {}
        self._behind: dict[str, int | None] = {}
        self._reads_since_refresh: dict[str, int] = {}
        self._cursor = Random(seed).randrange(len(self._replicas))
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._c_reads = {rid: self.metrics.counter(f"balancer.reads.{rid}")
                         for rid in self._replicas}
        self._c_fallbacks = {
            kind: self.metrics.counter(f"balancer.fallbacks.{kind}")
            for kind in ("primary", "stale")}
        self._c_ejections = self.metrics.counter("balancer.ejections")

    # -- counters (views over the registry instruments) ----------------
    @property
    def reads(self) -> dict[str, int]:
        """Reads served per replica id."""
        return {rid: c.value for rid, c in self._c_reads.items()}

    @property
    def fallbacks(self) -> dict[str, int]:
        """Times each degradation rung (``primary``/``stale``) fired."""
        return {kind: c.value for kind, c in self._c_fallbacks.items()}

    @property
    def ejections(self) -> int:
        """Connections dropped after a retryable failure."""
        return self._c_ejections.value

    # -- membership ----------------------------------------------------
    def add_replica(self, replica_id: str, address: Sequence) -> None:
        rid = str(replica_id)
        self._replicas[rid] = (str(address[0]), int(address[1]))
        if rid not in self._c_reads:
            self._c_reads[rid] = self.metrics.counter(
                f"balancer.reads.{rid}")

    def set_primary(self, address: Sequence) -> None:
        self._primary = (str(address[0]), int(address[1]))

    # -- plumbing ------------------------------------------------------
    def _budget(self, replica_id: str) -> int | None:
        budget = self.staleness_budget
        if budget is None:
            return None
        if isinstance(budget, Mapping):
            value = budget.get(replica_id)
            return None if value is None else int(value)
        return int(budget)

    def _rotation(self) -> list[str]:
        ids = sorted(self._replicas)
        start = self._cursor % len(ids)
        self._cursor += 1
        return ids[start:] + ids[:start]

    def _drop(self, replica_id: str) -> None:
        client = self._clients.pop(replica_id, None)
        if client is not None:
            client.close()
            self._c_ejections.inc()
        self._behind.pop(replica_id, None)
        self._reads_since_refresh.pop(replica_id, None)

    def _client_for(self, replica_id: str) -> StoreClient:
        client = self._clients.get(replica_id)
        if client is not None and client.is_stale():
            self._drop(replica_id)
            client = None
        if client is None:
            host, port = self._replicas[replica_id]
            client = StoreClient(host, port, branch=self.branch,
                                 timeout=self.timeout)
            self._clients[replica_id] = client
            self._reads_since_refresh[replica_id] = self.refresh_every
        return client

    def _behind_bytes(self, replica_id: str,
                      client: StoreClient) -> int | None:
        """The replica's lag, re-measured every ``refresh_every``
        reads (a fresh dial always measures)."""
        served = self._reads_since_refresh.get(replica_id,
                                               self.refresh_every)
        if served >= self.refresh_every:
            status = client.status()
            self._behind[replica_id] = status.get("behind_bytes")
            self._reads_since_refresh[replica_id] = 0
        return self._behind.get(replica_id)

    def _suspect(self, replica_id: str) -> bool:
        if self.monitor is None:
            return False
        try:
            return self.monitor.state(replica_id) != ALIVE
        except StoreError:
            return False  # not a monitored peer: trust it

    # -- reads ---------------------------------------------------------
    def read(self, relation: str, branch: str | None = None,
             at: str | None = None) -> list[dict]:
        rows, _ = self.read_at(relation, branch=branch, at=at)
        return rows

    def read_at(self, relation: str, branch: str | None = None,
                at: str | None = None) -> tuple[list[dict], str]:
        """Rows plus the version id that served them, from the first
        rung of the degradation ladder that answers."""
        last: BaseException | None = None
        rotation = self._rotation()
        # Rung 1: healthy replicas within their budgets.
        for rid in rotation:
            if self._suspect(rid):
                continue
            try:
                client = self._client_for(rid)
                behind = self._behind_bytes(rid, client)
                budget = self._budget(rid)
                if budget is not None and (behind is None
                                           or behind > budget):
                    continue
                result = client.read_at(relation, at=at, branch=branch)
            except Exception as exc:
                if not _read_retryable(exc):
                    raise
                self._drop(rid)
                last = exc
                continue
            self._c_reads[rid].inc()
            self._reads_since_refresh[rid] = (
                self._reads_since_refresh.get(rid, 0) + 1)
            return result
        # Rung 2: the primary.
        if self._primary is not None:
            try:
                with StoreClient(*self._primary, branch=self.branch,
                                 timeout=self.timeout) as client:
                    result = client.read_at(relation, at=at,
                                            branch=branch)
                self._c_fallbacks["primary"].inc()
                return result
            except Exception as exc:
                if not _read_retryable(exc):
                    raise
                last = exc
        # Rung 3: any reachable replica within the hard bound,
        # suspicion notwithstanding — stale-within-budget beats down.
        for rid in rotation:
            try:
                client = self._client_for(rid)
                status = client.status()
                behind = status.get("behind_bytes")
                if (self.max_staleness is not None
                        and (behind is None
                             or behind > self.max_staleness)):
                    continue
                result = client.read_at(relation, at=at, branch=branch)
            except Exception as exc:
                if not _read_retryable(exc):
                    raise
                self._drop(rid)
                last = exc
                continue
            self._c_reads[rid].inc()
            self._c_fallbacks["stale"].inc()
            return result
        raise last if last is not None else StoreError(
            f"no replica within budget could serve {relation!r} and "
            "no primary is reachable")

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        for rid in list(self._clients):
            client = self._clients.pop(rid)
            client.close()

    def __enter__(self) -> "ReadBalancer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ReadBalancer({sorted(self._replicas)}, "
                f"reads={self.reads}, fallbacks={self.fallbacks})")


def _read_retryable(exc: BaseException) -> bool:
    """Whether another peer might answer a read that failed with
    ``exc`` — transport trouble yes, semantic errors (a rejected
    commit crossing the bridge, a malformed request) no.  A plain
    ``StoreError`` stays retryable: a lagging replica reports exactly
    that for a version it has not applied yet, and a fresher peer can
    genuinely answer it."""
    if isinstance(exc, EpochFenced):
        return True  # a demoted peer: another rung will answer
    if isinstance(exc, (CommitRejected, TransactionConflict)):
        return False
    return isinstance(exc,
                      (OSError, ProtocolError, ServerOverloaded,
                       StoreError))
