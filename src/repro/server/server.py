"""The asyncio network front end over a store engine (or a replica).

One :class:`StoreServer` owns one listening socket and one engine.  A
connection is a sequence of length-prefixed JSON frames (see
:mod:`repro.io` for the bytes and :mod:`repro.server.protocol` for the
messages); each connection gets its own :class:`~repro.store.Session`
and its own transaction-handle namespace, so the wire API mirrors the
embedded one — begin, stage, commit, read — with the same exceptions
coming back as typed error payloads.

Robustness posture:

* A frame that *delimits* but does not *parse* (bad JSON, non-object
  payload, unknown op) costs exactly one ``bad-frame``/
  ``protocol-error`` response; the connection — and the accept loop —
  live on.  The fuzz sweep in ``tests/test_server_protocol.py`` holds
  the server to that.
* A frame whose declared length exceeds the cap is *fatal* for that
  connection (the stream offset can no longer be trusted) but for that
  connection only.
* The connection pool is bounded: over-capacity connections receive one
  ``overloaded`` error frame and are closed before any session state is
  allocated.
* Commits run on executor threads behind a bounded semaphore — when the
  commit queue is at depth, further writers *wait* (backpressure)
  rather than stacking unbounded blocking work.
* A disconnect mid-commit closes the session, which flips the closed
  flag the :meth:`Session.commit` retry loop observes — in-flight
  conflicts surface instead of retrying into a dead connection.

A server constructed over a :class:`~repro.server.replica.ReplicaEngine`
is read-only: write ops answer ``read-only``, reads are served from the
replica's graph, and a background task keeps :meth:`ReplicaEngine.sync`
ticking so staleness stays bounded while the primary writes.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any

from repro.errors import EpochFenced, ProtocolError, StoreError
from repro.io import FRAME_HEADER, MAX_FRAME_BYTES, encode_frame
from repro.kernel.batch import sweep_counts
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.server import protocol
from repro.server.replica import ReplicaEngine
from repro.store.engine import StoreEngine
from repro.store.session import Session, SessionService


class _Connection:
    """Per-connection state: one session, one txn-handle namespace."""

    __slots__ = ("branch", "session", "txns", "_next_txn")

    def __init__(self) -> None:
        self.branch = "main"
        self.session: Session | None = None
        self.txns: dict[str, Any] = {}
        self._next_txn = 0

    def new_handle(self) -> str:
        self._next_txn += 1
        return f"t{self._next_txn}"


class StoreServer:
    """Serve one engine over a listening socket.

    Parameters
    ----------
    engine:
        A :class:`StoreEngine` (primary — read/write) or a
        :class:`ReplicaEngine` (read-only; a background task keeps it
        synced every ``sync_interval`` seconds).
    host, port:
        Bind address; ``port=0`` picks a free port, readable from
        :attr:`address` after start.
    max_connections:
        Bound on simultaneously served connections; excess connections
        get one ``overloaded`` error frame and are closed.
    max_inflight_commits:
        Bound on commits running on executor threads at once — the
        write-backpressure knob.  Further commit requests queue on the
        semaphore (their connections simply wait; nothing is dropped).
    idle_timeout:
        Seconds a connection may sit between frames before the server
        closes it (``None``, the default, never does) — abandoned
        connections otherwise pin the bounded connection cap forever.
    cluster:
        An optional health view — anything with a ``gossip() -> dict``
        (a :class:`~repro.server.cluster.HealthMonitor`); when set,
        ``status`` responses carry it as their ``cluster`` field, so
        any client can ask one node what it believes about the others.
    metrics, tracer:
        The observability pair the ``metrics`` op serves.  By default
        the server builds its own :class:`MetricsRegistry` and
        :class:`Tracer` and attaches them to the engine
        (``attach_observability``), so a plain ``serve --listen``
        already records commit-phase histograms; pass shared instances
        to aggregate several servers into one registry.  The server's
        own counters (``server.*``) live in the registry; the old
        ``_commits``-style attributes remain as read-only views.
    slow_commit_threshold:
        Seconds past which a commit lands in the engine's structured
        slow-commit log (default 0.1; ``None`` disables the log).
    """

    def __init__(self, engine: StoreEngine | ReplicaEngine,
                 host: str = "127.0.0.1", port: int = 0,
                 max_connections: int = 64,
                 max_inflight_commits: int = 8,
                 sync_interval: float = 0.02,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 idle_timeout: float | None = None,
                 cluster: Any = None,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 slow_commit_threshold: float | None = 0.1):
        self.engine = engine
        self.cluster = cluster
        self.read_only = isinstance(engine, ReplicaEngine)
        self.service = None if self.read_only else SessionService(engine)
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.max_inflight_commits = max_inflight_commits
        self.sync_interval = sync_interval
        self.max_frame_bytes = max_frame_bytes
        if idle_timeout is not None and idle_timeout <= 0:
            raise StoreError(
                f"idle_timeout must be positive (or None), "
                f"got {idle_timeout}")
        self.idle_timeout = idle_timeout
        self.address: tuple[str, int] | None = None
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._commit_slots: asyncio.Semaphore | None = None
        self._sync_task: asyncio.Task | None = None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None \
            else Tracer(clock=self.metrics.clock)
        engine.attach_observability(
            self.metrics, self.tracer,
            slow_commit_threshold=slow_commit_threshold)
        m = self.metrics
        self._g_connections = m.gauge("server.connections")
        self._g_inflight = m.gauge("server.inflight_commits")
        self._c_commits = m.counter("server.commits")
        self._c_rejected_overloaded = m.counter("server.rejected_overloaded")
        self._c_frames_served = m.counter("server.frames_served")
        self._c_bad_frames = m.counter("server.bad_frames")
        self._c_idle_closed = m.counter("server.idle_closed")

    # The pre-registry counter attributes, kept as read-only views so
    # existing tests and callers keep working; the registry is the
    # source of truth.
    @property
    def _connections(self) -> int:
        return int(self._g_connections.value)

    @property
    def _inflight_commits(self) -> int:
        return int(self._g_inflight.value)

    @property
    def _commits(self) -> int:
        return self._c_commits.value

    @property
    def _rejected_overloaded(self) -> int:
        return self._c_rejected_overloaded.value

    @property
    def _frames_served(self) -> int:
        return self._c_frames_served.value

    @property
    def _bad_frames(self) -> int:
        return self._c_bad_frames.value

    @property
    def _idle_closed(self) -> int:
        return self._c_idle_closed.value

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def _start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._commit_slots = asyncio.Semaphore(self.max_inflight_commits)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        if self.read_only and self.sync_interval:
            self._sync_task = self._loop.create_task(self._sync_forever())

    async def _stop(self) -> None:
        if self._sync_task is not None:
            self._sync_task.cancel()
            try:
                await self._sync_task
            except asyncio.CancelledError:
                pass
            self._sync_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        handlers = [t for t in asyncio.all_tasks()
                    if t is not asyncio.current_task()]
        for task in handlers:
            task.cancel()
        await asyncio.gather(*handlers, return_exceptions=True)
        if self.service is not None:
            self.service.close_all()

    async def serve_forever(self) -> None:
        """Run in the caller's event loop until cancelled (CLI mode)."""
        await self._start()
        try:
            await self._server.serve_forever()
        finally:
            await self._stop()

    def start_background(self) -> tuple[str, int]:
        """Run the server on a dedicated daemon thread; returns the
        bound ``(host, port)`` once accepting."""
        if self._thread is not None:
            raise StoreError("server already started")

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            try:
                try:
                    loop.run_until_complete(self._start())
                except BaseException as exc:  # bind failures etc.
                    self._startup_error = exc
                    return
                finally:
                    self._started.set()
                loop.run_forever()
                loop.run_until_complete(self._stop())
            finally:
                asyncio.set_event_loop(None)
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-store-server", daemon=True)
        self._thread.start()
        self._started.wait(10.0)
        if self._startup_error is not None:
            self._thread.join(1.0)
            self._thread = None
            raise self._startup_error
        if self.address is None:
            raise StoreError("server failed to start within 10s")
        return self.address

    def stop(self) -> None:
        """Stop a background server: close the listener, cancel the
        sync task, close every session, join the thread."""
        if self._thread is None:
            return
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        self._thread.join(10.0)
        self._thread = None
        self._started.clear()
        self.address = None

    def __enter__(self) -> "StoreServer":
        self.start_background()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # replica upkeep
    # ------------------------------------------------------------------
    async def _sync_forever(self) -> None:
        assert isinstance(self.engine, ReplicaEngine)
        while True:
            try:
                await self._loop.run_in_executor(None, self.engine.sync)
            except EpochFenced:
                # Promoted out from under the server (or pinned to a
                # demoted epoch): the replica will never tail again —
                # keep serving its graph, stop burning the poll.
                return
            except StoreError:
                # Tail pruned out from under the cursor — re-bootstrap
                # from the newest checkpoint and keep following.
                try:
                    await self._loop.run_in_executor(
                        None, self.engine.resync)
                except StoreError:
                    pass  # primary mid-rotation; next tick retries
            await asyncio.sleep(self.sync_interval)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        if self._connections >= self.max_connections:
            self._c_rejected_overloaded.inc()
            await self._send(writer, protocol.error_response(
                None, "overloaded",
                f"server at capacity ({self.max_connections} connections)",
                fatal=True))
            writer.close()
            return
        self._g_connections.inc()
        conn = _Connection()
        try:
            while True:
                try:
                    if self.idle_timeout is not None:
                        message = await asyncio.wait_for(
                            self._read_frame(reader), self.idle_timeout)
                    else:
                        message = await self._read_frame(reader)
                except asyncio.IncompleteReadError:
                    break  # client went away (possibly mid-frame)
                except asyncio.TimeoutError:
                    self._c_idle_closed.inc()
                    break  # idle past the bound: free the slot
                except ProtocolError as exc:
                    fatal = getattr(exc, "fatal", False)
                    self._c_bad_frames.inc()
                    await self._send(writer, protocol.error_response(
                        None, "bad-frame", str(exc), fatal=fatal))
                    if fatal:
                        break
                    continue
                response = await self._dispatch(conn, message)
                self._c_frames_served.inc()
                await self._send(writer, response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._g_connections.dec()
            if conn.session is not None:
                try:
                    conn.session.close()
                except StoreError:
                    pass
            writer.close()

    async def _read_frame(self, reader: asyncio.StreamReader) -> dict:
        header = await reader.readexactly(FRAME_HEADER.size)
        (length,) = FRAME_HEADER.unpack(header)
        if length > self.max_frame_bytes:
            exc = ProtocolError(
                f"declared frame length {length} exceeds the "
                f"{self.max_frame_bytes}-byte cap")
            exc.fatal = True  # stream offset no longer trustworthy
            raise exc
        payload = await reader.readexactly(length)
        try:
            message = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as bad:
            raise ProtocolError(f"frame payload is not JSON: {bad}") \
                from bad
        if not isinstance(message, dict):
            raise ProtocolError(
                f"frame payload must be a JSON object, got "
                f"{type(message).__name__}")
        return message

    async def _send(self, writer: asyncio.StreamWriter,
                    message: dict) -> None:
        writer.write(encode_frame(message))
        await writer.drain()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, conn: _Connection, message: dict) -> dict:
        try:
            rid, op = protocol.validate_request(message)
        except ProtocolError as exc:
            self._c_bad_frames.inc()
            return {"id": message.get("id") if not isinstance(
                        message.get("id"), (dict, list)) else None,
                    "ok": False, "error": protocol.error_payload(exc)}
        # Dispatch tracing is explicit timestamps, not a span context
        # manager: the handler awaits, and a span held across an await
        # would adopt concurrent dispatches as children.
        tracer = self.tracer
        start = tracer.clock() if tracer.enabled else 0.0
        self.metrics.counter(f"server.ops.{op}").inc()
        try:
            handler = getattr(self, f"_op_{op}")
            response = await handler(conn, rid, message)
        except Exception as exc:  # typed errors -> typed payloads
            response = {"id": rid, "ok": False,
                        "error": protocol.error_payload(exc)}
        if tracer.enabled:
            end = tracer.clock()
            tracer.record({
                "name": "server.dispatch", "start": start, "end": end,
                "duration": end - start,
                "tags": {"op": op, "ok": bool(response.get("ok"))},
                "spans": [],
            })
        return response

    @property
    def _store(self) -> StoreEngine:
        """The graph-bearing engine (the replica's inner one when
        read-only)."""
        if self.read_only:
            return self.engine.engine  # raises StoreError until ready
        return self.engine

    def _require_writable(self, op: str) -> None:
        if self.read_only:
            raise StoreError(f"'{op}' is not served by a read-only "
                             "replica; connect to the primary")

    async def _op_hello(self, conn, rid, message) -> dict:
        branch = message.get("branch", "main")
        if not isinstance(branch, str):
            raise ProtocolError("'branch' must be a string")
        store = self._store
        store.head_version(branch)  # fail fast on unknown branches
        conn.branch = branch
        if conn.session is not None:
            conn.session.close()
            conn.session = None
        summary = store.describe()
        return protocol.ok_response(
            rid, protocol=protocol.PROTOCOL_VERSION,
            role="replica" if self.read_only else "primary",
            epoch=summary.get("epoch", 0),
            branch=branch, branches=summary["branches"],
            relations=summary["relations"],
            validation=summary["validation"])

    async def _op_ping(self, conn, rid, message) -> dict:
        return protocol.ok_response(rid, pong=True)

    def _status_counters(self) -> dict:
        """The registry's counters and gauges as one flat name->number
        map — the ``counters`` section of the status schema."""
        snap = self.metrics.snapshot()
        counters = dict(snap["counters"])
        counters.update(snap["gauges"])
        return counters

    async def _op_status(self, conn, rid, message) -> dict:
        gossip = ({} if self.cluster is None
                  else {"cluster": self.cluster.gossip()})
        if self.read_only:
            body = self.engine.status()
            counters = dict(body.get("counters", {}))
            counters.update(self._status_counters())
            body["counters"] = counters
            return protocol.ok_response(rid, **body, **gossip)
        summary = self.engine.describe()
        return protocol.ok_response(rid, **gossip, **protocol.status_payload(
            role="primary",
            epoch=summary.get("epoch", 0),
            ready=True,
            counters=self._status_counters(),
            connections=self._connections,
            max_connections=self.max_connections,
            inflight_commits=self._inflight_commits,
            max_inflight_commits=self.max_inflight_commits,
            commits=self._commits,
            frames_served=self._frames_served,
            bad_frames=self._bad_frames,
            rejected_overloaded=self._rejected_overloaded,
            idle_closed=self._idle_closed,
            live_sessions=len(self.service.live_sessions()),
            seq=summary["seq"], versions=summary["versions"],
            branches=summary["branches"]))

    async def _op_metrics(self, conn, rid, message) -> dict:
        traces = message.get("traces", 0)
        if isinstance(traces, bool) or not isinstance(traces, int) \
                or traces < 0:
            raise ProtocolError("'traces' must be a non-negative integer")
        snapshot = self.metrics.snapshot()
        # The kernel cannot hold a registry (it never imports upward);
        # its process-wide sweep counters are sampled in at read time.
        snapshot["counters"].update(
            {f"kernel.sweep.{k}": v for k, v in sweep_counts().items()})
        payload: dict[str, Any] = {
            "metrics": snapshot,
            "slow_commits": list(getattr(self.engine,
                                         "slow_commits", ()) or ()),
        }
        if traces:
            payload["traces"] = self.tracer.slowest(traces)
        return protocol.ok_response(rid, **payload)

    def _session(self, conn: _Connection) -> Session:
        if conn.session is None:
            conn.session = self.service.session(conn.branch)
        return conn.session

    async def _op_begin(self, conn, rid, message) -> dict:
        self._require_writable("begin")
        txn = self._session(conn).begin()
        handle = conn.new_handle()
        conn.txns[handle] = txn
        return protocol.ok_response(rid, txn=handle, base=txn.base.vid)

    def _txn_for(self, conn: _Connection, message: dict):
        handle = message.get("txn")
        if not isinstance(handle, str):
            raise ProtocolError("'txn' must be a transaction handle "
                                "string from 'begin'")
        try:
            return handle, conn.txns[handle]
        except KeyError:
            raise StoreError(
                f"unknown transaction handle {handle!r} (already "
                "committed, or from another connection?)") from None

    async def _op_stage(self, conn, rid, message) -> dict:
        self._require_writable("stage")
        handle, txn = self._txn_for(conn, message)
        ops = message.get("ops")
        if not isinstance(ops, list):
            raise ProtocolError("'ops' must be a list of op records")
        before = len(txn.ops)
        try:
            txn.apply_records(ops)
        except Exception:
            del txn.ops[before:]  # a failed stage leaves the txn as-was
            raise
        return protocol.ok_response(rid, txn=handle,
                                    staged=len(txn.ops))

    async def _op_commit(self, conn, rid, message) -> dict:
        self._require_writable("commit")
        handle, txn = self._txn_for(conn, message)
        del conn.txns[handle]  # the handle is consumed either way
        session = self._session(conn)
        async with self._commit_slots:  # write backpressure
            self._g_inflight.inc()
            try:
                version = await self._loop.run_in_executor(
                    None, session.commit, txn)
            finally:
                self._g_inflight.dec()
        self._c_commits.inc()
        parent = version.parent.vid if version.parent is not None else None
        return protocol.ok_response(rid, version=version.vid,
                                    parent=parent, branch=version.branch)

    async def _op_read(self, conn, rid, message) -> dict:
        relation = message.get("relation")
        if not isinstance(relation, str):
            raise ProtocolError("'relation' must be a string")
        branch = message.get("branch", conn.branch)
        at = message.get("at")
        if at is not None and not isinstance(at, str):
            raise ProtocolError("'at' must be a version id string")
        store = self._store
        version = store.graph.get(at) if at is not None \
            else store.head_version(branch)
        rows = [t.as_dict() for t in version.state.R(relation)]
        return protocol.ok_response(rid, relation=relation, rows=rows,
                                    version=version.vid)

    async def _op_branch(self, conn, rid, message) -> dict:
        self._require_writable("branch")
        name = message.get("name")
        if not isinstance(name, str):
            raise ProtocolError("'name' must be a branch name string")
        at = message.get("at")
        from_branch = message.get("from_branch", conn.branch)
        version = await self._loop.run_in_executor(
            None, self.engine.branch, name, at, from_branch)
        return protocol.ok_response(rid, branch=name, at=version.vid)
