"""Failover: replica promotion, epoch fencing, and resilient clients.

The server stack so far has a single point of failure: one primary owns
the WAL, replicas can only follow it.  This module completes the loop:

* :func:`promote` turns a caught-up :class:`ReplicaEngine` into a
  read/write :class:`~repro.store.StoreEngine` — finish the tail,
  apply the PR-6 torn-tail repair, stamp the next **epoch** into the
  log, adopt it for writing.  The stamp is the fence: a demoted
  primary's next append raises :class:`~repro.errors.EpochFenced`
  instead of silently forking history (the Alexandrov reading from
  PAPERS.md — the epoch is an explicit dimension of the version graph,
  not an ambient assumption).
* :class:`RetryPolicy` is the reusable retry loop: exponential backoff
  with *decorrelated jitter*, per-operation deadlines, and a typed
  retryable-vs-fatal classification (transport and capacity errors
  heal with time; semantic errors — a rejected commit stays rejected —
  never do).
* :class:`FailoverClient` drives a fleet of addresses through a
  kill-and-promote event: it tracks the highest epoch it has seen and
  refuses stale primaries (client-side fencing), queues writes until
  promotion completes or the deadline lapses, and lets reads degrade
  to a replica within a bounded staleness budget.

What promotion does — and does not — guarantee: every record durably
in the log at promotion time is in the promoted graph (the
differential suite holds the promoted graph byte-identical to a full
replay of the crashed primary's durable prefix), and no *old-epoch*
write can land after the stamp.  Writes the old primary acknowledged
but never durably logged are gone — exactly the WAL's own crash
contract, now spanning two machines.
"""

from __future__ import annotations

import time
from random import Random
from typing import Any, Callable, Iterable, Sequence

from repro.errors import (
    DeadlineExceeded,
    EpochFenced,
    ProtocolError,
    ServerOverloaded,
    StoreError,
)
from repro.obs.metrics import MetricsRegistry
from repro.server.client import StoreClient
from repro.server.replica import ReplicaEngine
from repro.store.engine import StoreEngine
from repro.store.wal import WriteAheadLog


# ----------------------------------------------------------------------
# promotion
# ----------------------------------------------------------------------
def promote(replica: ReplicaEngine, timeout: float = 5.0,
            sync: bool = False, segment_records: int | None = None,
            segment_bytes: int | None = None) -> StoreEngine:
    """Promote ``replica`` to primary over the log it was tailing.

    The contract, in order:

    1. **Finish the tail** — :meth:`ReplicaEngine.sync` applies every
       complete record already durable in the log.
    2. **Repair** — :meth:`WriteAheadLog.repair` truncates a torn
       final line (the crashed primary's in-flight append; never
       acknowledged, so dropping it loses nothing acknowledged-and-
       durable), then a final catch-up drains what repair exposed.
       Anything still unconsumed after that is a *live* tail — the old
       primary is not actually dead — and promotion refuses.
    3. **Stamp the epoch** — a fresh :class:`WriteAheadLog` handle is
       opened on the log, :meth:`~WriteAheadLog.stamp_epoch` writes an
       ``epoch`` record (new epoch number, the graph's sequence
       counter and branch heads at takeover) heading a fresh segment,
       fsynced.  From this instant every old-epoch handle is fenced.
    4. **Adopt** — the replica's inner engine takes the stamped log as
       its own WAL (:meth:`StoreEngine.adopt_wal`) and is returned,
       ready to serve writes (wrap it in a new
       :class:`~repro.server.StoreServer`).

    The replica is marked *promoted* before the stamp lands, so a
    racing background sync can never re-apply the promotion record to
    the engine that wrote it; if the stamp loses a promotion race
    (:class:`EpochFenced` — another replica stamped first), the mark
    is rolled back and this replica resumes following the winner.

    Two promotions of the same log race safely: epochs must advance,
    so exactly one stamp wins and the loser raises.
    """
    replica.sync()
    repaired = WriteAheadLog.repair(replica.wal_path)
    replica.catch_up(timeout=timeout)
    behind = replica.behind_bytes()
    if behind:
        raise StoreError(
            f"cannot promote: {behind} bytes of log tail are still "
            f"unconsumed after catch-up and repair (dropped "
            f"{repaired} torn bytes) — the old primary appears to be "
            "alive and writing; stop it first")
    engine = replica.engine  # raises until the replica bootstrapped
    replica.mark_promoted()
    try:
        wal = WriteAheadLog(replica.wal_path, sync=sync,
                            segment_records=segment_records,
                            segment_bytes=segment_bytes)
        if wal.epoch > engine.epoch or replica.behind_bytes():
            # Another promotion (or its first writes) landed between
            # our catch-up and opening the handle; that stamp is the
            # truth and this one must lose.
            raise EpochFenced(
                f"promotion raced and lost: the log advanced to epoch "
                f"{wal.epoch} past this replica's epoch {engine.epoch}",
                held=engine.epoch, current=wal.epoch)
        wal.stamp_epoch(seq=engine.graph.seq,
                        heads=engine.graph.branches())
    except EpochFenced:
        replica.unmark_promoted()  # lost the race: follow the winner
        raise
    engine.adopt_wal(wal)
    return engine


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
class RetryPolicy:
    """Exponential backoff with decorrelated jitter plus a typed
    retryable-vs-fatal classification.

    Retryable (heal with time): ``OSError`` (covers ``ConnectionError``
    and socket timeouts), :class:`ProtocolError` (torn streams, lost
    frames), :class:`ServerOverloaded` (capacity frees up).  Fatal
    (retrying replays the failure): everything else — a rejected
    commit, an unknown branch, a malformed row.  :class:`EpochFenced`
    is deliberately *fatal here*: retrying the same peer under a stale
    epoch can never succeed; only :class:`FailoverClient`, which can
    re-resolve the primary, treats it as a reason to try again
    elsewhere.

    Delays follow the decorrelated-jitter scheme: each sleep is drawn
    uniformly from ``[base_delay, 3 * previous]``, capped at
    ``max_delay`` — retries spread out instead of synchronising into
    thundering herds.  Pass ``seed`` to make the sequence
    deterministic (the chaos suite does).

    ``deadline`` bounds one :meth:`call` end to end: when the next
    sleep would overrun it, :class:`DeadlineExceeded` is raised with
    the last underlying failure chained as ``__cause__``.
    """

    RETRYABLE: tuple[type[BaseException], ...] = (
        OSError, ProtocolError, ServerOverloaded)

    def __init__(self, max_attempts: int = 6,
                 base_delay: float = 0.005, max_delay: float = 1.0,
                 deadline: float | None = None,
                 seed: int | None = None,
                 retryable: tuple[type[BaseException], ...] | None = None,
                 metrics: MetricsRegistry | None = None):
        if max_attempts < 1:
            raise StoreError(
                f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.deadline = deadline
        self.seed = seed
        self.retryable_types = (self.RETRYABLE if retryable is None
                                else tuple(retryable))
        self._rng = Random(seed)
        self._c_retries = (None if metrics is None
                           else metrics.counter("retry.retries"))

    def retryable(self, exc: BaseException) -> bool:
        """Whether waiting and retrying can plausibly fix ``exc``."""
        if isinstance(exc, EpochFenced):
            return False  # same peer + stale epoch never heals
        return isinstance(exc, self.retryable_types)

    def next_delay(self, previous: float | None = None) -> float:
        """The next sleep: uniform over ``[base, 3*previous]``, capped."""
        previous = self.base_delay if previous is None else previous
        high = max(self.base_delay, previous * 3.0)
        return min(self.max_delay,
                   self._rng.uniform(self.base_delay, high))

    def sleep(self, delay: float) -> None:  # overridable in tests
        time.sleep(delay)

    def call(self, fn: Callable[..., Any], *args: Any,
             deadline: float | None = None, **kwargs: Any) -> Any:
        """Run ``fn`` under the policy: retry retryable failures with
        backoff, re-raise fatal ones immediately, raise
        :class:`DeadlineExceeded` (last failure chained) when the
        deadline would lapse, and re-raise the last failure when
        attempts run out."""
        deadline = self.deadline if deadline is None else deadline
        deadline_at = (time.monotonic() + deadline
                       if deadline is not None else None)
        delay: float | None = None
        last: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn(*args, **kwargs)
            except Exception as exc:
                if not self.retryable(exc):
                    raise
                last = exc
            if attempt == self.max_attempts:
                break
            delay = self.next_delay(delay)
            if (deadline_at is not None
                    and time.monotonic() + delay > deadline_at):
                raise DeadlineExceeded(
                    f"{deadline}s deadline lapsed after {attempt} "
                    f"attempt(s); last failure: {last}") from last
            if self._c_retries is not None:
                self._c_retries.inc()
            self.sleep(delay)
        raise last

    def __repr__(self) -> str:
        return (f"RetryPolicy(max_attempts={self.max_attempts}, "
                f"base_delay={self.base_delay}, "
                f"max_delay={self.max_delay}, "
                f"deadline={self.deadline}, seed={self.seed})")


# ----------------------------------------------------------------------
# the failover client
# ----------------------------------------------------------------------
class FailoverClient:
    """A client that survives a kill-and-promote event.

    Holds a *candidate list* of server addresses — the current
    primary, its replicas, and (via :meth:`add_address`) whatever gets
    promoted later.  One live primary connection is maintained
    lazily; every address is dialled and asked ``hello`` until one
    answers ``role == "primary"`` with an epoch no lower than the
    highest this client has seen.  That epoch floor is the client-side
    fence: after talking to the promoted primary (epoch *n*), a
    still-running stale primary (epoch *n-1*) is refused even though
    it answers — the client can never be fooled into writing to the
    loser of a failover.

    Write path: :meth:`run` (and the :meth:`queue`/:meth:`flush`
    buffer) keeps trying — reconnecting through the candidate list
    with the policy's backoff — until the commit lands or ``deadline``
    seconds lapse (:class:`DeadlineExceeded`, last failure chained).
    Fatal errors (a rejected commit) surface immediately.  A lost ack
    (disconnect mid-commit) is retried; the store's validation makes
    re-running an already-applied insert/delete batch a no-op commit,
    so the retry is safe.

    Read path: :meth:`read` prefers the primary; when no primary is
    reachable it degrades to any replica whose reported
    ``behind_bytes`` is within ``staleness_budget`` (``None`` budget
    = any replica).  Heartbeats (:meth:`heartbeat`) and the pooled
    :meth:`StoreClient.is_stale` peek detect dead peers between
    operations without a round trip.
    """

    def __init__(self, addresses: Iterable[Sequence],
                 branch: str = "main",
                 policy: RetryPolicy | None = None,
                 deadline: float = 10.0,
                 staleness_budget: int | None = None,
                 timeout: float = 5.0,
                 metrics: MetricsRegistry | None = None):
        self.addresses: list[tuple[str, int]] = [
            (str(a[0]), int(a[1])) for a in addresses]
        if not self.addresses:
            raise StoreError("failover client needs at least one address")
        self.branch = branch
        self.policy = policy or RetryPolicy()
        self.deadline = deadline
        self.staleness_budget = staleness_budget
        self.timeout = timeout
        self.epoch = 0  # highest epoch witnessed; the client-side fence
        self._client: StoreClient | None = None
        self._queue: list[list[dict]] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._c_reconnects = self.metrics.counter("failover.reconnects")
        self._c_fenced = self.metrics.counter("failover.fenced")
        self._c_retries = self.metrics.counter("failover.retries")
        self._c_replica_reads = self.metrics.counter(
            "failover.replica_reads")

    # -- membership ----------------------------------------------------
    def add_address(self, address: Sequence) -> None:
        """Add a candidate (e.g. the server wrapping a just-promoted
        engine) — idempotent."""
        addr = (str(address[0]), int(address[1]))
        if addr not in self.addresses:
            self.addresses.append(addr)

    # -- connection management ----------------------------------------
    def _drop_client(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    def _connect_primary(self) -> StoreClient:
        """Dial the candidate list for a primary at (or past) the
        epoch floor; raises the last failure when none qualifies."""
        last: BaseException | None = None
        for addr in self.addresses:
            try:
                client = StoreClient(*addr, branch=self.branch,
                                     timeout=self.timeout)
            except Exception as exc:
                last = exc
                continue
            if client.role != "primary":
                client.close()
                last = StoreError(f"{addr} is a replica, not a primary")
                continue
            epoch = client.server_epoch
            if epoch < self.epoch:
                client.close()
                last = EpochFenced(
                    f"{addr} serves stale epoch {epoch}; this client "
                    f"has seen epoch {self.epoch}",
                    held=epoch, current=self.epoch)
                continue
            self.epoch = epoch
            self._c_reconnects.inc()
            return client
        raise last if last is not None else StoreError(
            "no candidate addresses")

    def _primary(self) -> StoreClient:
        if self._client is not None and self._client.is_stale():
            self._drop_client()
        if self._client is None:
            self._client = self._connect_primary()
        return self._client

    def heartbeat(self) -> bool:
        """Ping the held primary connection; a dead peer is dropped
        (the next operation re-resolves) and reported as ``False``."""
        if self._client is None:
            return False
        try:
            return self._client.ping()
        except Exception:
            self._drop_client()
            return False

    # -- writes --------------------------------------------------------
    def run(self, ops: Iterable[dict],
            deadline: float | None = None) -> dict:
        """One transaction (begin, stage ``ops``, commit) against the
        current primary, surviving reconnects and promotions until it
        lands or the deadline lapses."""
        ops = list(ops)
        deadline = self.deadline if deadline is None else deadline
        return self._until(lambda c: c.run(ops),
                           time.monotonic() + deadline)

    def queue(self, ops: Iterable[dict]) -> int:
        """Buffer a write batch for :meth:`flush` (the degraded mode
        while no primary is reachable); returns the queue depth."""
        self._queue.append(list(ops))
        return len(self._queue)

    @property
    def queued(self) -> int:
        return len(self._queue)

    def flush(self, deadline: float | None = None) -> list[dict]:
        """Drain the write queue in order under one shared deadline.
        Batches that landed stay landed — a lapsed deadline leaves the
        unflushed suffix queued for the next flush."""
        deadline = self.deadline if deadline is None else deadline
        deadline_at = time.monotonic() + deadline
        results: list[dict] = []
        while self._queue:
            ops = self._queue[0]
            results.append(
                self._until(lambda c: c.run(ops), deadline_at))
            self._queue.pop(0)
        return results

    def _until(self, op: Callable[[StoreClient], Any],
               deadline_at: float) -> Any:
        """Run ``op`` against a (re)resolved primary until it succeeds,
        the deadline lapses, or a fatal error surfaces."""
        delay: float | None = None
        last: BaseException | None = None
        while True:
            try:
                client = self._primary()
            except Exception as exc:
                # Resolution failures — every candidate down, only
                # replicas answering, or all primaries stale — always
                # retry: a promotion in flight heals exactly this.
                if isinstance(exc, EpochFenced):
                    self.epoch = max(self.epoch, exc.current)
                    self._c_fenced.inc()
                self._drop_client()
                last = exc
            else:
                try:
                    return op(client)
                except EpochFenced as exc:
                    # Demoted mid-conversation: drop it and re-resolve
                    # — the promoted one may already be listed.
                    self.epoch = max(self.epoch, exc.current)
                    self._c_fenced.inc()
                    self._drop_client()
                    last = exc
                except Exception as exc:
                    if not self.policy.retryable(exc):
                        raise
                    self._drop_client()
                    last = exc
            delay = self.policy.next_delay(delay)
            if time.monotonic() + delay > deadline_at:
                raise DeadlineExceeded(
                    f"no primary accepted the operation before the "
                    f"deadline; last failure: {last}") from last
            self._c_retries.inc()
            self.policy.sleep(delay)

    # -- reads ---------------------------------------------------------
    def read(self, relation: str, branch: str | None = None) -> list[dict]:
        """Rows from the primary; degrades to a replica within the
        staleness budget when no primary is reachable."""
        try:
            client = self._primary()
        except Exception:
            # No reachable primary at all: a replica read is the
            # designed degradation for exactly this state.
            self._drop_client()
            rows = self._read_from_replica(relation, branch)
            if rows is None:
                raise
            return rows
        try:
            return client.read(relation, branch=branch)
        except Exception as exc:
            if not (self.policy.retryable(exc)
                    or isinstance(exc, EpochFenced)):
                raise  # semantic failure (unknown relation): no replica
                # read can answer differently
            self._drop_client()
            rows = self._read_from_replica(relation, branch)
            if rows is None:
                raise
            return rows

    def _read_from_replica(self, relation: str,
                           branch: str | None) -> list[dict] | None:
        for addr in self.addresses:
            client = None
            try:
                client = StoreClient(*addr, branch=self.branch,
                                     timeout=self.timeout)
                if client.role != "replica":
                    continue
                status = client.status()
                behind = status.get("behind_bytes")
                if (self.staleness_budget is not None
                        and (behind is None
                             or behind > self.staleness_budget)):
                    continue
                rows = client.read(relation, branch=branch)
                self._c_replica_reads.inc()
                return rows
            except Exception:
                continue
            finally:
                if client is not None:
                    client.close()
        return None

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._drop_client()

    def __enter__(self) -> "FailoverClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"FailoverClient({self.addresses}, epoch={self.epoch}, "
                f"queued={len(self._queue)})")
