"""Exception hierarchy for the reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch a single base class.  Axiom violations carry structured
diagnostics (which axiom, which offending objects) so design tools can
report them without parsing messages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class TopologyError(ReproError):
    """A family of sets failed to satisfy the topology axioms."""


class PresheafError(ReproError):
    """A presheaf violated a functor law or a restriction-map constraint."""


class RelationError(ReproError):
    """An ill-formed relation, tuple, or relational-algebra application."""


class SchemaError(ReproError):
    """An ill-formed schema component (attribute, entity type, universe)."""


class AxiomViolationError(SchemaError):
    """One of the six design axioms is violated.

    Attributes
    ----------
    axiom:
        Name of the violated axiom, e.g. ``"Entity Type Axiom"``.
    offenders:
        Tuple of the objects (names, entity types, ...) that witness the
        violation.
    """

    def __init__(self, axiom: str, message: str, offenders: tuple = ()):
        super().__init__(f"{axiom}: {message}")
        self.axiom = axiom
        self.offenders = offenders


class ExtensionError(ReproError):
    """An extension (set of instances) is inconsistent with its intension."""


class ContainmentError(ExtensionError):
    """The Containment Condition pi_e^s(R_s) subseteq R_e failed."""


class DependencyError(ReproError):
    """An ill-formed or inapplicable functional dependency."""


class DerivationError(DependencyError):
    """A requested FD derivation does not exist."""


class ViewError(ReproError):
    """An ill-formed entity view type or an untranslatable view update."""


class EvolutionError(ReproError):
    """A schema change cannot be applied or analysed."""


class IncompleteInformationError(ReproError):
    """Misuse of boolean-algebra-structured (null-carrying) domains."""


class StoreError(ReproError):
    """Misuse of the versioned store (unknown version/branch, bad root)."""


class ProtocolError(ReproError):
    """A malformed wire-protocol frame or message.

    Covers both framing failures (oversized or truncated length-prefixed
    frames, payloads that are not JSON objects) and message-level ones
    (unknown ops, missing fields).  Server connections answer these with
    structured error frames; only failures that desynchronise the byte
    stream itself close the connection.
    """


class StoreWarning(UserWarning):
    """Non-fatal store conditions surfaced through :mod:`warnings`
    (recoverable durability events, not API misuse — so they do not
    derive from :class:`ReproError`)."""


class TornTailWarning(StoreWarning):
    """A write-ahead log's final record was torn by a crash mid-append.

    The replayable prefix is complete and was kept;
    :meth:`repro.store.WriteAheadLog.repair` (run by
    :meth:`StoreEngine.replay`) truncates the torn bytes off the file.
    Corruption anywhere *before* the final record is not recoverable
    and raises :class:`StoreError` instead.
    """


class CommitRejected(StoreError):
    """A transaction's delta violates an axiom or integrity constraint.

    Attributes
    ----------
    findings:
        Tuple of structured diagnostics (dicts with ``check``,
        ``message``, and ``witnesses`` keys) describing every violation
        the commit-time validation found.
    """

    def __init__(self, message: str, findings: tuple = ()):
        super().__init__(message)
        self.findings = tuple(findings)


class EpochFenced(StoreError):
    """A write (or tail) raced a replica promotion and lost.

    Promotion stamps a new *epoch* into the write-ahead log; a demoted
    primary appending under the old epoch, or a replica pinned to it,
    is *fenced* — it fails with this error instead of silently diverging
    from the promoted history.

    Attributes
    ----------
    held:
        The epoch the fenced party believed was current.
    current:
        The epoch actually stamped in the log (``held < current``).
    """

    def __init__(self, message: str, held: int = 0, current: int = 0):
        super().__init__(message)
        self.held = held
        self.current = current


class ServerOverloaded(StoreError):
    """The server refused a connection or request at capacity.

    Transient by construction (capacity frees up as other connections
    finish), so retry policies classify it retryable — unlike most
    :class:`StoreError`\\ s, which are semantic and do not heal by
    waiting.
    """


class DeadlineExceeded(StoreError):
    """A retried operation ran out of deadline before it succeeded.

    Raised by :class:`repro.server.failover.RetryPolicy` (and the
    queue-flush loop of :class:`~repro.server.failover.FailoverClient`)
    with the last underlying failure chained as ``__cause__``, so the
    caller learns both *that* time ran out and *why* each attempt
    failed.
    """


class TransactionConflict(StoreError):
    """Optimistic concurrency failure: the transaction's footprint
    overlaps a commit that landed after its base version.

    Attributes
    ----------
    keys:
        Tuple of the overlapping ``(relation, attrs, projected-row)``
        conflict keys (empty when a wholesale replace forced the
        conflict).  Retrying against the new head usually succeeds.
    """

    def __init__(self, message: str, keys: tuple = ()):
        super().__init__(message)
        self.keys = tuple(keys)
