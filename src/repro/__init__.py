"""repro — a full reproduction of Siebes & Kersten (1987).

*Using Design Axioms and Topology to Model Database Semantics* (CWI report
CS-R8711) models a database's intension as a finite topological space over
entity types and its extension as projection-linked relations, with six
design axioms and an entity-level functional-dependency calculus on top.

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the paper's model: axioms, specialisation and
  generalisation topologies, contributors, subbase choice, extensions and
  their mappings, entity-level FDs with the Armstrong system, dependency
  mappings, integrity constraints, the design procedure, and schema
  evolution analysis.
* :mod:`repro.topology` — the finite-topology substrate (subbase
  generation, Alexandrov order, continuous maps, presheaves).
* :mod:`repro.relational` — the relational substrate (algebra, classical
  FD theory, chase, normalization baselines).
* :mod:`repro.universal`, :mod:`repro.ear` — the Universal Relation and
  EAR baselines the paper positions itself against.
* :mod:`repro.nulls` — the section-6 future work: boolean-algebra domains
  and incomplete information.
* :mod:`repro.workloads`, :mod:`repro.viz` — generators and renderers for
  the experiments in EXPERIMENTS.md.

Quickstart::

    from repro.core import Schema, SpecialisationStructure
    from repro.core.employee import employee_schema

    schema = employee_schema()
    spec = SpecialisationStructure(schema)
    print(sorted(e.name for e in spec.S(schema["person"])))
"""

from repro import core, ear, nulls, relational, topology, universal, viz, workloads
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "core",
    "ear",
    "nulls",
    "relational",
    "topology",
    "universal",
    "viz",
    "workloads",
    "ReproError",
    "__version__",
]
