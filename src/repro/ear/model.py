"""A compact Entity-Relationship (EAR) model (the Chen baseline).

The paper credits the EAR model with separating entities from
relationships but criticises its "lack of formalisation".  This module
gives the usual informal ingredients — entity sets, relationship sets with
cardinalities and total-participation marks — so that
:mod:`repro.ear.translate` can compile them into the axiom model and make
the comparison executable.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import SchemaError

CARDINALITIES = ("1:1", "1:n", "n:1", "n:m")


@dataclass(frozen=True)
class EAREntitySet:
    """An EAR entity set with its attribute names."""

    name: str
    attributes: frozenset[str]

    def __post_init__(self):
        if not self.name:
            raise SchemaError("an EAR entity set needs a name")
        if not self.attributes:
            raise SchemaError(f"EAR entity set {self.name!r} needs attributes")


@dataclass(frozen=True)
class EARRelationshipSet:
    """An EAR relationship set between two entity sets.

    ``cardinality`` is read left-to-right over ``(left, right)``;
    ``total`` lists participants that must all take part (existence
    dependency); ``attributes`` are the relationship's own descriptive
    attributes.
    """

    name: str
    left: str
    right: str
    cardinality: str = "n:m"
    attributes: frozenset[str] = frozenset()
    total: frozenset[str] = frozenset()

    def __post_init__(self):
        if self.cardinality not in CARDINALITIES:
            raise SchemaError(
                f"relationship {self.name!r} has unknown cardinality "
                f"{self.cardinality!r}; expected one of {CARDINALITIES}"
            )
        if self.left == self.right:
            raise SchemaError(
                f"relationship {self.name!r} is recursive; give the two roles "
                "distinct entity sets (the Attribute Axiom will demand role "
                "attributes anyway)"
            )
        stray = self.total - {self.left, self.right}
        if stray:
            raise SchemaError(
                f"relationship {self.name!r} marks non-participants as total: "
                f"{sorted(stray)}"
            )


@dataclass
class EARSchema:
    """A full EAR design: entity sets plus binary relationship sets."""

    entities: list[EAREntitySet] = field(default_factory=list)
    relationships: list[EARRelationshipSet] = field(default_factory=list)

    def __post_init__(self):
        names = [e.name for e in self.entities] + [r.name for r in self.relationships]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"duplicate EAR names: {sorted(duplicates)}")
        known = {e.name for e in self.entities}
        for r in self.relationships:
            for participant in (r.left, r.right):
                if participant not in known:
                    raise SchemaError(
                        f"relationship {r.name!r} references unknown entity "
                        f"set {participant!r}"
                    )

    def entity(self, name: str) -> EAREntitySet:
        for e in self.entities:
            if e.name == name:
                return e
        raise SchemaError(f"unknown EAR entity set: {name!r}")

    def all_attributes(self) -> frozenset[str]:
        out: set[str] = set()
        for e in self.entities:
            out |= e.attributes
        for r in self.relationships:
            out |= r.attributes
        return frozenset(out)


def employee_ear_schema() -> EARSchema:
    """The employee example as a classical EAR design, for comparisons."""
    return EARSchema(
        entities=[
            EAREntitySet("employee", frozenset({"name", "age"})),
            EAREntitySet("department", frozenset({"depname", "location"})),
        ],
        relationships=[
            EARRelationshipSet(
                "worksfor", "employee", "department",
                cardinality="n:1", total=frozenset({"employee"}),
            ),
        ],
    )
