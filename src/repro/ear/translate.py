"""Compiling an EAR design into the axiom model.

The translation realises the paper's reductions:

* an entity set becomes an entity type;
* a relationship set becomes an entity type whose attribute set is the
  union of its participants' (Relationship Axiom), its participants
  becoming the contributors;
* cardinalities become entity-level functional dependencies in the
  relationship's context (:class:`~repro.core.integrity.CardinalityConstraint`);
* total participation becomes a
  :class:`~repro.core.integrity.ParticipationConstraint`;
* attribute-name collisions between participants are resolved by role
  prefixes — the Attribute Axiom "forces us to make this information
  explicit by using a different name for each role".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.contributors import ContributorAssignment, canonical_contributors
from repro.core.integrity import (
    CardinalityConstraint,
    ConstraintSet,
    ParticipationConstraint,
)
from repro.core.schema import Schema
from repro.ear.model import EARSchema
from repro.errors import SchemaError


@dataclass
class TranslationResult:
    """The compiled axiom-model design plus an audit trail."""

    schema: Schema
    contributors: ContributorAssignment
    constraints: ConstraintSet
    renamed_attributes: dict[str, str] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)


def translate(ear: EARSchema,
              domains: dict[str, list] | None = None) -> TranslationResult:
    """Compile ``ear`` into a schema, contributor map, and constraints."""
    notes: list[str] = []
    renamed: dict[str, str] = {}

    entity_attrs: dict[str, set[str]] = {
        e.name: set(e.attributes) for e in ear.entities
    }

    # Resolve attribute collisions between distinct entity sets up front:
    # a shared name would merge the columns inside any relationship type.
    owner: dict[str, str] = {}
    for e in ear.entities:
        for a in sorted(e.attributes):
            if a in owner and owner[a] != e.name:
                fresh = f"{e.name}_{a}"
                entity_attrs[e.name].discard(a)
                entity_attrs[e.name].add(fresh)
                renamed[f"{e.name}.{a}"] = fresh
                notes.append(
                    f"attribute {a!r} is used by both {owner[a]!r} and "
                    f"{e.name!r}; renamed the latter's to {fresh!r} (Attribute "
                    "Axiom: one semantic role per name)"
                )
            else:
                owner.setdefault(a, e.name)

    relationship_attrs: dict[str, set[str]] = {}
    contributor_map: dict[str, list[str]] = {}
    for r in ear.relationships:
        attrs = set(entity_attrs[r.left]) | set(entity_attrs[r.right]) | set(r.attributes)
        relationship_attrs[r.name] = attrs
        contributor_map[r.name] = [r.left, r.right]

    all_attr_sets = {**entity_attrs, **relationship_attrs}
    seen: dict[frozenset[str], str] = {}
    for name, attrs in sorted(all_attr_sets.items()):
        key = frozenset(attrs)
        if key in seen:
            raise SchemaError(
                f"EAR design compiles {seen[key]!r} and {name!r} to the same "
                "attribute set; add a distinguishing (role) attribute"
            )
        seen[key] = name

    if domains is None:
        domains = {a: list(range(8)) for s in all_attr_sets.values() for a in s}
    schema = Schema.from_attribute_sets(all_attr_sets, domains)
    contributors = ContributorAssignment(schema, contributor_map)

    constraints = ConstraintSet(schema)
    for r in ear.relationships:
        rel_type = schema[r.name]
        left_type, right_type = schema[r.left], schema[r.right]
        if r.cardinality == "n:1":
            constraints.add(CardinalityConstraint(rel_type, left_type, right_type, "1:n"))
        elif r.cardinality == "1:n":
            constraints.add(CardinalityConstraint(rel_type, right_type, left_type, "1:n"))
        elif r.cardinality == "1:1":
            constraints.add(CardinalityConstraint(rel_type, left_type, right_type, "1:1"))
        else:
            constraints.add(CardinalityConstraint(rel_type, left_type, right_type, "n:m"))
        for participant in sorted(r.total):
            constraints.add(ParticipationConstraint(rel_type, schema[participant]))

    for r in ear.relationships:
        canonical = {c.name for c in canonical_contributors(schema, schema[r.name])}
        declared = set(contributor_map[r.name])
        if canonical != declared:
            notes.append(
                f"relationship {r.name!r}: declared contributors {sorted(declared)} "
                f"differ from the direct generalisations {sorted(canonical)}; the "
                "designer should review the attribute choices (section 3.3)"
            )
    return TranslationResult(schema, contributors, constraints, renamed, notes)
