"""The Entity-Relationship baseline (Chen 1976) and its certified translation."""

from repro.ear.model import (
    CARDINALITIES,
    EAREntitySet,
    EARRelationshipSet,
    EARSchema,
    employee_ear_schema,
)
from repro.ear.translate import TranslationResult, translate

__all__ = [
    "CARDINALITIES",
    "EAREntitySet",
    "EARRelationshipSet",
    "EARSchema",
    "employee_ear_schema",
    "TranslationResult",
    "translate",
]
