"""Incomplete information over boolean-algebra domains (paper section 6)."""

from repro.nulls.boolean_algebra import PowersetAlgebra, is_homomorphism
from repro.nulls.incomplete import (
    IncompleteRelation,
    IncompleteValue,
    certain_fds_monotone,
)

__all__ = [
    "PowersetAlgebra",
    "is_homomorphism",
    "IncompleteRelation",
    "IncompleteValue",
    "certain_fds_monotone",
]
