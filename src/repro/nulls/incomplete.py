"""Null values and incomplete information over boolean-algebra domains.

Section 6: "Imposing a structure on the domain ... results in a formal
definition of null values and incomplete information.  It differs from the
method proposed by Reiter where the interpretation of the null is context
dependent and affects the definition of functional dependencies.  In our
approach, the null interpretation can be defined independent of the entity
type structure and its semantics carry over to functional dependencies."

An :class:`IncompleteValue` is an element of the powerset algebra over an
attribute's atomic value set: the set of values the attribute *might*
take.  A singleton is definite knowledge, the top element is the classical
null ("no information"), the bottom is a contradiction.  FD satisfaction
splits into **certain** (true in every completion) and **possible** (true
in at least one) — defined purely on the value algebra, independent of any
entity-type structure, which is exactly the claimed contrast with Reiter.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from itertools import product

from repro.errors import IncompleteInformationError
from repro.nulls.boolean_algebra import PowersetAlgebra
from repro.relational import FD, Relation, Tuple, holds_in

Value = Hashable


class IncompleteValue:
    """A set of possible atomic values for one attribute slot."""

    __slots__ = ("possible",)

    def __init__(self, possible: Iterable[Value]):
        self.possible: frozenset[Value] = frozenset(possible)
        if not self.possible:
            raise IncompleteInformationError(
                "an incomplete value needs at least one possible value; the "
                "bottom element denotes contradiction, not ignorance"
            )

    @classmethod
    def known(cls, value: Value) -> "IncompleteValue":
        """Definite knowledge of a single value (an atom)."""
        return cls({value})

    @classmethod
    def null(cls, domain: Iterable[Value]) -> "IncompleteValue":
        """The classical null: any domain value possible (the top element)."""
        return cls(domain)

    def is_definite(self) -> bool:
        return len(self.possible) == 1

    def definite_value(self) -> Value:
        if not self.is_definite():
            raise IncompleteInformationError(f"{self!r} is not definite")
        return next(iter(self.possible))

    def refine(self, other: "IncompleteValue") -> "IncompleteValue":
        """Combine two pieces of knowledge (meet in the algebra)."""
        merged = self.possible & other.possible
        if not merged:
            raise IncompleteInformationError(
                f"contradictory knowledge: {self!r} vs {other!r}"
            )
        return IncompleteValue(merged)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IncompleteValue):
            return NotImplemented
        return self.possible == other.possible

    def __hash__(self) -> int:
        return hash((IncompleteValue, self.possible))

    def __repr__(self) -> str:
        if self.is_definite():
            return f"IncompleteValue.known({self.definite_value()!r})"
        return f"IncompleteValue({sorted(map(repr, self.possible))})"


class IncompleteRelation:
    """A relation whose slots are :class:`IncompleteValue` elements.

    Parameters
    ----------
    schema:
        Attribute names.
    domains:
        Per-attribute atomic value sets (the algebras' atom sets).
    rows:
        Mappings from attribute to either a plain value (treated as
        definite) or an :class:`IncompleteValue`.
    """

    def __init__(self, schema: Iterable[str],
                 domains: Mapping[str, Iterable[Value]],
                 rows: Iterable[Mapping] = ()):
        self.schema = frozenset(schema)
        self.algebras: dict[str, PowersetAlgebra] = {
            a: PowersetAlgebra(domains[a]) for a in self.schema
        }
        self.rows: list[dict[str, IncompleteValue]] = []
        for row in rows:
            self.add_row(row)

    def add_row(self, row: Mapping) -> None:
        if frozenset(row) != self.schema:
            raise IncompleteInformationError(
                f"row schema {sorted(row)} does not match {sorted(self.schema)}"
            )
        normal: dict[str, IncompleteValue] = {}
        for a, v in row.items():
            if not isinstance(v, IncompleteValue):
                v = IncompleteValue.known(v)
            stray = v.possible - self.algebras[a].atoms
            if stray:
                raise IncompleteInformationError(
                    f"possible values of {a!r} outside its domain: {sorted(map(repr, stray))}"
                )
            normal[a] = v
        self.rows.append(normal)

    # ------------------------------------------------------------------
    # completions
    # ------------------------------------------------------------------
    def completions(self, limit: int = 100_000) -> list[Relation]:
        """All fully definite relations obtainable by choosing possibilities.

        Exponential; ``limit`` guards against accidental blow-ups.  Each
        completion also eliminates duplicate rows (set semantics).
        """
        per_row: list[list[Tuple]] = []
        for row in self.rows:
            attrs = sorted(self.schema)
            choices = [sorted(row[a].possible, key=repr) for a in attrs]
            per_row.append([
                Tuple(dict(zip(attrs, combo))) for combo in product(*choices)
            ])
        total = 1
        for options in per_row:
            total *= len(options)
            if total > limit:
                raise IncompleteInformationError(
                    f"too many completions (> {limit}); restrict the nulls"
                )
        out = []
        for combo in product(*per_row) if per_row else [()]:
            out.append(Relation(self.schema, combo))
        return out

    def completion_count(self) -> int:
        """The number of completions without materialising them."""
        total = 1
        for row in self.rows:
            for a in self.schema:
                total *= len(row[a].possible)
        return total

    # ------------------------------------------------------------------
    # dependency semantics — defined on the value algebra only
    # ------------------------------------------------------------------
    def fd_certain(self, fd: FD) -> bool:
        """The FD holds in *every* completion."""
        return all(holds_in(fd, completion) for completion in self.completions())

    def fd_possible(self, fd: FD) -> bool:
        """The FD holds in *at least one* completion."""
        return any(holds_in(fd, completion) for completion in self.completions())

    def information_order_leq(self, other: "IncompleteRelation") -> bool:
        """Row-wise refinement: ``self`` knows at least as much as ``other``.

        Requires equal row counts and pairs rows positionally; refinement
        of every slot (``possible`` shrinking) is the algebra's order.
        """
        if self.schema != other.schema or len(self.rows) != len(other.rows):
            return False
        return all(
            mine[a].possible <= theirs[a].possible
            for mine, theirs in zip(self.rows, other.rows)
            for a in self.schema
        )


def certain_fds_monotone(more_definite: IncompleteRelation,
                         less_definite: IncompleteRelation,
                         fd: FD) -> bool:
    """The carry-over law: certainty gained by refinement is never lost...

    Precisely: if the *less* definite relation certainly satisfies ``fd``,
    so does every refinement with the same row pairing.  Returns the
    implication's truth for the given pair — used by property tests to
    validate the claim that null semantics "carry over to functional
    dependencies" independently of entity-type structure.
    """
    if not more_definite.information_order_leq(less_definite):
        raise IncompleteInformationError("relations are not refinement-ordered")
    if not less_definite.fd_certain(fd):
        return True
    return more_definite.fd_certain(fd)
