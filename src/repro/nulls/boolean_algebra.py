"""Finite boolean algebras (the paper's future-work substrate, section 6).

"Imposing a structure on the domain, a boolean algebra structure [10],
results in a formal definition of null values and incomplete information."

Every finite boolean algebra is (isomorphic to) the powerset algebra of
its atoms, so :class:`PowersetAlgebra` suffices; elements are frozensets
of atoms, the order is inclusion, and the operations are the set ones.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.errors import IncompleteInformationError

Atom = Hashable
Element = frozenset


class PowersetAlgebra:
    """The boolean algebra ``P(atoms)`` with set operations.

    Examples
    --------
    >>> algebra = PowersetAlgebra({"a", "b"})
    >>> sorted(algebra.complement(frozenset({"a"})))
    ['b']
    """

    __slots__ = ("atoms",)

    def __init__(self, atoms: Iterable[Atom]):
        self.atoms: frozenset[Atom] = frozenset(atoms)
        if not self.atoms:
            raise IncompleteInformationError("a boolean algebra needs at least one atom")

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def top(self) -> Element:
        """The unit: complete ignorance (any value possible)."""
        return self.atoms

    @property
    def bottom(self) -> Element:
        """The zero: contradiction (no value possible)."""
        return frozenset()

    def element(self, members: Iterable[Atom]) -> Element:
        """Validate and normalise an element."""
        e = frozenset(members)
        stray = e - self.atoms
        if stray:
            raise IncompleteInformationError(
                f"element mentions non-atoms: {sorted(map(repr, stray))}"
            )
        return e

    def is_atom(self, e: Element) -> bool:
        """Whether ``e`` is a single definite value."""
        return len(self.element(e)) == 1

    def meet(self, x: Element, y: Element) -> Element:
        return self.element(x) & self.element(y)

    def join(self, x: Element, y: Element) -> Element:
        return self.element(x) | self.element(y)

    def complement(self, x: Element) -> Element:
        return self.atoms - self.element(x)

    def leq(self, x: Element, y: Element) -> bool:
        """The information order: ``x`` is at least as definite as ``y``...

        Note the reading: smaller sets = more information; ``leq`` is set
        inclusion, so ``leq(x, y)`` means x is *more specific* than y.
        """
        return self.element(x) <= self.element(y)

    def elements(self) -> list[Element]:
        """All elements, ordered by size then repr (exponential; small atoms)."""
        out: list[Element] = [frozenset()]
        for a in sorted(self.atoms, key=repr):
            out += [e | {a} for e in out]
        return sorted(set(out), key=lambda e: (len(e), sorted(map(repr, e))))

    # ------------------------------------------------------------------
    # laws, stated as predicates for the property tests
    # ------------------------------------------------------------------
    def satisfies_lattice_laws(self, x: Element, y: Element, z: Element) -> bool:
        """Commutativity, associativity, absorption on one triple."""
        x, y, z = self.element(x), self.element(y), self.element(z)
        return (
            self.meet(x, y) == self.meet(y, x)
            and self.join(x, y) == self.join(y, x)
            and self.meet(x, self.meet(y, z)) == self.meet(self.meet(x, y), z)
            and self.join(x, self.join(y, z)) == self.join(self.join(x, y), z)
            and self.meet(x, self.join(x, y)) == x
            and self.join(x, self.meet(x, y)) == x
        )

    def satisfies_boolean_laws(self, x: Element, y: Element, z: Element) -> bool:
        """Distributivity and complementation on one triple."""
        x, y, z = self.element(x), self.element(y), self.element(z)
        return (
            self.meet(x, self.join(y, z))
            == self.join(self.meet(x, y), self.meet(x, z))
            and self.join(x, self.complement(x)) == self.top
            and self.meet(x, self.complement(x)) == self.bottom
        )


def is_homomorphism(source: PowersetAlgebra, target: PowersetAlgebra,
                    mapping: dict[Element, Element]) -> bool:
    """Whether ``mapping`` preserves meet, join, complement, top and bottom."""
    elements = source.elements()
    if any(e not in mapping for e in elements):
        return False
    if mapping[source.top] != target.top or mapping[source.bottom] != target.bottom:
        return False
    for x in elements:
        if mapping[source.complement(x)] != target.complement(mapping[x]):
            return False
        for y in elements:
            if mapping[source.meet(x, y)] != target.meet(mapping[x], mapping[y]):
                return False
            if mapping[source.join(x, y)] != target.join(mapping[x], mapping[y]):
                return False
    return True
