"""JSON import/export for schemas, extensions, and constraints.

A downstream user needs to get designs in and out of the library; this
module fixes a plain-JSON interchange format:

.. code-block:: json

    {
      "domains":  {"name": ["ann", "bob"], "age": [28, 31]},
      "entity_types": {"person": ["name", "age"]},
      "relations": {"person": [{"name": "ann", "age": 31}]},
      "contributors": {"worksfor": ["employee", "department"]},
      "constraints": [
        {"kind": "subset", "special": "manager", "general": "employee"},
        {"kind": "fd", "determinant": "employee", "dependent": "department",
         "context": "worksfor"},
        {"kind": "cardinality", "relationship": "worksfor",
         "left": "employee", "right": "department", "cardinality": "1:n"},
        {"kind": "participation", "relationship": "worksfor",
         "member": "employee"}
      ]
    }

Values must be JSON scalars (strings, numbers, booleans, null) — which is
exactly the Attribute Axiom's atomicity in JSON clothing.

The module also fixes the store's *wire* encoding: length-prefixed JSON
frames (:func:`encode_frame` / :class:`FrameDecoder`), the byte-level
layer of the :mod:`repro.server` protocol.  A frame is a big-endian
``uint32`` payload length followed by that many bytes of UTF-8 JSON
encoding one object; the prefix makes the stream self-delimiting, so a
frame whose payload fails to parse costs one error response, not the
connection.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Any

from repro.core import (
    CardinalityConstraint,
    ConstraintSet,
    ContributorAssignment,
    DatabaseExtension,
    EntityFD,
    FunctionalConstraint,
    ParticipationConstraint,
    Schema,
    SubsetConstraint,
)
from repro.errors import ProtocolError, SchemaError

# ----------------------------------------------------------------------
# wire frames (the byte layer of repro.server's protocol)
# ----------------------------------------------------------------------
FRAME_HEADER = struct.Struct(">I")

#: Default ceiling on one frame's payload.  Large enough for any audit
#: report or relation read the test states produce, small enough that a
#: hostile length prefix cannot make a connection buffer gigabytes.
MAX_FRAME_BYTES = 8 * 1024 * 1024


def encode_frame(message: dict[str, Any],
                 max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """One protocol message as a length-prefixed JSON frame."""
    if not isinstance(message, dict):
        raise ProtocolError(
            f"a frame payload must be a JSON object, got "
            f"{type(message).__name__}")
    try:
        payload = json.dumps(message, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"message is not JSON-codable: {exc}") from exc
    if len(payload) > max_bytes:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_bytes}-byte frame limit")
    return FRAME_HEADER.pack(len(payload)) + payload


def split_frames(data: bytes) -> tuple[list[bytes], bytes]:
    """Split ``data`` at frame boundaries without decoding payloads.

    Returns ``(frames, remainder)`` where each element of ``frames`` is
    one complete length-prefixed frame (header included, bytes passed
    through untouched) and ``remainder`` is the trailing partial frame,
    if any.  This is the byte-level sibling of :class:`FrameDecoder` for
    tooling that relays or corrupts traffic *at* frame boundaries — the
    fault-injection proxy in :mod:`repro.faults` — and therefore must
    not pay for (or be confused by) JSON decoding.
    """
    frames: list[bytes] = []
    offset = 0
    while len(data) - offset >= FRAME_HEADER.size:
        (length,) = FRAME_HEADER.unpack_from(data, offset)
        end = offset + FRAME_HEADER.size + length
        if len(data) < end:
            break
        frames.append(bytes(data[offset:end]))
        offset = end
    return frames, bytes(data[offset:])


class FrameDecoder:
    """Incremental frame parser: feed bytes, collect decoded messages.

    The decoder is transport-agnostic (sans-IO): both the asyncio server
    and the blocking client push whatever bytes arrived and receive every
    *complete* message, buffering partial frames internally.  A declared
    length beyond ``max_bytes`` raises :class:`ProtocolError` and poisons
    the decoder — past that point the stream offset can no longer be
    trusted, so the connection must close; a payload that is complete but
    not a JSON object also raises, but leaves the decoder usable (the
    prefix still delimited the frame correctly) — messages decoded
    before the bad frame are delivered by the next :meth:`feed` call.
    """

    __slots__ = ("max_bytes", "_buffer", "_ready", "_poisoned")

    def __init__(self, max_bytes: int = MAX_FRAME_BYTES):
        self.max_bytes = max_bytes
        self._buffer = bytearray()
        self._ready: list[dict[str, Any]] = []
        self._poisoned = False

    def feed(self, data: bytes = b"") -> list[dict[str, Any]]:
        """Buffer ``data`` and return every message completed so far."""
        if self._poisoned:
            raise ProtocolError(
                "frame stream is desynchronised (oversized frame); "
                "close the connection")
        self._buffer.extend(data)
        while len(self._buffer) >= FRAME_HEADER.size:
            (length,) = FRAME_HEADER.unpack_from(self._buffer)
            if length > self.max_bytes:
                self._poisoned = True
                raise ProtocolError(
                    f"declared frame length {length} exceeds the "
                    f"{self.max_bytes}-byte frame limit")
            end = FRAME_HEADER.size + length
            if len(self._buffer) < end:
                break
            payload = bytes(self._buffer[FRAME_HEADER.size:end])
            del self._buffer[:end]
            try:
                message = json.loads(payload)
            except (ValueError, UnicodeDecodeError) as exc:
                raise ProtocolError(
                    f"frame payload is not valid JSON: {exc}") from exc
            if not isinstance(message, dict):
                raise ProtocolError(
                    f"frame payload must be a JSON object, got "
                    f"{type(message).__name__}")
            self._ready.append(message)
        out = self._ready
        self._ready = []
        return out

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame (diagnostics)."""
        return len(self._buffer)


def schema_to_dict(schema: Schema) -> dict[str, Any]:
    """The schema's universe and entity types as JSON-ready data."""
    return {
        "domains": {
            name: sorted(schema.universe.domain(name).values, key=repr)
            for name in sorted(schema.property_names)
        },
        "entity_types": {
            e.name: sorted(e.attributes) for e in schema.sorted_types()
        },
    }


def schema_from_dict(data: dict[str, Any]) -> Schema:
    """Rebuild a schema; axioms are re-validated by the constructors."""
    if "entity_types" not in data:
        raise SchemaError("schema document needs an 'entity_types' object")
    return Schema.from_attribute_sets(
        {name: set(attrs) for name, attrs in data["entity_types"].items()},
        domains={k: list(v) for k, v in data.get("domains", {}).items()} or None,
    )


def extension_to_dict(db: DatabaseExtension) -> dict[str, Any]:
    """Schema plus relations plus non-canonical contributor assignments."""
    out = schema_to_dict(db.schema)
    out["relations"] = {
        e.name: [t.as_dict() for t in db.R(e)]
        for e in db.schema.sorted_types()
        if len(db.R(e))
    }
    from repro.core import canonical_contributors

    overrides = {}
    for e in db.schema.sorted_types():
        assigned = db.contributors.contributors(e)
        if assigned != canonical_contributors(db.schema, e):
            overrides[e.name] = sorted(c.name for c in assigned)
    if overrides:
        out["contributors"] = overrides
    return out


def extension_from_dict(data: dict[str, Any]) -> DatabaseExtension:
    """Rebuild a database state (shape and domain membership re-checked)."""
    schema = schema_from_dict(data)
    contributors = None
    if "contributors" in data:
        contributors = ContributorAssignment(schema, data["contributors"])
    return DatabaseExtension(schema, data.get("relations", {}), contributors)


def constraints_to_list(constraints: ConstraintSet) -> list[dict[str, Any]]:
    """Serialise the built-in constraint kinds (custom kinds need custom IO)."""
    out: list[dict[str, Any]] = []
    for c in constraints.constraints:
        if isinstance(c, SubsetConstraint):
            out.append({"kind": "subset", "special": c.special.name,
                        "general": c.general.name})
        elif isinstance(c, FunctionalConstraint):
            out.append({
                "kind": "fd",
                "determinant": c.fd.determinant.name,
                "dependent": c.fd.dependent.name,
                "context": c.fd.context.name,
            })
        elif isinstance(c, CardinalityConstraint):
            out.append({
                "kind": "cardinality", "relationship": c.relationship.name,
                "left": c.left.name, "right": c.right.name,
                "cardinality": c.kind,
            })
        elif isinstance(c, ParticipationConstraint):
            out.append({"kind": "participation",
                        "relationship": c.relationship.name,
                        "member": c.member.name})
        else:
            raise SchemaError(f"cannot serialise constraint kind {type(c).__name__}")
    return out


def constraints_from_list(schema: Schema,
                          items: list[dict[str, Any]]) -> ConstraintSet:
    """Rebuild a constraint set against ``schema``.

    Malformed records — unknown kinds, missing fields — raise
    :class:`SchemaError` rather than leaking ``KeyError``."""
    constraints = ConstraintSet(schema)
    for item in items:
        try:
            _constraint_from_item(schema, constraints, item)
        except KeyError as exc:
            raise SchemaError(
                f"constraint record {item!r} is missing field {exc}"
            ) from exc
    return constraints


def _constraint_from_item(schema: Schema, constraints: ConstraintSet,
                          item: dict[str, Any]) -> None:
    kind = item.get("kind")
    if kind == "subset":
        constraints.add(SubsetConstraint(
            schema[item["special"]], schema[item["general"]],
        ))
    elif kind == "fd":
        constraints.add(FunctionalConstraint(EntityFD(
            schema[item["determinant"]], schema[item["dependent"]],
            schema[item["context"]],
        )))
    elif kind == "cardinality":
        constraints.add(CardinalityConstraint(
            schema[item["relationship"]], schema[item["left"]],
            schema[item["right"]], item["cardinality"],
        ))
    elif kind == "participation":
        constraints.add(ParticipationConstraint(
            schema[item["relationship"]], schema[item["member"]],
        ))
    else:
        raise SchemaError(f"unknown constraint kind: {kind!r}")


def database_to_dict(db: DatabaseExtension,
                     constraints: ConstraintSet | None = None) -> dict[str, Any]:
    """One self-contained document: schema, relations, constraints."""
    out = extension_to_dict(db)
    if constraints is not None:
        out["constraints"] = constraints_to_list(constraints)
    return out


def database_from_dict(data: dict[str, Any]) -> tuple[DatabaseExtension, ConstraintSet]:
    """Rebuild a state and its constraints from one document."""
    db = extension_from_dict(data)
    constraints = constraints_from_list(db.schema, data.get("constraints", []))
    return db, constraints


def report_to_dict(report, constraint_problems: dict[str, list[str]] | None = None,
                   ) -> dict[str, Any]:
    """An audit outcome as machine-readable JSON data.

    ``report`` is a :class:`~repro.core.axioms.AxiomReport`;
    ``constraint_problems`` the per-constraint message lists of
    :meth:`ConstraintSet.report`.  Offenders (the findings' witnesses)
    are serialised by ``repr`` — they are heterogeneous objects (entity
    types, tuples, constraints) whose JSON forms live elsewhere; the
    report is for consumption by tooling (CI, ``repro serve``/``replay``)
    that needs verdicts and witness identity, not reconstruction.
    """
    constraint_problems = constraint_problems or {}
    return {
        "ok": report.ok() and not constraint_problems,
        "findings": [
            {
                "axiom": f.axiom,
                "message": f.message,
                "witnesses": [repr(o) for o in f.offenders],
            }
            for f in report.findings
        ],
        "constraints": {
            name: list(messages)
            for name, messages in sorted(constraint_problems.items())
        },
    }


def save(path: str | Path, db: DatabaseExtension,
         constraints: ConstraintSet | None = None) -> None:
    """Write a database document as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(database_to_dict(db, constraints), indent=2, sort_keys=True)
    )


def load(path: str | Path) -> tuple[DatabaseExtension, ConstraintSet]:
    """Read a database document written by :func:`save` (or by hand)."""
    return database_from_dict(json.loads(Path(path).read_text()))
