"""Random consistent extensions and violation injection.

Generation proceeds from the most specialised types downward: tuples are
invented for ISA leaves, every generalisation receives the projections
(Containment Condition by construction), and compound types are
deduplicated per contributor combination (Extension Axiom by
construction).  Injectors then break exactly one property at a time so
tests can confirm the detectors fire.
"""

from __future__ import annotations

import random

from repro.core.extension import DatabaseExtension
from repro.core.generalisation import GeneralisationStructure
from repro.core.schema import Schema
from repro.core.specialisation import SpecialisationStructure
from repro.errors import ExtensionError
from repro.relational import Relation, Tuple


def random_tuple(rng: random.Random, schema: Schema, attrs: frozenset[str]) -> Tuple:
    """One random tuple over ``attrs`` drawn from the attribute domains."""
    return Tuple({
        a: rng.choice(sorted(schema.universe.domain(a).values, key=repr))
        for a in attrs
    })


def random_extension(rng: random.Random,
                     schema: Schema,
                     rows_per_leaf: int = 3) -> DatabaseExtension:
    """A random database state satisfying containment and the Extension Axiom."""
    spec = SpecialisationStructure(schema)
    gen = GeneralisationStructure(schema)
    tuples: dict[str, set[Tuple]] = {e.name: set() for e in schema}
    for leaf in sorted(spec.leaves()):
        for _ in range(rows_per_leaf):
            tuples[leaf.name].add(random_tuple(rng, schema, leaf.attributes))
    # Project downward through every generalisation.
    for e in sorted(schema, key=lambda t: -len(t.attributes)):
        for g in gen.proper_generalisations(e):
            for t in tuples[e.name]:
                tuples[g.name].add(t.project(g.attributes))
    db = DatabaseExtension(schema, {
        name: Relation(schema[name].attributes, rows)
        for name, rows in tuples.items()
    })
    return enforce_extension_axiom(db)


def enforce_extension_axiom(db: DatabaseExtension) -> DatabaseExtension:
    """Deletion-only repair to a fully consistent state.

    Iterates three repairs to a fixpoint: (1) injectivity — keep the
    lexicographically smallest compound tuple per contributor combination;
    (2) containment — drop specialisation tuples whose projection vanished;
    (3) support — drop compound tuples no longer covered by the contributor
    join.  Deletions are monotone, so the loop terminates; the
    lexicographic choice keeps generated workloads reproducible.

    Each iteration's diagnosis runs on the state's shared-interned kernel
    (batched axiom reports, and containment victims found by one id-space
    scan per violating pair instead of a per-tuple projection sweep), and
    each repair is a :meth:`~repro.core.extension.DatabaseExtension.remove_tuples`
    patch delta — so every successor state's kernel derives from its
    predecessor's and the re-diagnosis re-judges only the contexts the
    repair dirtied, instead of re-interning and re-auditing the whole
    state per iteration.  The object-level loop is retained as
    :func:`enforce_extension_axiom_naive`.
    """
    current = db
    changed = True
    while changed:
        changed = False
        for e in sorted(current.contributors.compound_types(),
                        key=lambda t: (len(t.attributes), t.name)):
            report = current.extension_axiom_violations(e)
            doomed = list(report["unsupported"].tuples)
            for group in report["collisions"]:
                doomed += sorted(group, key=repr)[1:]
            if doomed:
                current = current.remove_tuples(e, doomed)
                changed = True
        for s, e, stray in current.containment_violations():
            victims = _projecting_into(current, s, e.attributes, stray)
            if victims:
                current = current.remove_tuples(s, victims)
                changed = True
    return current


def _projecting_into(db: DatabaseExtension, s, e_attrs, stray) -> list[Tuple]:
    """The tuples of ``R_s`` whose ``e_attrs``-projection lies in ``stray``.

    One walk over the cached projection partition of the live instance:
    each stray tuple is encoded into the live symbol space (a stray value
    deleted from ``R_s`` by an earlier repair simply cannot match) and the
    matching rows are read off the partition index, instead of projecting
    every live tuple.
    """
    inst = db.kernel.instance(s.name)
    idxs = inst.indices_of(e_attrs)
    tables = [inst.tables[i] for i in idxs]
    part = inst.partition(idxs)
    rows = inst.rows
    victims: list[Tuple] = []
    for t in stray.tuples:
        key = []
        for table, (_, value) in zip(tables, t):
            sid = table.get(value)
            if sid is None:
                break
            key.append(sid)
        else:
            for r in part.get(tuple(key), ()):
                victims.append(Tuple._trusted(inst.decode_row(rows[r])))
    return victims


def enforce_extension_axiom_naive(db: DatabaseExtension) -> DatabaseExtension:
    """Reference oracle for :func:`enforce_extension_axiom` (per-tuple
    object-level repairs; identical fixpoint)."""
    current = db
    changed = True
    while changed:
        changed = False
        for e in sorted(current.contributors.compound_types(),
                        key=lambda t: (len(t.attributes), t.name)):
            report = current.extension_axiom_violations_naive(e)
            doomed = list(report["unsupported"].tuples)
            for group in report["collisions"]:
                doomed += sorted(group, key=repr)[1:]
            if doomed:
                current = current.replace(e, current.R(e).without_tuples(doomed))
                changed = True
        for s, e, stray in current.containment_violations_naive():
            victims = [
                t for t in current.R(s).tuples
                if t.project(e.attributes) in stray.tuples
            ]
            if victims:
                current = current.replace(s, current.R(s).without_tuples(victims))
                changed = True
    return current


def inject_containment_violation(rng: random.Random,
                                 db: DatabaseExtension) -> DatabaseExtension:
    """Insert a specialisation tuple *without* propagating its projections.

    The result violates the Containment Condition unless the random tuple
    happens to project onto existing instances; retried a few times to
    make a real violation likely, raising if the schema offers no ISA edge.
    """
    spec = SpecialisationStructure(db.schema)
    candidates = [e for e in db.schema if spec.proper_specialisations(e)]
    if not candidates:
        raise ExtensionError("schema has no ISA edge to violate")
    for _ in range(64):
        general = rng.choice(sorted(candidates))
        special = rng.choice(sorted(spec.proper_specialisations(general)))
        t = random_tuple(rng, db.schema, special.attributes)
        broken = db.insert(special, t, propagate=False)
        if not broken.satisfies_containment():
            return broken
    raise ExtensionError("could not construct a containment violation")


def inject_injectivity_violation(rng: random.Random,
                                 db: DatabaseExtension) -> DatabaseExtension:
    """Duplicate a compound tuple with a changed augmented attribute.

    Produces two compound instances sharing one contributor combination —
    the Extension Axiom's injectivity must flag them.  Raises when no
    compound type has augmented attributes with at least two values.
    """
    from repro.core.contributors import augmented_attributes

    compounds = sorted(db.contributors.compound_types())
    rng.shuffle(compounds)
    for e in compounds:
        extras = sorted(augmented_attributes(db.schema, e))
        if not extras or not len(db.R(e)):
            continue
        attr = extras[0]
        domain = sorted(db.schema.universe.domain(attr).values, key=repr)
        if len(domain) < 2:
            continue
        victim = sorted(db.R(e).tuples, key=repr)[0]
        changed = victim.as_dict()
        changed[attr] = domain[0] if victim[attr] != domain[0] else domain[1]
        return db.replace(e, db.R(e).with_tuples([Tuple(changed)]))
    raise ExtensionError("no compound type with a mutable augmented attribute")
