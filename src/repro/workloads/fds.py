"""Random entity-level dependency workloads for the E10 experiment."""

from __future__ import annotations

import random

from repro.core.entity_types import EntityType
from repro.core.fd import EntityFD
from repro.core.generalisation import GeneralisationStructure
from repro.core.schema import Schema


def random_fd(rng: random.Random, schema: Schema) -> EntityFD | None:
    """One random well-typed ``fd(e, f, h)``; None when no context has
    at least two generalisations."""
    gen = GeneralisationStructure(schema)
    contexts = [h for h in sorted(schema) if len(gen.G(h)) >= 2]
    if not contexts:
        return None
    h = rng.choice(contexts)
    g_h = sorted(gen.G(h))
    e = rng.choice(g_h)
    f = rng.choice(g_h)
    return EntityFD(e, f, h)


def random_premises(rng: random.Random, schema: Schema,
                    count: int = 3,
                    nontrivial_only: bool = True) -> list[EntityFD]:
    """A random premise set, optionally filtered to non-nucleus FDs."""
    out: list[EntityFD] = []
    attempts = 0
    while len(out) < count and attempts < count * 30:
        attempts += 1
        fd = random_fd(rng, schema)
        if fd is None:
            break
        if nontrivial_only and fd.is_trivial():
            continue
        if fd not in out:
            out.append(fd)
    return out


def all_statements(schema: Schema) -> list[EntityFD]:
    """The full statement space (every well-typed fd) for exhaustive sweeps."""
    gen = GeneralisationStructure(schema)
    out: list[EntityFD] = []
    for h in schema.sorted_types():
        g_h: list[EntityType] = sorted(gen.G(h))
        for e in g_h:
            for f in g_h:
                out.append(EntityFD(e, f, h))
    return out
