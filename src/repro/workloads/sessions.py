"""Session traffic generation for the store's serving workloads.

The serving fixture is the five-type state of the axiom-sweep benches
(two compound types, five containment pairs, constraints over three
context relations) — relocated here so benches, the CLI ``serve``
command, and the concurrency stress tests all drive the same shape.
Traffic generators produce *op specs* — ``(kind, relation, payload[,
propagate])`` tuples ready for :meth:`repro.store.Session.run` — rather
than applying anything, so the same stream can be fed to a concurrent
store, a single-threaded oracle, or a baseline engine.
"""

from __future__ import annotations

import random

from repro.core import (
    CardinalityConstraint,
    DatabaseExtension,
    EntityFD,
    FunctionalConstraint,
    ParticipationConstraint,
    Schema,
    SubsetConstraint,
)


def serving_state(n: int):
    """A consistent five-type state with ~n rows per relation.

    ``person`` and ``dept`` overlap on ``dname`` so the contributor join
    of the compound ``worksfor`` stays linear; ``manager`` specialises
    ``worksfor`` and ``office`` compounds ``dept``, giving audits two
    compound types, five ISA containment pairs, and constraints over
    three different context relations.  Returns ``(schema, db,
    constraints)``.
    """
    schema = Schema.from_attribute_sets(
        {
            "person": {"pname", "dname"},
            "dept": {"dname", "budget"},
            "worksfor": {"pname", "dname", "budget", "role"},
            "manager": {"pname", "dname", "budget", "role", "bonus"},
            "office": {"dname", "budget", "floor"},
        },
        domains={
            "pname": range(n), "dname": range(n), "budget": range(53),
            "role": range(7), "bonus": range(11), "floor": range(11),
        },
    )
    dept_of = [(i * 3 + 1) % n for i in range(n)]
    depts = [{"dname": j, "budget": j % 53} for j in range(n)]
    persons = [{"pname": i, "dname": dept_of[i]} for i in range(n)]
    worksfor = [
        {"pname": i, "dname": dept_of[i], "budget": dept_of[i] % 53,
         "role": i % 7}
        for i in range(n)
    ]
    managers = [dict(w, bonus=w["pname"] % 11) for w in worksfor
                if w["pname"] % 3 == 0]
    offices = [{"dname": j, "budget": j % 53, "floor": j % 11}
               for j in range(n)]
    db = DatabaseExtension(schema, {
        "person": persons, "dept": depts, "worksfor": worksfor,
        "manager": managers, "office": offices,
    })
    constraints = [
        FunctionalConstraint(EntityFD(schema["person"], schema["dept"],
                                      schema["worksfor"])),
        CardinalityConstraint(schema["worksfor"], schema["person"],
                              schema["dept"], "1:n"),
        FunctionalConstraint(EntityFD(schema["person"], schema["worksfor"],
                                      schema["manager"])),
        SubsetConstraint(schema["manager"], schema["worksfor"]),
        SubsetConstraint(schema["worksfor"], schema["person"]),
        ParticipationConstraint(schema["worksfor"], schema["person"]),
        ParticipationConstraint(schema["office"], schema["dept"]),
    ]
    return schema, db, constraints


def manager_stream(n: int, count: int) -> list[dict]:
    """``count`` fresh, axiom-preserving ``manager`` rows for
    ``serving_state(n)``.

    ``pname % 3 != 0`` names employees who are not yet managers, and
    each row projects onto an existing ``worksfor`` row, so inserting
    any subset keeps every axiom satisfied; distinct ``pname`` per row
    means distinct rows are footprint-disjoint (different lhs-groups of
    every probe set), so partitioned writers never conflict.
    """
    dept_of = [(i * 3 + 1) % n for i in range(n)]
    slots = [i for i in range(n) if i % 3]
    if count > len(slots):
        raise ValueError(
            f"only {len(slots)} fresh manager slots at n={n}, "
            f"asked for {count}")
    return [
        {"pname": i, "dname": dept_of[i], "budget": dept_of[i] % 53,
         "role": i % 7, "bonus": (i + 5) % 11}
        for i in slots[:count]
    ]


def disjoint_commit_specs(rows: list[dict], writers: int,
                          relation: str = "manager",
                          ) -> list[list[list[tuple]]]:
    """Round-robin ``rows`` into per-writer single-op commit specs:
    ``result[w]`` is writer ``w``'s list of transactions, each
    ``[("insert", relation, row)]`` — the disjoint-writer workload of
    the throughput bench and the stress tests."""
    out: list[list[list[tuple]]] = [[] for _ in range(writers)]
    for i, row in enumerate(rows):
        out[i % writers].append([("insert", relation, row)])
    return out


def contended_commit_specs(rows: list[dict], writers: int,
                           relation: str = "manager",
                           ) -> list[list[list[tuple]]]:
    """Every writer gets *every* row (insert-wins races on identical
    rows plus footprint collisions) — the conflict-heavy mix.  Duplicate
    inserts net to no-ops; the interesting part is that the store stays
    serializable while writers collide and retry."""
    return [[[("insert", relation, row)] for row in rows]
            for _ in range(writers)]


def random_txn_specs(rng: random.Random, db: DatabaseExtension,
                     n_txns: int, ops_per_txn: int = 2) -> list[list[tuple]]:
    """Random mixed transactions over an arbitrary state: inserts of
    random in-domain rows and deletes of existing or random rows, with
    and without propagation.  Commits may legitimately be rejected
    (that's traffic too); callers count outcomes.
    """
    from repro.workloads.extensions import random_tuple

    schema = db.schema
    types = sorted(schema, key=lambda t: t.name)
    specs: list[list[tuple]] = []
    for _ in range(n_txns):
        ops: list[tuple] = []
        for _ in range(rng.randint(1, ops_per_txn)):
            e = rng.choice(types)
            if rng.random() < 0.6:
                ops.append(("insert", e.name,
                            random_tuple(rng, schema, e.attributes).as_dict(),
                            rng.random() < 0.8))
            else:
                pool = sorted(db.R(e).tuples, key=repr)
                row = rng.choice(pool).as_dict() if pool and \
                    rng.random() < 0.8 else \
                    random_tuple(rng, schema, e.attributes).as_dict()
                ops.append(("delete", e.name, row, rng.random() < 0.8))
        specs.append(ops)
    return specs
