"""Workload generators: random schemas, consistent extensions, FD sets."""

from repro.workloads.schemas import (
    SHAPES,
    random_schema,
    schema_of_attribute_sets,
    intersection_close,
)
from repro.workloads.extensions import (
    enforce_extension_axiom,
    enforce_extension_axiom_naive,
    inject_containment_violation,
    inject_injectivity_violation,
    random_extension,
    random_tuple,
)
from repro.workloads.fds import all_statements, random_fd, random_premises
from repro.workloads.sessions import (
    contended_commit_specs,
    disjoint_commit_specs,
    manager_stream,
    random_txn_specs,
    serving_state,
)

__all__ = [
    "contended_commit_specs",
    "disjoint_commit_specs",
    "manager_stream",
    "random_txn_specs",
    "serving_state",
    "SHAPES",
    "random_schema",
    "schema_of_attribute_sets",
    "intersection_close",
    "enforce_extension_axiom",
    "enforce_extension_axiom_naive",
    "inject_containment_violation",
    "inject_injectivity_violation",
    "random_extension",
    "random_tuple",
    "all_statements",
    "random_fd",
    "random_premises",
]
