"""Random schema generation for property tests and benches.

Shapes mirror the ISA patterns the paper's constructions exercise:
chains (deep specialisation), trees (branching hierarchies), diamonds
(multiple inheritance — where contributors get interesting), and flat
random families.  All generators guarantee the Entity Type Axiom by
construction (attribute sets are deduplicated before naming).
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.core.entity_types import EntityType
from repro.core.schema import Schema

SHAPES = ("chain", "tree", "diamond", "random")


def _attr_pool(n_attrs: int) -> list[str]:
    return [f"a{i:02d}" for i in range(n_attrs)]


def random_schema(rng: random.Random,
                  n_attrs: int = 8,
                  n_types: int = 6,
                  shape: str = "random",
                  domain_size: int = 4) -> Schema:
    """A random valid schema of the requested ISA shape."""
    if shape not in SHAPES:
        raise ValueError(f"unknown shape {shape!r}; expected one of {SHAPES}")
    pool = _attr_pool(n_attrs)
    attr_sets: list[frozenset[str]] = []
    if shape == "chain":
        attr_sets = _chain_sets(rng, pool, n_types)
    elif shape == "tree":
        attr_sets = _tree_sets(rng, pool, n_types)
    elif shape == "diamond":
        attr_sets = _diamond_sets(rng, pool, n_types)
    else:
        attr_sets = _random_sets(rng, pool, n_types)
    unique = sorted(set(attr_sets), key=lambda s: (len(s), sorted(s)))
    entity_attrs = {f"t{i:02d}": attrs for i, attrs in enumerate(unique)}
    domains = {a: list(range(domain_size)) for a in pool}
    return Schema.from_attribute_sets(entity_attrs, domains)


def _chain_sets(rng: random.Random, pool: list[str], n: int) -> list[frozenset[str]]:
    start = frozenset(rng.sample(pool, k=max(1, len(pool) // 4)))
    sets = [start]
    current = set(start)
    remaining = [a for a in pool if a not in start]
    rng.shuffle(remaining)
    while len(sets) < n and remaining:
        current = set(current) | {remaining.pop()}
        sets.append(frozenset(current))
    return sets


def _tree_sets(rng: random.Random, pool: list[str], n: int) -> list[frozenset[str]]:
    root = frozenset(rng.sample(pool, k=max(1, len(pool) // 4)))
    sets = [root]
    while len(sets) < n:
        parent = rng.choice(sets)
        extras = [a for a in pool if a not in parent]
        if not extras:
            break
        child = parent | frozenset(rng.sample(extras, k=min(len(extras), rng.randint(1, 2))))
        sets.append(child)
    return sets


def _diamond_sets(rng: random.Random, pool: list[str], n: int) -> list[frozenset[str]]:
    if len(pool) < 4:
        return _random_sets(rng, pool, n)
    half = len(pool) // 2
    left = frozenset(pool[:half][:2])
    right = frozenset(pool[half:half + 2])
    top = left | right
    sets = [left, right, top]
    while len(sets) < n:
        base = rng.choice(sets)
        extras = [a for a in pool if a not in base]
        if not extras:
            break
        sets.append(base | {rng.choice(extras)})
    return sets


def _random_sets(rng: random.Random, pool: list[str], n: int) -> list[frozenset[str]]:
    sets = []
    for _ in range(n):
        k = rng.randint(1, max(1, len(pool) - 1))
        sets.append(frozenset(rng.sample(pool, k=k)))
    return sets


def intersection_close(schema: Schema, max_new: int = 256) -> Schema:
    """Close the entity-type family under nonempty pairwise intersection.

    Produces the intersection-closed schemas on which the Armstrong system
    is complete (see :func:`repro.core.semantics.is_intersection_closed`
    and experiment E10).  New types are named ``i000, i001, ...``.
    Intersections of existing sets are themselves closed under further
    intersection steps, so one fixpoint loop suffices.
    """
    attr_sets = {e.attributes for e in schema}
    fresh: set[frozenset[str]] = set()
    changed = True
    while changed:
        changed = False
        current = sorted(attr_sets | fresh, key=lambda s: (len(s), sorted(s)))
        for i, x in enumerate(current):
            for y in current[i + 1:]:
                shared = x & y
                if shared and shared not in attr_sets and shared not in fresh:
                    fresh.add(shared)
                    changed = True
                    if len(fresh) >= max_new:
                        raise ValueError(
                            f"intersection closure exceeds {max_new} new types"
                        )
    out = schema
    for i, attrs in enumerate(sorted(fresh, key=lambda s: (len(s), sorted(s)))):
        out = out.with_entity_type(EntityType(f"i{i:03d}", attrs))
    return out


def schema_of_attribute_sets(attr_sets: Iterable[Iterable[str]],
                             domain_size: int = 4) -> Schema:
    """Name a family of attribute sets ``t00, t01, ...`` deterministically."""
    unique = sorted({frozenset(s) for s in attr_sets}, key=lambda s: (len(s), sorted(s)))
    entity_attrs = {f"t{i:02d}": attrs for i, attrs in enumerate(unique)}
    pool = sorted({a for s in unique for a in s})
    domains = {a: list(range(domain_size)) for a in pool}
    return Schema.from_attribute_sets(entity_attrs, domains)
