"""Durable write-ahead log: JSON-lines records of the version graph.

One record per line, in the :mod:`repro.io` value convention (attribute
names to JSON scalars — the Attribute Axiom's atomicity is what makes
the rows losslessly JSON-codable).  Four record types:

* ``snapshot`` — the root version as a self-contained database document
  (schema, relations, constraints), written once when a WAL-backed
  engine starts;
* ``commit`` — one committed transaction: version id, parent id,
  branch, and the buffered operations in order;
* ``branch`` — a branch creation point;
* ``checkpoint`` — every branch head as a full database document plus
  the graph's sequence counter, so replay can start *here* instead of
  at the root snapshot (:meth:`StoreEngine.replay` picks the newest
  one; see :func:`checkpoint_record`);
* ``epoch`` — a promotion marker: a replica that took over as primary
  stamps the next epoch number (plus the sequence counter and branch
  heads it took over at) into a fresh segment, after which appends by
  any handle still holding the old epoch are *fenced* — they raise
  :class:`~repro.errors.EpochFenced` instead of silently diverging
  (see :meth:`WriteAheadLog.stamp_epoch`).

Replaying the records in order through :meth:`StoreEngine.replay`
reconstructs an identical version graph: version ids come from one
monotone sequence and every state is re-derived by re-applying the
logged operations, so the replayed states are equal — relation for
relation — to the originals.

A log is either a **single file** (the original form) or a **segment
directory** holding ``wal.000001.jsonl``, ``wal.000002.jsonl``, … in
append order.  Segmented logs rotate on size/record-count bounds and on
every checkpoint (so a checkpoint always heads its segment); segments
before the newest checkpointed one carry no information the checkpoint
does not, and :meth:`WriteAheadLog.prune` archives or drops them.

Crash-safety contract: a crash mid-append leaves a torn *final* line.
:meth:`records` drops it with a :class:`~repro.errors.TornTailWarning`
(and :meth:`repair` truncates it off the file), because the prefix is a
complete, valid history; a corrupt line anywhere *before* the final
record is tampering or media failure and raises
:class:`~repro.errors.StoreError`.  New log files (and fresh segments)
fsync their parent directory so the file itself — not just its
contents — survives power loss.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import warnings
from pathlib import Path
from typing import Any, Iterator

from repro import io
from repro.errors import EpochFenced, SchemaError, StoreError, TornTailWarning

SEGMENT_PATTERN = "wal.%06d.jsonl"
_SEGMENT_RE = re.compile(r"^wal\.(\d{6})\.jsonl$")


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a just-created (or renamed/unlinked) entry
    survives power loss.  A no-op on platforms where directories cannot
    be opened or synced (the file-content fsync still happened)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _parse_line(line: bytes | str):
    """``(record, ok)`` for one stripped WAL line: ``ok`` is False when
    the line is not a complete record object.  A torn line can never
    masquerade as one — a proper prefix of a one-line JSON object has
    unbalanced braces or an unterminated literal, so it fails to parse."""
    try:
        record = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None, False
    if not isinstance(record, dict) or "type" not in record:
        return record, False
    return record, True


class WriteAheadLog:
    """An append-only JSON-lines log, single-file or segmented.

    Every :meth:`append` flushes to the OS; with ``sync=True`` it also
    ``fsync``\\ s, trading commit latency for power-loss durability.
    Appends are serialised by the engine's commit lock, which is what
    makes the log a total order of the graph's growth.

    ``path`` naming a directory (or either rotation bound being set)
    selects segmented mode: records append to the highest-numbered
    ``wal.NNNNNN.jsonl`` segment, and a new segment starts whenever the
    current one holds ``segment_records`` records or ``segment_bytes``
    bytes — or whenever the engine writes a checkpoint
    (:meth:`rotate`).  Single-file logs never rotate; checkpoints are
    appended inline.
    """

    def __init__(self, path: str | Path, sync: bool = False,
                 segment_records: int | None = None,
                 segment_bytes: int | None = None):
        path = Path(path)
        for bound, name in ((segment_records, "segment_records"),
                            (segment_bytes, "segment_bytes")):
            if bound is not None and bound < 1:
                raise StoreError(f"{name} must be >= 1, got {bound}")
        self.sync = sync
        self.segment_records = segment_records
        self.segment_bytes = segment_bytes
        self.segmented = (path.is_dir() or segment_records is not None
                          or segment_bytes is not None)
        self.path = path
        # Duck-typed observability hook (repro.obs.metrics.WalProbe):
        # when attached, append counts records/bytes into the registry
        # and times the fsync so the commit pipeline can attribute it
        # as its own phase.
        self.probe = None
        if self.segmented:
            path.mkdir(parents=True, exist_ok=True)
            segments = self.segment_paths(path)
            if segments:
                index = int(_SEGMENT_RE.match(segments[-1].name).group(1))
            else:
                index = 1
            self._segment_index = index
            self._open_segment(path / (SEGMENT_PATTERN % index))
        else:
            self._open_segment(path)
        self.epoch = self.current_epoch(path)

    def _open_segment(self, file_path: Path) -> None:
        """Open ``file_path`` for appending, priming the rotation
        counters from whatever it already holds; a newly created file
        fsyncs its parent directory (creation durability)."""
        created = not file_path.exists()
        self._file = file_path
        self._fh = open(file_path, "a", encoding="utf-8")
        if created:
            _fsync_dir(file_path.parent)
            self._count = 0
            self._bytes = 0
        else:
            with open(file_path, "rb") as fh:
                data = fh.read()
            self._count = sum(1 for raw in data.splitlines() if raw.strip())
            self._bytes = len(data)

    @property
    def current_segment(self) -> Path:
        """The file appends currently land in (``path`` itself for a
        single-file log)."""
        return self._file

    def append(self, record: dict) -> None:
        if self._fh.closed:
            raise StoreError(
                f"WAL {self.path} is closed; cannot append "
                f"{record.get('type', 'a')!r} record")
        self._check_fence()
        try:
            line = json.dumps(record, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise StoreError(f"WAL record is not JSON-codable: {exc}") from exc
        data = line + "\n"
        if self.segmented and self._count > 0 and (
                (self.segment_records is not None
                 and self._count >= self.segment_records)
                or (self.segment_bytes is not None
                    and self._bytes + len(data) > self.segment_bytes)):
            self.rotate()
        try:
            self._fh.write(data)
            self._fh.flush()
        except ValueError as exc:  # racing close(): a closed handle
            raise StoreError(
                f"WAL {self.path} is closed; cannot append: {exc}") from exc
        probe = self.probe
        if self.sync:
            if probe is not None:
                before = probe.clock()
                os.fsync(self._fh.fileno())
                fsync_s = probe.clock() - before
            else:
                os.fsync(self._fh.fileno())
                fsync_s = 0.0
        else:
            fsync_s = 0.0
        if probe is not None:
            probe.observe_append(len(data), fsync_s)
        self._count += 1
        self._bytes += len(data)

    def rotate(self) -> Path:
        """Start the next segment (the checkpoint and size-bound path).

        The outgoing segment is flushed (and, under ``sync``, fsynced)
        before the new file is created, and the directory is fsynced so
        the new segment survives power loss.  A no-op on single-file
        logs and on a still-empty current segment.
        """
        if self._fh.closed:
            raise StoreError(f"WAL {self.path} is closed; cannot rotate")
        if not self.segmented or self._count == 0:
            return self._file
        self._check_fence()
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        self._fh.close()
        self._segment_index += 1
        self._open_segment(self.path / (SEGMENT_PATTERN % self._segment_index))
        return self._file

    # ------------------------------------------------------------------
    # epochs and fencing (the failover write-exclusion mechanism)
    # ------------------------------------------------------------------
    def _check_fence(self) -> None:
        """Refuse to write under a stale epoch.

        Promotion rotates the log to a fresh segment (or, for a
        single-file log, bumps the ``<path>.epoch`` sidecar), so a
        demoted handle detects the takeover with one ``stat``: a
        segment it did not create appearing after its own, or a sidecar
        epoch beyond the one it holds.  The check runs on every append
        and rotation — appends are per-commit, so the extra stat rides
        a path that already pays for validation and an fsync-able
        write.
        """
        if self.segmented:
            nxt = self.path / (SEGMENT_PATTERN % (self._segment_index + 1))
            if not nxt.exists():
                return
            current = self.current_epoch(self.path)
            raise EpochFenced(
                f"WAL {self.path} was taken over (epoch "
                f"{max(current, self.epoch + 1)} stamped past segment "
                f"{self._file.name}); this handle holds epoch "
                f"{self.epoch} and may no longer append",
                held=self.epoch, current=max(current, self.epoch + 1))
        marker = self.epoch_marker(self.path)
        try:
            current = int(marker.read_text().split()[0])
        except (OSError, ValueError):
            return  # no sidecar: no promotion ever happened here
        if current > self.epoch:
            raise EpochFenced(
                f"WAL {self.path} was taken over at epoch {current}; "
                f"this handle holds epoch {self.epoch} and may no "
                "longer append", held=self.epoch, current=current)

    def stamp_epoch(self, epoch: int | None = None,
                    seq: int | None = None,
                    heads: dict[str, str] | None = None) -> dict:
        """Open the next epoch: rotate to a fresh segment and append an
        ``epoch`` record (fsynced — a promotion that is not durable is
        no promotion), fencing every handle still on the old epoch.

        ``epoch`` defaults to the successor of the newest epoch visible
        in the log; ``seq``/``heads`` record where the graph stood at
        takeover, so replay can cross-check.  Single-file logs cannot
        rotate, so the fence is a ``<path>.epoch`` sidecar bumped
        atomically alongside the inline record.  Returns the record.
        """
        self._check_fence()  # two racing promotions: first stamp wins
        current = self.current_epoch(self.path)
        if epoch is None:
            epoch = current + 1
        if epoch <= current:
            raise StoreError(
                f"epoch must advance: log is at {current}, "
                f"stamp asked for {epoch}")
        record = epoch_record(epoch, seq=seq, heads=heads)
        self.rotate()
        line = json.dumps(record, sort_keys=True)
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._count += 1
        self._bytes += len(line) + 1
        if not self.segmented:
            marker = self.epoch_marker(self.path)
            with open(marker, "w", encoding="utf-8") as fh:
                fh.write(f"{epoch}\n")
                fh.flush()
                os.fsync(fh.fileno())
            _fsync_dir(marker.parent)
        self.epoch = epoch
        return record

    @staticmethod
    def epoch_marker(path: str | Path) -> Path:
        """The sidecar file fencing a *single-file* log (segmented logs
        fence through segment appearance instead)."""
        path = Path(path)
        return path.parent / (path.name + ".epoch")

    @staticmethod
    def current_epoch(path: str | Path) -> int:
        """The newest epoch stamped into the log (0 before any
        promotion).  Segmented logs answer from segment heads — epoch
        records always head their segment, and checkpoints carry the
        epoch they were taken under — single-file logs from the
        sidecar."""
        path = Path(path)
        if path.is_dir():
            for segment in reversed(WriteAheadLog.segment_paths(path)):
                head = WriteAheadLog.first_record(segment)
                if head is None:
                    continue
                if head.get("type") == "epoch":
                    return int(head.get("epoch", 0))
                if head.get("type") == "checkpoint" and "epoch" in head:
                    return int(head["epoch"])
            return 0
        marker = WriteAheadLog.epoch_marker(path)
        try:
            return int(marker.read_text().split()[0])
        except (OSError, ValueError):
            return 0

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reading (static: replay and tooling work on paths, not handles)
    # ------------------------------------------------------------------
    @staticmethod
    def segment_paths(path: str | Path) -> list[Path]:
        """The log's files in append order: its numbered segments for a
        directory, ``[path]`` for a single-file log."""
        path = Path(path)
        if path.is_dir():
            return sorted(p for p in path.iterdir()
                          if _SEGMENT_RE.match(p.name))
        return [path]

    @staticmethod
    def is_empty(path: str | Path) -> bool:
        """True when the log holds no records yet (missing file, empty
        file, or a segment directory of empty segments)."""
        path = Path(path)
        if not path.exists():
            return True
        if path.is_dir():
            return all(p.stat().st_size == 0
                       for p in WriteAheadLog.segment_paths(path))
        return path.stat().st_size == 0

    @staticmethod
    def first_record(path: str | Path) -> dict | None:
        """The first record of one log *file*, or ``None`` when the file
        is missing/empty/unreadable — the cheap peek replay uses to find
        the newest checkpoint-headed segment without parsing old ones."""
        try:
            with open(path, "rb") as fh:
                for raw in fh:
                    line = raw.strip()
                    if not line:
                        continue
                    record, ok = _parse_line(line)
                    return record if ok else None
        except OSError:
            return None
        return None

    @staticmethod
    def records(path: str | Path, torn_tail: str = "warn") -> Iterator[dict]:
        """The log's records in append order (blank lines skipped),
        across every segment for a directory path.

        ``torn_tail`` governs the *final* line of the *final* segment
        when it is not a complete record — the signature a crash
        mid-append leaves: ``"warn"`` (default) drops it with a
        :class:`TornTailWarning`, ``"ignore"`` drops it silently, and
        ``"error"`` raises.  A corrupt line anywhere else always raises
        :class:`StoreError` — a mid-log hole means the history after it
        cannot be trusted.
        """
        if torn_tail not in ("warn", "ignore", "error"):
            raise ValueError(f"unknown torn_tail policy {torn_tail!r}")
        segments = WriteAheadLog.segment_paths(path)
        yield from WriteAheadLog._records_from(segments, torn_tail)

    @staticmethod
    def _records_from(segments: list[Path],
                      torn_tail: str = "warn") -> Iterator[dict]:
        """``records`` over an explicit (ordered) segment list — replay
        uses this to start at the newest checkpointed segment."""
        for si, segment in enumerate(segments):
            with open(segment, "rb") as fh:
                lines = [(n, raw.strip())
                         for n, raw in enumerate(fh, start=1)]
            nonblank = [i for i, (_, line) in enumerate(lines) if line]
            for i in nonblank:
                n, line = lines[i]
                record, ok = _parse_line(line)
                if ok:
                    yield record
                    continue
                final = si == len(segments) - 1 and i == nonblank[-1]
                if final and torn_tail != "error":
                    if torn_tail == "warn":
                        warnings.warn(
                            f"dropping torn final WAL line {n} in "
                            f"{segment} (crash mid-append); the prefix "
                            f"is intact", TornTailWarning, stacklevel=3)
                    return
                raise StoreError(
                    f"corrupt WAL line {n} in {segment}: not a record "
                    "object" if record is not None else
                    f"corrupt WAL line {n} in {segment}: invalid JSON")

    @staticmethod
    def repair(path: str | Path) -> int:
        """Truncate a torn final line off the log's last file.

        Returns the bytes dropped (0 when the tail is clean).  Only the
        *final* line may be malformed — that is what a crash mid-append
        produces; a malformed line with complete records after it raises
        :class:`StoreError` instead of truncating away good history.
        The truncation is fsynced, so a repaired log stays repaired.

        A final line that parses but lost its newline (the crash hit
        between the record and the separator) is *complete*: repair
        writes the missing newline so tail readers — which rightly
        treat an unterminated line as in-progress — can consume the
        record, keeping recovery, replication, and promotion agreed on
        where the durable prefix ends.
        """
        segments = WriteAheadLog.segment_paths(path)
        if not segments or not segments[-1].exists():
            return 0
        last = segments[-1]
        data = last.read_bytes()
        good_end = 0
        bad_line: int | None = None
        pos = 0
        n = 0
        while pos < len(data):
            nl = data.find(b"\n", pos)
            end = len(data) if nl == -1 else nl + 1
            chunk = data[pos:end].strip()
            n += 1
            if chunk:
                _, ok = _parse_line(chunk)
                if ok:
                    if bad_line is not None:
                        raise StoreError(
                            f"corrupt WAL line {bad_line} in {last}: "
                            "followed by intact records (not a torn tail)")
                    good_end = end
                elif bad_line is None:
                    bad_line = n
                else:
                    raise StoreError(
                        f"corrupt WAL lines {bad_line} and {n} in {last}: "
                        "not a torn tail")
            pos = end
        if bad_line is None:
            if data and not data.endswith(b"\n"):
                # The final record is complete but unterminated: finish
                # it so cursors (which never consume a line that might
                # still be mid-append) see what replay sees.
                with open(last, "ab") as fh:
                    fh.write(b"\n")
                    fh.flush()
                    os.fsync(fh.fileno())
            return 0
        dropped = len(data) - good_end
        with open(last, "r+b") as fh:
            fh.truncate(good_end)
            fh.flush()
            os.fsync(fh.fileno())
        return dropped

    @staticmethod
    def prune(path: str | Path, archive: str | Path | None = None,
              ) -> list[Path]:
        """Drop (or move into ``archive``) every segment before the
        newest checkpoint-headed one.

        Those segments describe only history the checkpoint already
        carries in full, so replay never reads them; pruning is how a
        long-running store's disk stays bounded.  Single-file logs and
        segmented logs without a checkpoint are left untouched (their
        whole history is still load-bearing).  Returns the pruned
        segment paths (their *original* locations).
        """
        path = Path(path)
        if not path.is_dir():
            return []
        segments = WriteAheadLog.segment_paths(path)
        floor = None
        for i in range(len(segments) - 1, 0, -1):
            first = WriteAheadLog.first_record(segments[i])
            if first is not None and first.get("type") == "checkpoint":
                floor = i
                break
        if floor is None:
            return []
        victims = segments[:floor]
        if archive is not None:
            archive = Path(archive)
            archive.mkdir(parents=True, exist_ok=True)
        for p in victims:
            if archive is not None:
                shutil.move(str(p), str(archive / p.name))
            else:
                p.unlink()
        _fsync_dir(path)
        if archive is not None:
            _fsync_dir(archive)
        return victims


class WalCursor:
    """A stateful tail reader: every complete record exactly once.

    The follow hook replicas are built on.  A cursor remembers a
    ``(segment, byte offset)`` position in a live WAL and each
    :meth:`poll` returns the complete records appended since, across
    segment rotations.  The read side of the PR-6 crash contract:

    * an *incomplete* final line (no trailing newline — the only shape a
      torn in-progress append can have, because the newline is the last
      byte written) is never consumed; the cursor simply waits for the
      primary to finish the append or to truncate it on crash recovery
      (:meth:`WriteAheadLog.repair` — the cursor notices the file
      shrinking back to the intact prefix and clamps);
    * a newline-*terminated* line that fails to parse, or a dangling
      partial line in a rotated-away (frozen) segment, is corruption and
      raises :class:`StoreError` — rotation only happens after the
      previous append completed, so a frozen segment can never end
      mid-record legitimately;
    * a segment pruned out from under the cursor raises
      :class:`StoreError`; the caller re-bootstraps from the newest
      checkpoint (:meth:`repro.server.ReplicaEngine.resync`).

    Positions are plain dicts (:meth:`position`), so a replica can
    persist and resume its own progress.
    """

    __slots__ = ("path", "_segment", "_offset")

    def __init__(self, path: str | Path, position: dict | None = None):
        self.path = Path(path)
        self._segment: Path | None = None
        self._offset = 0
        if position is not None:
            if position.get("segment") is not None:
                self._segment = self.path / position["segment"] \
                    if self.path.is_dir() else self.path
            self._offset = int(position.get("offset", 0))

    def position(self) -> dict:
        """The resumable read position: ``{"segment", "offset"}``."""
        return {
            "segment": self._segment.name if self._segment is not None
            else None,
            "offset": self._offset,
        }

    def behind_bytes(self) -> int:
        """Bytes of log the cursor has not consumed yet — the cheap
        staleness measure a replica's lag report leads with (0 means the
        replica has read everything durably written so far)."""
        segments = [p for p in WriteAheadLog.segment_paths(self.path)
                    if p.exists()]
        if not segments:
            return 0
        if self._segment is None:
            return sum(p.stat().st_size for p in segments)
        behind = 0
        seen = False
        for p in segments:
            if p == self._segment:
                seen = True
                behind += max(0, p.stat().st_size - self._offset)
            elif seen:
                behind += p.stat().st_size
        if not seen:  # cursor segment pruned; poll() will raise
            return sum(p.stat().st_size for p in segments)
        return behind

    def seek_newest_checkpoint_segment(self) -> None:
        """Position the cursor at the newest checkpoint-headed segment
        (a no-op when none exists, or for single-file logs) — the
        bootstrap that lets a fresh replica skip pruned-or-prunable
        history entirely, mirroring ``replay(from_checkpoint=True)``."""
        segments = WriteAheadLog.segment_paths(self.path)
        for i in range(len(segments) - 1, 0, -1):
            head = WriteAheadLog.first_record(segments[i])
            if head is not None and head.get("type") == "checkpoint":
                self._segment = segments[i]
                self._offset = 0
                return

    def poll(self, max_records: int | None = None) -> list[dict]:
        """The complete records appended since the last poll.

        Returns an empty list when nothing new is durably visible —
        including while the final line is still being appended (or was
        torn by a crash the primary has not repaired yet).  Never blocks.
        """
        out: list[dict] = []
        while True:
            if max_records is not None and len(out) >= max_records:
                return out
            segments = [p for p in WriteAheadLog.segment_paths(self.path)
                        if p.exists()]
            if not segments:
                return out
            if self._segment is None:
                self._segment = segments[0]
                self._offset = 0
            try:
                index = segments.index(self._segment)
                data = self._segment.read_bytes()
            except (ValueError, FileNotFoundError):
                raise StoreError(
                    f"WAL segment {self._segment.name} was pruned out "
                    "from under the cursor; resynchronise from the "
                    "newest checkpoint") from None
            final = index == len(segments) - 1
            if len(data) < self._offset:
                # The primary repaired a torn tail.  Only bytes past the
                # last complete record are ever truncated, and the
                # cursor never consumed those, so clamping is safe.
                self._offset = len(data)
            pos = self._offset
            while pos < len(data) and (max_records is None
                                       or len(out) < max_records):
                nl = data.find(b"\n", pos)
                if nl == -1:
                    break  # in-progress (or torn) append: wait
                line = data[pos:nl].strip()
                pos = nl + 1
                self._offset = pos
                if not line:
                    continue
                record, ok = _parse_line(line)
                if not ok:
                    raise StoreError(
                        f"corrupt WAL record at byte {pos} of "
                        f"{self._segment.name}: a newline-terminated "
                        "line failed to parse")
                out.append(record)
            if max_records is not None and len(out) >= max_records:
                return out
            if pos < len(data):
                # A trailing line without its newline yet.
                if final:
                    return out  # the append (or its repair) is pending
                raise StoreError(
                    f"WAL segment {self._segment.name} was rotated away "
                    "with a dangling partial record — torn inside the "
                    "log, not at its tail")
            if final:
                return out
            # Frozen segment fully consumed: advance to the next one.
            self._segment = segments[index + 1]
            self._offset = 0
def snapshot_record(db, constraints, version_id: str,
                    branch: str) -> dict[str, Any]:
    """The root state as a ``snapshot`` record (a full database
    document, so a WAL is self-contained and replayable from nothing).
    Constraint kinds without a JSON form cannot be logged."""
    try:
        document = io.database_to_dict(db, constraints)
    except SchemaError as exc:
        raise StoreError(
            f"a WAL-backed store needs serialisable constraints: {exc}"
        ) from exc
    return {"type": "snapshot", "version": version_id, "branch": branch,
            "document": document}


def commit_record(version_id: str, parent_id: str, branch: str,
                  ops) -> dict[str, Any]:
    """One committed transaction as a ``commit`` record."""
    return {"type": "commit", "version": version_id, "parent": parent_id,
            "branch": branch, "ops": [op.to_record() for op in ops]}


def branch_record(name: str, at_version_id: str) -> dict[str, Any]:
    """A branch creation as a ``branch`` record."""
    return {"type": "branch", "name": name, "at": at_version_id}


def checkpoint_record(graph, constraints, epoch: int = 0) -> dict[str, Any]:
    """Every branch head as a full database document, plus the graph's
    sequence counter — everything replay needs to resume *here*: the
    heads become parentless floor versions, the counter keeps later
    version ids identical to a full replay's.  Branches sharing a head
    share one document object (serialised once per head in the JSON
    line only when heads coincide).  ``epoch`` records which promotion
    epoch the checkpoint was taken under, so a replay resuming here
    still knows the current fence."""
    documents: dict[str, dict] = {}
    branches: dict[str, dict] = {}
    for name, head in sorted(graph.heads.items()):
        if head.vid not in documents:
            try:
                documents[head.vid] = io.database_to_dict(
                    head.state, constraints)
            except SchemaError as exc:
                raise StoreError(
                    f"a checkpointed store needs serialisable "
                    f"constraints: {exc}") from exc
        branches[name] = {"version": head.vid,
                          "document": documents[head.vid]}
    return {"type": "checkpoint", "seq": graph.seq, "branches": branches,
            "epoch": epoch}


def epoch_record(epoch: int, seq: int | None = None,
                 heads: dict[str, str] | None = None) -> dict[str, Any]:
    """A promotion as an ``epoch`` record: the new epoch number plus —
    when known — the sequence counter and branch heads the promoted
    primary took over at, which replay cross-checks exactly like a
    checkpoint's."""
    record: dict[str, Any] = {"type": "epoch", "epoch": epoch}
    if seq is not None:
        record["seq"] = seq
    if heads is not None:
        record["heads"] = dict(sorted(heads.items()))
    return record
