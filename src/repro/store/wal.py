"""Durable write-ahead log: JSON-lines records of the version graph.

One record per line, in the :mod:`repro.io` value convention (attribute
names to JSON scalars — the Attribute Axiom's atomicity is what makes
the rows losslessly JSON-codable).  Three record types:

* ``snapshot`` — the root version as a self-contained database document
  (schema, relations, constraints), written once when a WAL-backed
  engine starts;
* ``commit`` — one committed transaction: version id, parent id,
  branch, and the buffered operations in order;
* ``branch`` — a branch creation point.

Replaying the records in order through :meth:`StoreEngine.replay`
reconstructs an identical version graph: version ids come from one
monotone sequence and every state is re-derived by re-applying the
logged operations, so the replayed states are equal — relation for
relation — to the originals.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator

from repro import io
from repro.errors import SchemaError, StoreError


class WriteAheadLog:
    """An append-only JSON-lines log.

    Every :meth:`append` flushes to the OS; with ``sync=True`` it also
    ``fsync``\\ s, trading commit latency for power-loss durability.
    Appends are serialised by the engine's commit lock, which is what
    makes the log a total order of the graph's growth.
    """

    def __init__(self, path: str | Path, sync: bool = False):
        self.path = Path(path)
        self.sync = sync
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, record: dict) -> None:
        try:
            line = json.dumps(record, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise StoreError(f"WAL record is not JSON-codable: {exc}") from exc
        self._fh.write(line + "\n")
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def records(path: str | Path) -> Iterator[dict]:
        """The log's records in append order (blank lines skipped)."""
        with open(path, encoding="utf-8") as fh:
            for n, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise StoreError(
                        f"corrupt WAL line {n} in {path}: {exc}") from exc
                if not isinstance(record, dict) or "type" not in record:
                    raise StoreError(
                        f"corrupt WAL line {n} in {path}: not a record object")
                yield record


# ----------------------------------------------------------------------
# record codecs
# ----------------------------------------------------------------------
def snapshot_record(db, constraints, version_id: str,
                    branch: str) -> dict[str, Any]:
    """The root state as a ``snapshot`` record (a full database
    document, so a WAL is self-contained and replayable from nothing).
    Constraint kinds without a JSON form cannot be logged."""
    try:
        document = io.database_to_dict(db, constraints)
    except SchemaError as exc:
        raise StoreError(
            f"a WAL-backed store needs serialisable constraints: {exc}"
        ) from exc
    return {"type": "snapshot", "version": version_id, "branch": branch,
            "document": document}


def commit_record(version_id: str, parent_id: str, branch: str,
                  ops) -> dict[str, Any]:
    """One committed transaction as a ``commit`` record."""
    return {"type": "commit", "version": version_id, "parent": parent_id,
            "branch": branch, "ops": [op.to_record() for op in ops]}


def branch_record(name: str, at_version_id: str) -> dict[str, Any]:
    """A branch creation as a ``branch`` record."""
    return {"type": "branch", "name": name, "at": at_version_id}
