"""Transactions: buffered updates, net deltas, and commit validation.

A :class:`Transaction` buffers ``insert``/``delete``/``remove``/
``replace`` calls against a pinned base version.  Nothing touches shared
state until the engine commits it; at commit time the buffered
operations are expanded — against the *current branch head*, not the
possibly stale base — into their net row effect (:class:`Changes`),
which lands as one :meth:`~repro.core.extension.DatabaseExtension.apply_changes`
derivation step.

Commit validation is the store's half of the paper's axiom programme:
every committed state must satisfy the Containment Condition, the
Extension Axiom, and the declared integrity constraints.  Because the
store only ever installs validated states, the head is *clean by
induction* (the root is audited at engine construction), and a commit
need only judge the checks its delta can disturb:

* :class:`ValidationPlan` compiles the schema + constraint set once into
  the per-relation *probe family* — the attribute sets through which any
  extension-level check reads a relation (FD determinants, containment
  projection sets, contributor schemas, participation member sets).
* :func:`validate_changes` re-judges, in O(|delta|) probes against the
  head state, exactly the groups the delta touches — the object-level
  mirror of :meth:`repro.kernel.CheckSet.recheck`'s dirty-lhs-group
  sweep (same granularity as :func:`repro.kernel.dirty_group_keys`).
* :func:`write_footprint` projects the delta's rows through the same
  probe family, yielding the ``(relation, attrs, projected-row)``
  conflict keys of optimistic concurrency: two commits whose footprints
  are disjoint cannot disturb each other's probes, so disjoint writers
  commit without re-serialising behind each other's validation.

A wholesale ``replace`` has no bounded footprint; the engine validates
such commits with a full dirty-context audit and gives them a ``None``
(conflicts-with-everything) footprint.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.axioms import AxiomReport
from repro.core.integrity import (
    CardinalityConstraint,
    FunctionalConstraint,
    ParticipationConstraint,
    SubsetConstraint,
)
from repro.errors import ExtensionError, StoreError
from repro.relational import Relation, Tuple
from repro.store.version_graph import Version

_EMPTY: frozenset = frozenset()


class Op:
    """One buffered operation, in WAL-codec-friendly form."""

    __slots__ = ("kind", "relation", "rows", "propagate")

    def __init__(self, kind: str, relation: str, rows: tuple,
                 propagate: bool = False):
        self.kind = kind
        self.relation = relation
        self.rows = rows
        self.propagate = propagate

    def to_record(self) -> dict:
        """The JSON-ready WAL form (rows via the :mod:`repro.io` value
        convention: attribute->scalar dicts)."""
        record: dict = {"op": self.kind, "relation": self.relation}
        if self.kind in ("insert", "delete"):
            record["row"] = self.rows[0].as_dict()
            record["propagate"] = self.propagate
        else:
            record["rows"] = [t.as_dict() for t in self.rows]
        return record

    def __repr__(self) -> str:
        return f"Op({self.kind}, {self.relation}, {len(self.rows)} row(s))"


class Transaction:
    """Buffered updates against a pinned base version.

    Buffer methods validate shape and domain membership immediately (a
    malformed row is a caller bug, reported as :class:`ExtensionError`
    at the call site); semantic validation happens at commit.  The
    object is single-use: once committed it cannot be reused, but
    :meth:`rebased` produces a fresh transaction with the same buffered
    operations against a newer head (the conflict-retry path).
    """

    __slots__ = ("schema", "base", "branch", "ops", "committed")

    def __init__(self, schema, base: Version, branch: str = "main"):
        self.schema = schema
        self.base = base
        self.branch = branch
        self.ops: list[Op] = []
        self.committed = False

    # ------------------------------------------------------------------
    # buffering
    # ------------------------------------------------------------------
    def _validated(self, relation: str, row) -> Tuple:
        e = self.schema[relation]
        t = row if isinstance(row, Tuple) else Tuple(dict(row))
        if t.schema != e.attributes:
            raise ExtensionError(
                f"tuple schema {sorted(t.schema)} does not match {relation!r}")
        for a in e.attributes:
            if t[a] not in self.schema.universe.domain(a):
                raise ExtensionError(
                    f"value {t[a]!r} for attribute {a!r} of {relation!r} is "
                    f"outside its atomic value set")
        return t

    def insert(self, relation: str, row, propagate: bool = True) -> "Transaction":
        """Buffer an insert; with ``propagate`` the projections onto
        every proper generalisation ride along (containment-preserving,
        exactly like :meth:`DatabaseExtension.insert`)."""
        self.ops.append(Op("insert", relation,
                           (self._validated(relation, row),), propagate))
        return self

    def delete(self, relation: str, row, propagate: bool = True) -> "Transaction":
        """Buffer a delete; with ``propagate`` every specialisation tuple
        projecting onto the deleted one is cascaded away."""
        self.ops.append(Op("delete", relation,
                           (self._validated(relation, row),), propagate))
        return self

    def remove(self, relation: str, rows: Iterable) -> "Transaction":
        """Buffer a bulk non-propagating removal."""
        self.ops.append(Op("remove", relation, tuple(
            self._validated(relation, r) for r in rows)))
        return self

    def replace(self, relation: str, rows: Iterable) -> "Transaction":
        """Buffer a wholesale replacement of one relation's instance set."""
        self.ops.append(Op("replace", relation, tuple(
            self._validated(relation, r) for r in rows)))
        return self

    def rebased(self, new_base: Version) -> "Transaction":
        """The same buffered operations against a newer base version."""
        twin = Transaction(self.schema, new_base, self.branch)
        twin.ops = list(self.ops)
        return twin

    def apply_records(self, records: Iterable[Mapping]) -> "Transaction":
        """Buffer operations given in WAL-record form.

        Rows are re-validated through the public buffer methods, so
        neither a corrupted log nor a remote client can smuggle
        malformed tuples into the store — this is the single entry
        point WAL replay and the network ``stage`` op share.  Raises
        :class:`StoreError` on unknown op kinds and ``KeyError``-free
        :class:`StoreError` on structurally broken records.
        """
        for record in records:
            if not isinstance(record, Mapping):
                raise StoreError(
                    f"op record must be an object, got "
                    f"{type(record).__name__}")
            kind = record.get("op")
            try:
                if kind == "insert":
                    self.insert(record["relation"], record["row"],
                                record.get("propagate", True))
                elif kind == "delete":
                    self.delete(record["relation"], record["row"],
                                record.get("propagate", True))
                elif kind == "remove":
                    self.remove(record["relation"], record["rows"])
                elif kind == "replace":
                    self.replace(record["relation"], record["rows"])
                else:
                    raise StoreError(f"unknown WAL op kind: {kind!r}")
            except KeyError as exc:
                raise StoreError(
                    f"op record {record!r} is missing field {exc}") from exc
            except TypeError as exc:
                raise StoreError(
                    f"op record {record!r} is malformed: {exc}") from exc
        return self

    @classmethod
    def from_records(cls, schema, base: Version, branch: str,
                     records: Iterable[Mapping]) -> "Transaction":
        """Rebuild a transaction from WAL op records (see
        :meth:`apply_records`)."""
        return cls(schema, base, branch).apply_records(records)

    # ------------------------------------------------------------------
    # net effect
    # ------------------------------------------------------------------
    def net_changes(self, state, index=None) -> "Changes":
        """The transaction's net row effect against ``state``.

        Simulates the buffered operations in order over an effective
        view of ``state`` (base rows minus pending removals plus pending
        additions), so re-inserting a removed row cancels, duplicate
        inserts dedup, and cascades see earlier operations of the same
        transaction.  Delete cascades find their victims through the
        engine's head probe index when available (one group lookup),
        falling back to an object-level scan.
        """
        schema = state.schema
        added: dict[str, dict] = {}
        removed: dict[str, dict] = {}
        replaced: dict[str, dict] = {}

        def present(name: str, t: Tuple) -> bool:
            if name in replaced:
                return t in replaced[name]
            if t in removed.get(name, _EMPTY):
                return False
            return t in added.get(name, _EMPTY) or t in state.R(name).tuples

        def add(name: str, t: Tuple) -> None:
            if present(name, t):
                return
            if t in removed.get(name, _EMPTY):
                del removed[name][t]
            elif name in replaced:
                replaced[name][t] = None
            else:
                added.setdefault(name, {})[t] = None

        def drop(name: str, t: Tuple) -> None:
            if not present(name, t):
                return
            if t in added.get(name, _EMPTY):
                del added[name][t]
            elif name in replaced:
                del replaced[name][t]
            else:
                removed.setdefault(name, {})[t] = None

        def victims(s, e, t: Tuple) -> list[Tuple]:
            # Effective rows of R_s whose projection onto A_e is t.
            if s.name in replaced:
                return [v for v in replaced[s.name]
                        if v.project(e.attributes) == t]
            group = index.group(s.name, e.attributes, t) \
                if index is not None else None
            if group is None:
                group = [u for u in state.R(s).tuples
                         if u.project(e.attributes) == t]
            out = [u for u in group if u not in removed.get(s.name, _EMPTY)]
            out += [v for v in added.get(s.name, _EMPTY)
                    if v.project(e.attributes) == t]
            return out

        for op in self.ops:
            e = schema[op.relation]
            if op.kind == "insert":
                t = op.rows[0]
                add(e.name, t)
                if op.propagate:
                    for g in state.gen.proper_generalisations(e):
                        add(g.name, t.project(g.attributes))
            elif op.kind == "delete":
                t = op.rows[0]
                if op.propagate:
                    for s in state.spec.proper_specialisations(e):
                        for victim in victims(s, e, t):
                            drop(s.name, victim)
                drop(e.name, t)
            elif op.kind == "remove":
                for t in op.rows:
                    drop(e.name, t)
            else:  # replace
                rows: dict = {}
                for t in op.rows:
                    rows[t] = None
                replaced[e.name] = rows
                added.pop(e.name, None)
                removed.pop(e.name, None)
        return Changes(added, removed, {
            name: Relation._trusted(schema[name].attributes, rows)
            for name, rows in replaced.items()
        })


class Changes:
    """One transaction's net row effect: the unit of commit.

    ``added``/``removed`` map relation names to row tuples (every listed
    row a genuine difference against the commit-time head);
    ``replaced`` maps names to whole replacement relations.
    """

    __slots__ = ("added", "removed", "replaced", "_added", "_removed")

    def __init__(self, added: Mapping[str, Iterable[Tuple]],
                 removed: Mapping[str, Iterable[Tuple]],
                 replaced: Mapping[str, Relation]):
        self.added = {n: tuple(rows) for n, rows in added.items() if rows}
        self.removed = {n: tuple(rows) for n, rows in removed.items() if rows}
        self.replaced = dict(replaced)
        self._added = {n: frozenset(rows) for n, rows in self.added.items()}
        self._removed = {n: frozenset(rows) for n, rows in self.removed.items()}

    def __bool__(self) -> bool:
        return bool(self.added or self.removed or self.replaced)

    def touched(self) -> frozenset[str]:
        return (frozenset(self.added) | frozenset(self.removed)
                | frozenset(self.replaced))

    def __repr__(self) -> str:
        return (f"Changes(+{sum(map(len, self.added.values()))}, "
                f"-{sum(map(len, self.removed.values()))}, "
                f"replaced={sorted(self.replaced)})")


class ValidationPlan:
    """The schema + constraint set compiled into per-relation probes.

    Built once per engine.  ``probe_family[name]`` is the set of
    attribute sets through which *any* extension-level check reads
    relation ``name``; it is simultaneously the read granularity of
    :func:`validate_changes` and the write granularity of
    :func:`write_footprint`, which is what makes disjoint-footprint
    commits commute with each other's validation.

    ``incremental_ok`` is ``False`` when the constraint set contains a
    kind the plan cannot factor through bounded probes (a custom
    ``holds`` predicate may read anything); the engine then validates
    every commit with a full dirty-context audit instead.
    """

    __slots__ = ("schema", "constraints", "fds", "containment_pairs",
                 "participations", "compounds", "probe_family",
                 "incremental_ok")

    def __init__(self, state, constraints: Iterable = ()):
        schema = state.schema
        self.schema = schema
        self.constraints = tuple(constraints)
        self.fds: list[tuple] = []
        pairs: dict[tuple[str, str], frozenset] = {}
        self.participations: list[tuple] = []
        self.compounds: list[tuple] = []
        self.incremental_ok = True
        for c in self.constraints:
            if isinstance(c, FunctionalConstraint):
                fds = [c.fd]
            elif isinstance(c, CardinalityConstraint):
                fds = c.as_fds()
            elif isinstance(c, SubsetConstraint):
                pairs[(c.special.name, c.general.name)] = c.general.attributes
                continue
            elif isinstance(c, ParticipationConstraint):
                self.participations.append(
                    (c.name, c.relationship.name, c.member.name,
                     c.member.attributes))
                continue
            else:
                self.incremental_ok = False
                continue
            for fd in fds:
                self.fds.append((c.name, fd.context.name,
                                 fd.determinant.attributes,
                                 fd.dependent.attributes))
        for e in schema:
            for s in state.spec.S(e):
                if s != e:
                    pairs[(s.name, e.name)] = e.attributes
        self.containment_pairs = sorted(
            (s, e, attrs) for (s, e), attrs in pairs.items())
        for e in sorted(state.contributors.compound_types()):
            cos = sorted(state.contributors.contributors(e))
            if not cos:
                continue
            image = frozenset().union(*(c.attributes for c in cos))
            self.compounds.append(
                (e.name, tuple((c.name, c.attributes) for c in cos), image))
        family: dict[str, set[frozenset]] = {
            e.name: {e.attributes} for e in schema
        }
        for _, context, lhs, _rhs in self.fds:
            family[context].add(lhs)
        for s, _e, attrs in self.containment_pairs:
            family[s].add(attrs)
        for _, rel, _m, m_attrs in self.participations:
            family[rel].add(m_attrs)
        for e_name, cos, image in self.compounds:
            for _c, c_attrs in cos:
                family[e_name].add(c_attrs)
            family[e_name].add(image)
        self.probe_family = {name: frozenset(sets)
                             for name, sets in family.items()}


def write_footprint(plan: ValidationPlan, changes: Changes) -> frozenset | None:
    """The commit's conflict keys: every changed row projected through
    its relation's probe family — ``(relation, attrs, projected-row)``
    triples at the same lhs-group granularity ``CheckSet.recheck``
    re-sweeps at.  ``None`` (unbounded) for replace-carrying commits.
    """
    if changes.replaced:
        return None
    keys = set()
    for rows_of in (changes.added, changes.removed):
        for name, rows in rows_of.items():
            for attrs in plan.probe_family[name]:
                for t in rows:
                    keys.add((name, attrs, t.project(attrs)))
    return frozenset(keys)


def validate_changes(plan: ValidationPlan, state, changes: Changes,
                     index=None) -> list[dict]:
    """Judge a patch delta against the (clean) head state in O(|delta|).

    ``state`` is the branch head the delta is about to commit onto; the
    head is clean by the store's induction invariant, so only the groups
    the delta touches can flip, and each check below probes exactly
    those.  Returns structured findings (empty = commit is admissible);
    every finding carries object-level witness rows.

    Replace-carrying deltas are out of scope (the engine routes them to
    the full audit); this validator raises on them rather than judge a
    footprint it cannot bound.
    """
    if changes.replaced:
        raise StoreError("validate_changes cannot judge a replace delta")
    findings: list[dict] = []
    added, removed = changes.added, changes.removed

    def candidate_has(name: str, t: Tuple) -> bool:
        if t in changes._removed.get(name, _EMPTY):
            return False
        return t in changes._added.get(name, _EMPTY) \
            or t in state.R(name).tuples

    def group(name: str, attrs: frozenset, key: Tuple) -> list[Tuple]:
        # Candidate rows of `name` whose projection onto `attrs` is `key`.
        if attrs == plan.schema[name].attributes:
            return [key] if candidate_has(name, key) else []
        base = index.group(name, attrs, key) if index is not None else None
        if base is None:
            base = [u for u in state.R(name).tuples
                    if u.project(attrs) == key]
        rem = changes._removed.get(name, _EMPTY)
        out = [u for u in base if u not in rem]
        out += [v for v in changes._added.get(name, ())
                if v.project(attrs) == key]
        return out

    # Functional and cardinality constraints: re-judge dirty lhs-groups.
    for label, context, lhs, rhs in plan.fds:
        touched = added.get(context, ()) + removed.get(context, ())
        if not touched:
            continue
        for key in {t.project(lhs) for t in touched}:
            rows = group(context, lhs, key)
            if len(rows) < 2:
                continue
            by_rhs: dict[Tuple, Tuple] = {}
            for u in rows:
                by_rhs.setdefault(u.project(rhs), u)
            if len(by_rhs) > 1:
                witnesses = sorted(by_rhs.values(), key=repr)[:2]
                findings.append({
                    "check": "fd", "constraint": label, "relation": context,
                    "message": (
                        f"constraint {label!r}: {sorted(lhs)} -> "
                        f"{sorted(rhs)} violated in R_{context}"),
                    "witnesses": [w.as_dict() for w in witnesses],
                })

    # Containment Condition (and subset constraints, same shape).
    for s_name, e_name, e_attrs in plan.containment_pairs:
        for t in added.get(s_name, ()):
            p = t.project(e_attrs)
            if not candidate_has(e_name, p):
                findings.append({
                    "check": "containment", "constraint": None,
                    "relation": s_name,
                    "message": (f"pi_{e_name}^{s_name} of an inserted tuple "
                                f"escapes R_{e_name}"),
                    "witnesses": [t.as_dict()],
                })
        for u in removed.get(e_name, ()):
            survivors = group(s_name, e_attrs, u)
            if survivors:
                findings.append({
                    "check": "containment", "constraint": None,
                    "relation": e_name,
                    "message": (f"removing a tuple from R_{e_name} orphans "
                                f"{len(survivors)} tuple(s) of R_{s_name}"),
                    "witnesses": [u.as_dict(), survivors[0].as_dict()],
                })

    # Participation constraints.
    for label, rel_name, m_name, m_attrs in plan.participations:
        for t in added.get(m_name, ()):
            if not group(rel_name, m_attrs, t):
                findings.append({
                    "check": "participation", "constraint": label,
                    "relation": m_name,
                    "message": (f"constraint {label!r}: inserted R_{m_name} "
                                f"tuple does not participate in R_{rel_name}"),
                    "witnesses": [t.as_dict()],
                })
        for u in removed.get(rel_name, ()):
            p = u.project(m_attrs)
            if candidate_has(m_name, p) and not group(rel_name, m_attrs, p):
                findings.append({
                    "check": "participation", "constraint": label,
                    "relation": rel_name,
                    "message": (f"constraint {label!r}: removing a "
                                f"R_{rel_name} tuple strands a R_{m_name} "
                                f"member"),
                    "witnesses": [u.as_dict(), p.as_dict()],
                })

    # Extension Axiom: support and injectivity per compound type.
    for e_name, cos, image_attrs in plan.compounds:
        e_added = added.get(e_name, ())
        e_added_set = frozenset(e_added)
        full = plan.schema[e_name].attributes
        for t in e_added:
            for c_name, c_attrs in cos:
                if not candidate_has(c_name, t.project(c_attrs)):
                    findings.append({
                        "check": "extension-axiom", "constraint": None,
                        "relation": e_name,
                        "message": (f"inserted R_{e_name} tuple is not "
                                    f"supported by contributor R_{c_name}"),
                        "witnesses": [t.as_dict()],
                    })
            if image_attrs != full:
                img = t.project(image_attrs)
                others = [u for u in group(e_name, image_attrs, img)
                          if u != t]
                if others:
                    findings.append({
                        "check": "extension-axiom", "constraint": None,
                        "relation": e_name,
                        "message": (f"R_{e_name} tuples share one "
                                    "contributor combination (injectivity "
                                    "fails)"),
                        "witnesses": [t.as_dict(), others[0].as_dict()],
                    })
        for c_name, c_attrs in cos:
            for u in removed.get(c_name, ()):
                affected = [a for a in group(e_name, c_attrs, u)
                            if a not in e_added_set]
                if affected:
                    findings.append({
                        "check": "extension-axiom", "constraint": None,
                        "relation": c_name,
                        "message": (f"removing a R_{c_name} tuple strips the "
                                    f"contributor support of "
                                    f"{len(affected)} R_{e_name} tuple(s)"),
                        "witnesses": [u.as_dict(), affected[0].as_dict()],
                    })
    return findings


def findings_from_report(report: AxiomReport) -> list[dict]:
    """Full-audit findings in the commit-rejection shape."""
    return [
        {"check": "audit", "constraint": None, "relation": None,
         "message": str(f), "witnesses": []}
        for f in report.findings
    ]
