"""Concurrent sessions: the store's client-facing serving surface.

A :class:`Session` is one client's handle onto a branch.  Reads never
lock: a snapshot pins a :class:`~repro.store.version_graph.Version`
whose state is an immutable value, so a reader holding ``v7`` keeps
seeing ``v7`` however far the head advances — multi-version concurrency
the cheap way, because the data structure is already persistent.

Writes go through the engine's optimistic gate; :meth:`Session.commit`
wraps the retry loop a conflict calls for (rebase onto the new head and
try again — disjoint writers never loop, contended writers resolve in
footprint order).  :class:`SessionService` is the thread-safe factory a
server hands each connection.
"""

from __future__ import annotations

import threading

from repro.errors import StoreError, TransactionConflict
from repro.relational import Relation
from repro.store.engine import StoreEngine
from repro.store.txn import Transaction
from repro.store.version_graph import Version


class Session:
    """One client's view of one branch of the store.

    A session can *pin* snapshots: :meth:`pin` refcounts a version with
    the engine so :meth:`StoreEngine.gc` keeps it resident however far
    history is collected; :meth:`release` (or :meth:`close`, or leaving
    the session's ``with`` block) gives the pins back.  A plain
    :meth:`snapshot` is immutable under the caller but only
    GC-protected while inside the engine's keep window.
    """

    __slots__ = ("engine", "branch", "_pins", "_closed")

    def __init__(self, engine: StoreEngine, branch: str = "main"):
        self.engine = engine
        self.branch = branch
        self._pins: list[Version] = []
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # reads (lock-free)
    # ------------------------------------------------------------------
    def snapshot(self) -> Version:
        """Pin the branch's current head; the returned version (and its
        state) never changes under the caller."""
        return self.engine.head_version(self.branch)

    # ------------------------------------------------------------------
    # pins (GC protection)
    # ------------------------------------------------------------------
    def pin(self, at: Version | str | None = None) -> Version:
        """Refcount-pin a snapshot (default: the current head) against
        the engine's GC; the session remembers the pin and releases it
        on :meth:`release`/:meth:`close`."""
        version = self.engine.pin(
            self.snapshot() if at is None else at)
        self._pins.append(version)
        return version

    def release(self, version: Version | str | None = None) -> None:
        """Release one pinned snapshot, or every pin this session holds
        (the default)."""
        if version is None:
            while self._pins:
                self.engine.unpin(self._pins.pop())
            return
        vid = version.vid if isinstance(version, Version) else version
        for i, pinned in enumerate(self._pins):
            if pinned.vid == vid:
                del self._pins[i]
                self.engine.unpin(vid)
                return
        raise StoreError(f"this session holds no pin on {vid!r}")

    def pins(self) -> tuple[Version, ...]:
        """The versions this session currently pins."""
        return tuple(self._pins)

    def close(self) -> None:
        """Close the session: release every pin and mark it closed.

        Idempotent, and safe to call from a *different* thread than one
        blocked inside :meth:`commit` — that is exactly the disconnect
        path a server takes.  A commit retry loop in flight observes the
        flag at its next conflict and surfaces the pending
        :class:`~repro.errors.TransactionConflict` instead of retrying
        against an engine whose connection is gone.  Pin release is
        best-effort when the engine itself was torn down (its version
        table may already be collected), but the pin list is always
        cleared.
        """
        self._closed = True
        try:
            self.release()
        except StoreError:
            self._pins.clear()
            raise

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def read(self, relation: str, at: Version | str | None = None) -> Relation:
        """The instance set ``R_relation`` at a pinned version (default:
        the current head)."""
        if at is None:
            state = self.engine.head_version(self.branch).state
        elif isinstance(at, Version):
            state = at.state
        else:
            state = self.engine.version(at).state
        return state.R(relation)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        """A transaction pinned at the branch's current head."""
        if self._closed:
            raise StoreError("session is closed")
        return self.engine.begin(self.branch)

    def commit(self, txn: Transaction, max_retries: int = 16) -> Version:
        """Commit with automatic conflict retries.

        A :class:`~repro.errors.TransactionConflict` means another
        writer's footprint landed first; the transaction is rebased onto
        the new head and retried (its buffered operations are data, so
        rebasing is free).  :class:`~repro.errors.CommitRejected` is
        *not* retried — a semantic violation does not heal by waiting.

        Two teardown races surface the conflict instead of swallowing
        it: a session closed mid-retry (server disconnect) stops
        retrying immediately, and an engine torn down between the
        conflict and the rebase (its branch heads gone) re-raises the
        conflict with the teardown error chained — the caller learns
        *why* the commit did not land, not merely that a lookup failed.
        """
        if self._closed:
            raise StoreError("session is closed")
        attempt = txn
        conflict: TransactionConflict | None = None
        for _ in range(max_retries):
            try:
                return self.engine.commit(attempt)
            except TransactionConflict as exc:
                conflict = exc
                if self._closed:
                    raise
                try:
                    head = self.engine.head_version(self.branch)
                except StoreError as gone:
                    raise conflict from gone
                counters = self.engine._obs_counters
                if counters is not None:
                    counters["retries"].inc()
                attempt = attempt.rebased(head)
        return self.engine.commit(attempt)

    def run(self, ops, max_retries: int = 16) -> Version:
        """Convenience: buffer ``(kind, relation, row_or_rows)`` op specs
        into a fresh transaction and commit it with retries."""
        txn = self.begin()
        for spec in ops:
            kind, relation, payload = spec[0], spec[1], spec[2]
            propagate = spec[3] if len(spec) > 3 else True
            if kind == "insert":
                txn.insert(relation, payload, propagate)
            elif kind == "delete":
                txn.delete(relation, payload, propagate)
            elif kind == "remove":
                txn.remove(relation, payload)
            elif kind == "replace":
                txn.replace(relation, payload)
            else:
                raise ValueError(f"unknown op kind {kind!r}")
        return self.commit(txn, max_retries=max_retries)


class SessionService:
    """Hands out sessions over one engine — a server's front door.

    Sessions are cheap; the service exists so connection handling code
    never touches the engine's internals.  It remembers every live
    session it handed out, so a server shutting down can
    :meth:`close_all` — releasing pins and flipping each session's
    closed flag, which makes commit retry loops still in flight on
    executor threads surface their pending conflicts instead of
    retrying into a torn-down engine.
    """

    __slots__ = ("engine", "_sessions", "_lock")

    def __init__(self, engine: StoreEngine):
        self.engine = engine
        self._sessions: list[Session] = []
        self._lock = threading.Lock()

    def session(self, branch: str = "main") -> Session:
        self.engine.head_version(branch)  # fail fast on unknown branches
        session = Session(self.engine, branch)
        with self._lock:
            self._sessions = [s for s in self._sessions if not s.closed]
            self._sessions.append(session)
        return session

    def live_sessions(self) -> tuple[Session, ...]:
        """The sessions handed out and not yet closed (diagnostics and
        the server's connection accounting)."""
        with self._lock:
            self._sessions = [s for s in self._sessions if not s.closed]
            return tuple(self._sessions)

    def close_all(self) -> None:
        """Close every live session (the server-shutdown sweep); pin
        release is best-effort per session, but every session ends up
        marked closed."""
        with self._lock:
            sessions, self._sessions = self._sessions, []
        for session in sessions:
            try:
                session.close()
            except StoreError:
                pass  # engine already torn down; flag is set regardless
