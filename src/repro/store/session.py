"""Concurrent sessions: the store's client-facing serving surface.

A :class:`Session` is one client's handle onto a branch.  Reads never
lock: a snapshot pins a :class:`~repro.store.version_graph.Version`
whose state is an immutable value, so a reader holding ``v7`` keeps
seeing ``v7`` however far the head advances — multi-version concurrency
the cheap way, because the data structure is already persistent.

Writes go through the engine's optimistic gate; :meth:`Session.commit`
wraps the retry loop a conflict calls for (rebase onto the new head and
try again — disjoint writers never loop, contended writers resolve in
footprint order).  :class:`SessionService` is the thread-safe factory a
server hands each connection.
"""

from __future__ import annotations

from repro.errors import StoreError, TransactionConflict
from repro.relational import Relation
from repro.store.engine import StoreEngine
from repro.store.txn import Transaction
from repro.store.version_graph import Version


class Session:
    """One client's view of one branch of the store.

    A session can *pin* snapshots: :meth:`pin` refcounts a version with
    the engine so :meth:`StoreEngine.gc` keeps it resident however far
    history is collected; :meth:`release` (or :meth:`close`, or leaving
    the session's ``with`` block) gives the pins back.  A plain
    :meth:`snapshot` is immutable under the caller but only
    GC-protected while inside the engine's keep window.
    """

    __slots__ = ("engine", "branch", "_pins")

    def __init__(self, engine: StoreEngine, branch: str = "main"):
        self.engine = engine
        self.branch = branch
        self._pins: list[Version] = []

    # ------------------------------------------------------------------
    # reads (lock-free)
    # ------------------------------------------------------------------
    def snapshot(self) -> Version:
        """Pin the branch's current head; the returned version (and its
        state) never changes under the caller."""
        return self.engine.head_version(self.branch)

    # ------------------------------------------------------------------
    # pins (GC protection)
    # ------------------------------------------------------------------
    def pin(self, at: Version | str | None = None) -> Version:
        """Refcount-pin a snapshot (default: the current head) against
        the engine's GC; the session remembers the pin and releases it
        on :meth:`release`/:meth:`close`."""
        version = self.engine.pin(
            self.snapshot() if at is None else at)
        self._pins.append(version)
        return version

    def release(self, version: Version | str | None = None) -> None:
        """Release one pinned snapshot, or every pin this session holds
        (the default)."""
        if version is None:
            while self._pins:
                self.engine.unpin(self._pins.pop())
            return
        vid = version.vid if isinstance(version, Version) else version
        for i, pinned in enumerate(self._pins):
            if pinned.vid == vid:
                del self._pins[i]
                self.engine.unpin(vid)
                return
        raise StoreError(f"this session holds no pin on {vid!r}")

    def pins(self) -> tuple[Version, ...]:
        """The versions this session currently pins."""
        return tuple(self._pins)

    def close(self) -> None:
        """Release every pin (idempotent; the session stays usable)."""
        self.release()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def read(self, relation: str, at: Version | str | None = None) -> Relation:
        """The instance set ``R_relation`` at a pinned version (default:
        the current head)."""
        if at is None:
            state = self.engine.head_version(self.branch).state
        elif isinstance(at, Version):
            state = at.state
        else:
            state = self.engine.version(at).state
        return state.R(relation)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        """A transaction pinned at the branch's current head."""
        return self.engine.begin(self.branch)

    def commit(self, txn: Transaction, max_retries: int = 16) -> Version:
        """Commit with automatic conflict retries.

        A :class:`~repro.errors.TransactionConflict` means another
        writer's footprint landed first; the transaction is rebased onto
        the new head and retried (its buffered operations are data, so
        rebasing is free).  :class:`~repro.errors.CommitRejected` is
        *not* retried — a semantic violation does not heal by waiting.
        """
        attempt = txn
        for _ in range(max_retries):
            try:
                return self.engine.commit(attempt)
            except TransactionConflict:
                attempt = attempt.rebased(
                    self.engine.head_version(self.branch))
        return self.engine.commit(attempt)

    def run(self, ops, max_retries: int = 16) -> Version:
        """Convenience: buffer ``(kind, relation, row_or_rows)`` op specs
        into a fresh transaction and commit it with retries."""
        txn = self.begin()
        for spec in ops:
            kind, relation, payload = spec[0], spec[1], spec[2]
            propagate = spec[3] if len(spec) > 3 else True
            if kind == "insert":
                txn.insert(relation, payload, propagate)
            elif kind == "delete":
                txn.delete(relation, payload, propagate)
            elif kind == "remove":
                txn.remove(relation, payload)
            elif kind == "replace":
                txn.replace(relation, payload)
            else:
                raise ValueError(f"unknown op kind {kind!r}")
        return self.commit(txn, max_retries=max_retries)


class SessionService:
    """Hands out sessions over one engine — a server's front door.

    Sessions are cheap (two slots); the service exists so connection
    handling code never touches the engine's internals.
    """

    __slots__ = ("engine",)

    def __init__(self, engine: StoreEngine):
        self.engine = engine

    def session(self, branch: str = "main") -> Session:
        self.engine.head_version(branch)  # fail fast on unknown branches
        return Session(self.engine, branch)
