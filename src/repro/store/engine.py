"""The store engine: axiom-gated commits over a branchable version graph.

:class:`StoreEngine` ties the layers together: a
:class:`~repro.store.version_graph.VersionGraph` of immutable states, a
:class:`~repro.store.wal.WriteAheadLog` for durability, and the
commit-time validation of :mod:`repro.store.txn`.  The store's core
invariant is *clean by induction*: the root is fully audited at
construction (``check_all`` plus every integrity constraint), and a
commit only installs a successor its validation admitted — so every
version ever served satisfies the design axioms.

Three validation modes, forming the store's own naive-to-kernel ladder
(benchmarked against each other in ``bench_a9_store_throughput``):

* ``"delta"`` (default) — targeted O(|delta|) probes
  (:func:`~repro.store.txn.validate_changes`) against the head plus a
  mutable head probe index; optimistic concurrency at ``(relation,
  lhs-group)`` granularity lets disjoint writers commit back to back
  without re-auditing, and the critical section is O(|delta|).
* ``"audit"`` — every commit derives the candidate state and runs the
  full dirty-context ``check_all`` (PR 4's chained caches +
  ``CheckSet.recheck``); general — custom constraint kinds, wholesale
  replaces — but re-serialises the audit behind the lock.
* ``"serial"`` — the global-lock baseline: the candidate is rebuilt
  through the public constructor (full re-validation) and audited cold,
  the pre-delta behaviour of the library.

Commits that buffer a wholesale ``replace`` are routed through the
audit path even in ``"delta"`` mode (their footprint is unbounded) and
conflict with every concurrent commit.

Concurrency contract: reads are lock-free (states are immutable and the
graph is append-only); one engine lock serialises commit installation.
A transaction whose write footprint overlaps a commit that landed after
its base raises :class:`~repro.errors.TransactionConflict` (first
committer wins); disjoint footprints are rebased onto the head
automatically — sound because validation probes and conflict keys are
drawn from the *same* probe family, so a disjoint commit cannot disturb
the groups this one's validation judged.
"""

from __future__ import annotations

import threading
import warnings
from collections import deque
from collections.abc import Iterable
from pathlib import Path

from repro.core import ConstraintSet, DatabaseExtension, check_all
from repro.core.axioms import AxiomReport
from repro.errors import (
    CommitRejected,
    DependencyError,
    StoreError,
    TornTailWarning,
    TransactionConflict,
)
from repro.obs.metrics import MetricsRegistry, WalProbe
from repro.obs.trace import NULL_TRACER, Tracer
from repro.store.txn import (
    Transaction,
    ValidationPlan,
    findings_from_report,
    validate_changes,
    write_footprint,
)
from repro.store.version_graph import Version, VersionGraph
from repro.store.wal import (
    WriteAheadLog,
    branch_record,
    checkpoint_record,
    commit_record,
    snapshot_record,
)

VALIDATION_MODES = ("delta", "audit", "serial")

# The commit path reads its clock unconditionally; with observability
# detached the clock is this constant zero — six trivial calls per
# commit instead of a branch per phase.
_ZERO_CLOCK = lambda: 0.0  # noqa: E731

# The commit gate's phase order; each lands in its own latency
# histogram (``store.commit.<phase>_seconds``) plus ``total``.  fsync
# is timed inside the WAL (see :class:`repro.obs.metrics.WalProbe`)
# because it happens inside ``wal.append``.
COMMIT_PHASES = ("rebase", "validate", "derive", "wal_append", "total")


def _render_groups(writes: frozenset | None, limit: int = 8):
    """The touched lhs-groups of a commit footprint, JSON-codable:
    ``[relation, sorted-attrs, repr(projected-row)]`` per group, capped
    at ``limit``; ``None`` for an unbounded footprint (wholesale
    replace)."""
    if writes is None:
        return None
    out = []
    for key in sorted(writes, key=repr)[:limit]:
        try:
            relation, attrs, row = key
            out.append([relation, sorted(str(a) for a in attrs), repr(row)])
        except (TypeError, ValueError):
            out.append([repr(key)])
    return out


class ProbeIndex:
    """Mutable projection groups of one branch head.

    For every proper-subset attribute set in a relation's probe family,
    the index keeps ``projected-row -> [rows]`` — the candidate groups
    commit validation and delete cascades look up in O(1) instead of
    scanning the relation.  The engine mutates it in O(|delta|) under
    the commit lock as the head advances; immutable per-state kernel
    caches cannot serve this role because the head is a moving target.
    """

    __slots__ = ("_by_name", "_groups")

    def __init__(self, plan: ValidationPlan, state: DatabaseExtension):
        self._by_name: dict[str, list[tuple[frozenset, dict]]] = {}
        self._groups: dict[tuple[str, frozenset], dict] = {}
        for name, family in plan.probe_family.items():
            full = plan.schema[name].attributes
            for attrs in family:
                if attrs == full:
                    continue
                groups: dict = {}
                for t in state.R(name).tuples:
                    groups.setdefault(t.project(attrs), []).append(t)
                self._groups[(name, attrs)] = groups
                self._by_name.setdefault(name, []).append((attrs, groups))

    def group(self, name: str, attrs: frozenset, key):
        """The head rows of ``name`` projecting onto ``key``, or ``None``
        when ``(name, attrs)`` is not an indexed probe."""
        groups = self._groups.get((name, attrs))
        if groups is None:
            return None
        return groups.get(key, ())

    def apply(self, changes, state_after: DatabaseExtension) -> None:
        """Advance the index past one committed delta (O(|delta|) per
        probe; a replaced relation rebuilds its probes wholesale)."""
        for name, rows in changes.removed.items():
            for attrs, groups in self._by_name.get(name, ()):
                for t in rows:
                    key = t.project(attrs)
                    bucket = groups.get(key)
                    if bucket is None:
                        continue
                    bucket.remove(t)
                    if not bucket:
                        del groups[key]
        for name, rows in changes.added.items():
            for attrs, groups in self._by_name.get(name, ()):
                for t in rows:
                    groups.setdefault(t.project(attrs), []).append(t)
        for name in changes.replaced:
            for attrs, groups in self._by_name.get(name, ()):
                groups.clear()
                for t in state_after.R(name).tuples:
                    groups.setdefault(t.project(attrs), []).append(t)


class StoreEngine:
    """A concurrent, durable, multi-version store of one database.

    Parameters
    ----------
    root:
        The initial :class:`DatabaseExtension`; must pass the full audit
        (an inconsistent root cannot anchor the clean-by-induction
        invariant).
    constraints:
        Integrity constraints (a :class:`ConstraintSet` or an iterable)
        every committed state must satisfy.
    wal:
        Optional path or :class:`WriteAheadLog`; when given, the root
        snapshot and every commit/branch/checkpoint are logged durably.
        A segmented :class:`WriteAheadLog` instance (rotation bounds or
        a directory path) gives the log bounded segments that
        :meth:`checkpoint` heads and :meth:`WriteAheadLog.prune` drops.
    validation:
        One of ``"delta"`` / ``"audit"`` / ``"serial"`` (see the module
        docstring).  ``"delta"`` silently degrades to ``"audit"`` when
        the constraint set contains kinds it cannot probe incrementally.
    checkpoint_every:
        When set, a checkpoint record is written automatically after
        every N commits (WAL-backed engines only) — the knob that keeps
        replay O(recent) instead of O(history) for a long-running store.
    """

    def __init__(self, root: DatabaseExtension,
                 constraints: ConstraintSet | Iterable = (),
                 branch: str = "main",
                 validation: str = "delta",
                 wal: WriteAheadLog | str | Path | None = None,
                 sync: bool = False,
                 audit_root: bool = True,
                 checkpoint_every: int | None = None,
                 _floor: tuple | None = None):
        if validation not in VALIDATION_MODES:
            raise StoreError(
                f"unknown validation mode {validation!r}; "
                f"expected one of {VALIDATION_MODES}")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise StoreError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.schema = root.schema
        if isinstance(constraints, ConstraintSet):
            self._constraint_set = constraints
        else:
            self._constraint_set = ConstraintSet(self.schema, constraints)
        self.constraints = tuple(self._constraint_set.constraints)
        self._vet_constraints()
        if audit_root:
            report = self._audit(root)
            if not report.ok():
                raise StoreError(
                    "root state is inconsistent; a store only serves "
                    "axiom-valid states:\n" + report.render())
        self.plan = ValidationPlan(root, self.constraints)
        if validation == "delta" and not self.plan.incremental_ok:
            validation = "audit"
        self.validation = validation
        self._lock = threading.Lock()
        self._indexes: dict[str, ProbeIndex] = {}
        self._pins: dict[str, int] = {}
        self.checkpoint_every = checkpoint_every
        self._commits_since_checkpoint = 0
        self._epoch = 0
        if _floor is None:
            self.graph = VersionGraph(root, branch)
        else:
            # Checkpoint restore (StoreEngine.replay): the graph starts
            # at the checkpoint's floor — every branch head a parentless
            # version, the id sequence resumed — instead of at v0.
            seq, entries, self._epoch = _floor
            self.graph = VersionGraph(root, branch,
                                      root_vid=entries[0][0], seq=seq)
            for vid, floor_branch, state in entries[1:]:
                self.graph.add_floor(vid, floor_branch, state)
        if validation == "delta":
            for name, head in self.graph.heads.items():
                self._indexes[name] = ProbeIndex(self.plan, head.state)
        if wal is not None:
            target = wal.path if isinstance(wal, WriteAheadLog) else Path(wal)
            if not WriteAheadLog.is_empty(target):
                raise StoreError(
                    f"WAL {target} already has records; a fresh engine "
                    "would append a second snapshot and corrupt it — "
                    "replay it (StoreEngine.replay) or pick a new path")
            if not isinstance(wal, WriteAheadLog):
                wal = WriteAheadLog(target, sync=sync)
        self.wal = wal
        # Observability is detached by default; attach_observability
        # swaps in a real registry/tracer (servers do this on
        # construction).  The zero clock keeps the commit path
        # branch-free either way.
        self.metrics = None
        self.tracer = NULL_TRACER
        self.slow_commit_threshold: float | None = None
        self.slow_commits: deque = deque(maxlen=32)
        self._obs_clock = _ZERO_CLOCK
        self._obs_hists: tuple | None = None
        self._obs_counters: dict | None = None
        if wal is not None:
            if _floor is None:
                wal.append(snapshot_record(root, self._constraint_set,
                                           self.graph.root.vid, branch))
            else:
                # A restored engine logging into a fresh WAL starts it
                # with a checkpoint — the restored graph has no single
                # self-contained root snapshot to offer.
                wal.append(checkpoint_record(self.graph,
                                             self._constraint_set,
                                             epoch=self._epoch))

    def _vet_constraints(self) -> None:
        """Refuse ill-typed dependencies up front: the store judges them
        on every commit, so a constraint that cannot be judged is a
        configuration error, not a per-commit finding."""
        from repro.core.integrity import (
            CardinalityConstraint,
            FunctionalConstraint,
        )
        for c in self.constraints:
            fds = [c.fd] if isinstance(c, FunctionalConstraint) else \
                c.as_fds() if isinstance(c, CardinalityConstraint) else ()
            for fd in fds:
                try:
                    fd.validate(self.schema)
                except DependencyError as exc:
                    raise StoreError(
                        f"constraint {c.name!r} is ill-typed: {exc}") from exc

    def _audit(self, state: DatabaseExtension) -> AxiomReport:
        return check_all(self.schema, state, constraints=self.constraints,
                         contributors=state.contributors)

    # ------------------------------------------------------------------
    # reads (lock-free: immutable states, append-only graph)
    # ------------------------------------------------------------------
    @property
    def constraint_set(self) -> ConstraintSet:
        """The integrity constraints as a :class:`ConstraintSet` — the
        form :mod:`repro.io` documents want (``constraints`` is the same
        content as a plain tuple)."""
        return self._constraint_set

    def head_version(self, branch: str = "main") -> Version:
        return self.graph.head(branch)

    def version(self, vid: str) -> Version:
        return self.graph.get(vid)

    def state(self, vid: str | None = None,
              branch: str = "main") -> DatabaseExtension:
        """A pinned snapshot: the given version's state, or the branch
        head's."""
        if vid is not None:
            return self.graph.get(vid).state
        return self.graph.head(branch).state

    def read(self, relation: str, branch: str = "main",
             at: str | None = None):
        """The instance set ``R_relation`` at one pinned version
        (default: the branch head) — the lock-free read the network
        front end serves, shaped for callers that hold neither a
        :class:`Session` nor a :class:`Version`."""
        return self.state(at, branch).R(relation)

    @property
    def epoch(self) -> int:
        """The promotion epoch this engine serves under (0 until a
        failover ever happens; see :func:`repro.server.failover.promote`
        and :class:`~repro.errors.EpochFenced`)."""
        return self._epoch

    def describe(self) -> dict:
        """A summary of the store for protocol handshakes and status
        probes: branches with their head version ids, the sequence
        counter, the promotion epoch, the relation names served, and
        the validation mode."""
        return {
            "branches": self.graph.branches(),
            "seq": self.graph.seq,
            "epoch": self._epoch,
            "versions": len(self.graph),
            "relations": sorted(e.name for e in self.schema),
            "validation": self.validation,
        }

    def audit(self, vid: str | None = None,
              branch: str = "main") -> AxiomReport:
        """A full re-audit of one version (should always come back clean
        — the independent check the store's gate is tested against)."""
        return self._audit(self.state(vid, branch))

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def begin(self, branch: str = "main") -> Transaction:
        """A transaction pinned at the branch's current head."""
        return Transaction(self.schema, self.graph.head(branch), branch)

    def branch(self, name: str, at: str | None = None,
               from_branch: str = "main") -> Version:
        """Create branch ``name`` at version ``at`` (default: the head of
        ``from_branch``)."""
        with self._lock:
            version = self.graph.get(at) if at is not None \
                else self.graph.head(from_branch)
            if name in self.graph.heads:
                # Validate before the WAL append: a record for a branch
                # that then fails to create would poison every replay.
                raise StoreError(f"branch {name!r} already exists")
            if self.wal is not None:
                self.wal.append(branch_record(name, version.vid))
            self.graph.create_branch(name, version)
            if self.validation == "delta":
                self._indexes[name] = ProbeIndex(self.plan, version.state)
            return version

    def commit(self, txn: Transaction) -> Version:
        """Validate and install one transaction.

        Raises :class:`CommitRejected` (with witness findings) when the
        delta violates an axiom or constraint, and
        :class:`TransactionConflict` when its footprint overlaps a
        commit that landed after its base (retry from the new head; see
        :meth:`Session.commit` for the retry loop).  A transaction whose
        net effect *against the current head* is empty returns the head
        unchanged — including when concurrent commits already did the
        same work (re-deleting a deleted row, re-inserting a present
        one): an intent the head already satisfies has nothing left to
        conflict over.
        """
        if txn.committed:
            raise StoreError("transaction was already committed")
        if txn.schema is not self.schema:
            raise StoreError("transaction belongs to a different store")
        # Phase timing is explicit timestamp capture, not nested spans:
        # the clock is a constant-zero callable while observability is
        # detached, so the critical section carries six trivial calls
        # instead of context-manager machinery (bounded <3% end to end
        # by bench_a14_obs).
        clock = self._obs_clock
        counters = self._obs_counters
        t0 = clock()
        try:
            with self._lock:
                head = self.graph.head(txn.branch)
                index = self._indexes.get(txn.branch)
                changes = txn.net_changes(head.state, index)
                if not changes:
                    txn.committed = True
                    if counters is not None:
                        counters["noops"].inc()
                    return head
                writes = write_footprint(self.plan, changes)
                if head is not txn.base:
                    self._check_conflicts(txn, head, writes)
                t1 = clock()
                candidate, findings = self._validate(head.state, changes,
                                                     index)
                if findings:
                    raise CommitRejected(
                        f"commit of {changes!r} violates "
                        f"{len(findings)} check(s)", tuple(findings))
                t2 = clock()
                if candidate is None:
                    candidate = head.state.apply_changes(
                        changes.added, changes.removed, changes.replaced,
                        validate=False)
                t3 = clock()
                if self.wal is not None:
                    self.wal.append(commit_record(
                        self.graph.next_vid(), head.vid, txn.branch,
                        txn.ops))
                t4 = clock()
                version = self.graph.add_commit(head, candidate, writes,
                                                tuple(txn.ops), txn.branch)
                if index is not None:
                    index.apply(changes, candidate)
                txn.committed = True
                self._after_commit_locked()
        except TransactionConflict:
            if counters is not None:
                counters["conflicts"].inc()
            raise
        except CommitRejected:
            if counters is not None:
                counters["rejected"].inc()
            raise
        if counters is not None:
            counters["commits"].inc()
            self._record_commit(version, writes,
                                t0, t1, t2, t3, t4, clock())
        return version

    def attach_observability(self, metrics: MetricsRegistry | None = None,
                             tracer: Tracer | None = None,
                             slow_commit_threshold: float | None = None,
                             slow_commit_capacity: int = 32) -> None:
        """Wire a metrics registry and/or tracer into the commit path.

        With a registry attached every commit feeds the per-phase
        latency histograms (``store.commit.<phase>_seconds`` for
        rebase/validate/derive/wal_append/total, fsync via the WAL
        probe) and outcome counters; with a tracer, each commit also
        lands as one trace in the ring with its phases as child spans.
        ``slow_commit_threshold`` (seconds, against ``metrics.clock``)
        gates the structured slow-commit log kept on
        :attr:`slow_commits`.  Passing ``metrics=None`` detaches
        everything and restores the zero-cost path.
        """
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.slow_commit_threshold = slow_commit_threshold
        self.slow_commits = deque(maxlen=slow_commit_capacity)
        if metrics is None:
            self._obs_clock = _ZERO_CLOCK
            self._obs_hists = None
            self._obs_counters = None
            if self.wal is not None:
                self.wal.probe = None
            return
        self._obs_clock = metrics.clock
        self._obs_hists = tuple(
            metrics.histogram(f"store.commit.{phase}_seconds")
            for phase in COMMIT_PHASES)
        self._obs_counters = {
            "commits": metrics.counter("store.commits"),
            "noops": metrics.counter("store.commit_noops"),
            "conflicts": metrics.counter("store.commit_conflicts"),
            "rejected": metrics.counter("store.commit_rejected"),
            "retries": metrics.counter("store.commit_retries"),
            "slow": metrics.counter("store.slow_commits"),
        }
        if self.wal is not None:
            self.wal.probe = WalProbe(metrics)

    def _record_commit(self, version: Version, writes: frozenset | None,
                       t0: float, t1: float, t2: float, t3: float,
                       t4: float, t5: float) -> None:
        """Bookkeeping for one landed commit, outside the critical
        section: phase histograms, one trace in the ring, and — past
        the threshold — a structured slow-commit record."""
        rebase, validate = t1 - t0, t2 - t1
        derive, wal_append = t3 - t2, t4 - t3
        total = t5 - t0
        h_rebase, h_validate, h_derive, h_wal, h_total = self._obs_hists
        h_rebase.observe(rebase)
        h_validate.observe(validate)
        h_derive.observe(derive)
        probe = self.wal.probe if self.wal is not None else None
        if self.wal is not None:
            h_wal.observe(wal_append)
        h_total.observe(total)
        fsync = probe.last_fsync if probe is not None else 0.0
        tracer = self.tracer
        if tracer.enabled:
            def phase(name, start, end, **tags):
                return {"name": name, "start": start, "end": end,
                        "duration": end - start, "tags": tags,
                        "spans": []}
            tracer.record({
                "name": "store.commit",
                "start": t0, "end": t5, "duration": total,
                "tags": {"version": version.vid,
                         "groups": None if writes is None else len(writes)},
                "spans": [
                    phase("commit.rebase", t0, t1),
                    phase("commit.validate", t1, t2),
                    phase("commit.derive", t2, t3),
                    phase("commit.wal_append", t3, t4, fsync=fsync),
                ],
            })
        threshold = self.slow_commit_threshold
        if threshold is not None and total >= threshold:
            self._obs_counters["slow"].inc()
            self.slow_commits.append({
                "version": version.vid,
                "at": t5,
                "total": total,
                "phases": {"rebase": rebase, "validate": validate,
                           "derive": derive, "wal_append": wal_append,
                           "fsync": fsync},
                "group_count": None if writes is None else len(writes),
                "groups": _render_groups(writes),
            })

    def _after_commit_locked(self) -> None:
        """Periodic checkpointing, driven by the commit counter (called
        with the engine lock held, right after a commit installed)."""
        if self.wal is None or self.checkpoint_every is None:
            return
        self._commits_since_checkpoint += 1
        if self._commits_since_checkpoint >= self.checkpoint_every:
            self._checkpoint_locked()

    def _check_conflicts(self, txn: Transaction, head: Version,
                         writes: frozenset | None) -> None:
        span = self.graph.span(txn.base.vid, head)
        if span is None:
            raise StoreError(
                f"base version {txn.base.vid} is not an ancestor of the "
                f"{txn.branch!r} head {head.vid}")
        for version in span:
            if writes is None or version.writes is None:
                raise TransactionConflict(
                    f"unbounded footprint overlaps commit {version.vid}")
            overlap = writes & version.writes
            if overlap:
                raise TransactionConflict(
                    f"footprint overlaps commit {version.vid} on "
                    f"{len(overlap)} group(s)",
                    keys=tuple(sorted(overlap, key=repr)))

    def _validate(self, head_state: DatabaseExtension, changes, index):
        """(candidate, findings) for one delta under the engine's mode;
        candidate is ``None`` when the targeted validator judged the
        delta without deriving the successor state."""
        if self.validation == "serial":
            derived = head_state.apply_changes(
                changes.added, changes.removed, changes.replaced,
                validate=True)
            candidate = DatabaseExtension(
                self.schema, {e.name: derived.R(e) for e in self.schema},
                head_state.contributors)
            return candidate, findings_from_report(self._audit(candidate))
        if self.validation == "audit" or changes.replaced:
            candidate = head_state.apply_changes(
                changes.added, changes.removed, changes.replaced,
                validate=False)
            return candidate, findings_from_report(self._audit(candidate))
        return None, validate_changes(self.plan, head_state, changes, index)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Write a checkpoint record: every branch head as a full
        database document plus the id-sequence counter.

        Replay resumes from the newest checkpoint instead of v0, which
        is what keeps recovery time proportional to *recent* history.
        On a segmented WAL the log rotates first, so the checkpoint is
        its segment's first record and every older segment becomes
        prunable (:meth:`prune_wal`); on a single-file WAL the record
        is appended inline.  Returns the record written.
        """
        with self._lock:
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> dict:
        if self.wal is None:
            raise StoreError(
                "checkpointing requires a WAL-backed engine (there is "
                "nothing to replay without one)")
        record = checkpoint_record(self.graph, self._constraint_set,
                                   epoch=self._epoch)
        self.wal.rotate()
        self.wal.append(record)
        self._commits_since_checkpoint = 0
        return record

    def prune_wal(self, archive: str | Path | None = None) -> list[Path]:
        """Drop (or archive) WAL segments older than the newest
        checkpointed one — safe at any time: replay never reads them.
        A no-op for single-file or never-checkpointed logs."""
        if self.wal is None:
            raise StoreError("this engine has no WAL to prune")
        with self._lock:
            return WriteAheadLog.prune(self.wal.path, archive=archive)

    # ------------------------------------------------------------------
    # pins and garbage collection
    # ------------------------------------------------------------------
    def pin(self, version: Version | str) -> Version:
        """Refcount-pin a version against :meth:`gc`.

        A pinned version (and therefore its state) stays resident
        through collections until every pin is released; pinning is how
        a long-lived reader holds an old snapshot while GC keeps the
        rest of history bounded.  :meth:`Session.pin` wraps this with
        per-session bookkeeping.
        """
        with self._lock:
            v = version if isinstance(version, Version) \
                else self.graph.get(version)
            if self.graph.versions.get(v.vid) is not v:
                raise StoreError(
                    f"version {v.vid} is not resident in this store "
                    "(already collected, or from another engine)")
            self._pins[v.vid] = self._pins.get(v.vid, 0) + 1
            return v

    def unpin(self, version: Version | str) -> None:
        """Release one pin (the version becomes collectable when its
        count reaches zero and it falls outside the keep window)."""
        vid = version.vid if isinstance(version, Version) else version
        with self._lock:
            count = self._pins.get(vid, 0)
            if count <= 0:
                raise StoreError(f"version {vid} is not pinned")
            if count == 1:
                del self._pins[vid]
            else:
                self._pins[vid] = count - 1

    def pinned(self) -> dict[str, int]:
        """Pin counts by version id (a snapshot; for diagnostics)."""
        with self._lock:
            return dict(self._pins)

    def gc(self, keep: int = 1) -> dict:
        """Collect versions unreachable from branch heads and pins.

        The live set is, per branch, the head and its ``keep - 1``
        nearest ancestors, plus every pinned version.  Everything else
        leaves the graph; parent links crossing the new floor are cut
        and each floor state's delta chain is severed
        (:meth:`DatabaseExtension.sever_history`), so the collected
        states genuinely become garbage — resident versions stay
        bounded by ``keep * branches + pins`` under sustained write
        traffic.

        The WAL is untouched (prune it separately after a checkpoint);
        version ids stay monotone, so WAL replay is unaffected.  A
        transaction begun before a collection whose base version was
        collected can no longer be conflict-checked and fails with
        :class:`StoreError` — size ``keep`` to cover the transactions
        you allow in flight, and pin snapshots readers hold long-term.
        Returns ``{"before", "after", "collected", "pinned",
        "floors"}`` statistics.
        """
        if keep < 1:
            raise StoreError(f"gc keep must be >= 1, got {keep}")
        with self._lock:
            live: dict[str, Version] = {}
            for head in self.graph.heads.values():
                node: Version | None = head
                for _ in range(keep):
                    if node is None:
                        break
                    live[node.vid] = node
                    node = node.parent
            for vid in self._pins:
                live[vid] = self.graph.get(vid)
            before = len(self.graph)
            collected = self.graph.collect(live)
            retained = {id(v.state) for v in self.graph.versions.values()}
            floors = []
            for v in self.graph.versions.values():
                state = v.state
                if v.parent is None:
                    state.sever_history()
                    floors.append(v.vid)
                elif state._kernel_base is not None \
                        and id(state._kernel_base) not in retained:
                    state.drop_kernel_base()
            return {
                "before": before,
                "after": len(self.graph),
                "collected": len(collected),
                "pinned": sorted(self._pins),
                "floors": sorted(floors, key=lambda vid: int(vid[1:])),
            }

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    @classmethod
    def replay(cls, wal_path: str | Path,
               validation: str = "delta",
               verify: bool = False,
               wal: WriteAheadLog | str | Path | None = None,
               from_checkpoint: bool = True,
               checkpoint_every: int | None = None) -> "StoreEngine":
        """Rebuild an engine (and its version graph) from a WAL.

        Recovery is crash-safe: a torn *final* line (crash mid-append)
        is truncated off with a :class:`TornTailWarning` and the intact
        prefix replays; corruption before the final record still raises
        :class:`StoreError`.

        With ``from_checkpoint=True`` (the default) replay starts at
        the newest checkpoint — for a segmented log, old segments are
        never even read — restoring each checkpointed branch head as a
        parentless *floor* version and re-applying only the commits
        after it; the pre-checkpoint versions are simply absent from
        the rebuilt graph (the in-memory mirror of segment pruning).
        ``from_checkpoint=False`` replays the full history from v0.
        Note that a ``branch`` record anchored at a pre-checkpoint
        version can only be replayed from the full log.

        With ``verify=True`` every logged commit is re-validated
        through the normal gate and every checkpoint's documents are
        compared against the rebuilt states (a clean log replays
        identically; a tampered one raises); the default trusts the log
        and re-applies the operations directly, which still re-derives
        every state and checks that version ids line up.  Pass ``wal``
        to start logging the replayed store into a fresh log.
        """
        try:
            dropped = WriteAheadLog.repair(wal_path)
        except OSError:
            dropped = 0  # read-only media: records() below still copes
        if dropped:
            warnings.warn(
                f"truncated {dropped} torn byte(s) off {wal_path} "
                "(crash mid-append); replaying the intact prefix",
                TornTailWarning, stacklevel=2)
        segments = WriteAheadLog.segment_paths(wal_path)
        start = 0
        if from_checkpoint:
            for i in range(len(segments) - 1, 0, -1):
                head = WriteAheadLog.first_record(segments[i])
                if head is not None and head.get("type") == "checkpoint":
                    start = i
                    break
        records = WriteAheadLog._records_from(segments[start:])
        if from_checkpoint and start == 0:
            # Single-file logs (and single-segment ones) keep their
            # checkpoints inline; skip ahead to the newest.
            buffered = list(records)
            for i in range(len(buffered) - 1, -1, -1):
                if buffered[i].get("type") == "checkpoint":
                    buffered = buffered[i:]
                    break
            records = iter(buffered)
        try:
            first = next(records)
        except StopIteration:
            raise StoreError(f"empty WAL: {wal_path}") from None
        engine = cls.from_wal_record(first, validation=validation,
                                     verify=verify, wal=wal,
                                     checkpoint_every=checkpoint_every)
        for record in records:
            engine.apply_wal_record(record, verify=verify)
        return engine

    @classmethod
    def from_wal_record(cls, record: dict, validation: str = "delta",
                        verify: bool = False,
                        wal: WriteAheadLog | str | Path | None = None,
                        checkpoint_every: int | None = None,
                        ) -> "StoreEngine":
        """An engine bootstrapped from one self-contained WAL record —
        a ``snapshot`` (the root state) or a ``checkpoint`` (every
        branch head restored as a floor version).  The entry point
        :meth:`replay` and a tailing :class:`~repro.server.ReplicaEngine`
        share; any other record type raises (it cannot anchor a graph).
        """
        from repro import io

        kind = record.get("type")
        if kind == "snapshot":
            db, constraint_set = io.database_from_dict(record["document"])
            return cls(db, constraint_set, branch=record["branch"],
                       validation=validation, wal=wal, audit_root=verify,
                       checkpoint_every=checkpoint_every)
        if kind == "checkpoint":
            return cls._restore_checkpoint(
                record, validation=validation, verify=verify, wal=wal,
                checkpoint_every=checkpoint_every)
        raise StoreError(
            "WAL must start with a snapshot or checkpoint record, "
            f"got {kind!r}")

    def apply_wal_record(self, record: dict,
                         verify: bool = False) -> Version | None:
        """Apply one logged record to this engine's graph.

        The shared follow hook: :meth:`replay` drains a whole log
        through it and a :class:`~repro.server.ReplicaEngine` feeds it
        records as its WAL cursor yields them.  ``commit`` records
        return the installed :class:`Version` (re-gated through the
        normal validation when ``verify`` is set, trusted otherwise) and
        raise on version-id drift; ``branch`` records create the branch;
        ``checkpoint`` records are consistency-checked against the graph
        built so far and return ``None``.
        """
        kind = record.get("type")
        if kind == "branch":
            try:
                self.branch(record["name"], at=record["at"])
            except StoreError as exc:
                if record["at"] not in self.graph.versions and \
                        self.graph.root.vid != "v0":
                    raise StoreError(
                        f"branch {record['name']!r} is anchored at "
                        f"{record['at']}, below the checkpoint "
                        "floor; replay the full log "
                        "(from_checkpoint=False)") from exc
                raise
            return None
        if kind == "checkpoint":
            self._verify_checkpoint(record, deep=verify)
            return None
        if kind == "epoch":
            self._apply_epoch_record(record)
            return None
        if kind != "commit":
            raise StoreError(f"unknown WAL record type {kind!r}")
        parent = self.graph.get(record["parent"])
        txn = Transaction.from_records(self.schema, parent,
                                       record["branch"], record["ops"])
        if verify:
            version = self.commit(txn)
        else:
            version = self._install_unverified(txn)
        if version.vid != record["version"]:
            raise StoreError(
                f"replay drift: WAL says {record['version']}, "
                f"graph produced {version.vid}")
        return version

    def _apply_epoch_record(self, record: dict) -> None:
        """Follow a logged promotion: cross-check the takeover point
        (the promoted primary stamped the seq/heads it caught up to)
        and advance this engine's epoch.  A replay target logging into
        a fresh WAL re-stamps the epoch there, so the fence history
        survives re-logging."""
        epoch = int(record.get("epoch", 0))
        if epoch <= self._epoch:
            raise StoreError(
                f"epoch record does not advance: log says {epoch}, "
                f"engine is already at {self._epoch}")
        if "seq" in record and record["seq"] != self.graph.seq:
            raise StoreError(
                f"epoch drift: promotion stamped seq {record['seq']}, "
                f"replayed graph is at {self.graph.seq}")
        if "heads" in record and record["heads"] != self.graph.branches():
            raise StoreError(
                f"epoch drift: promotion stamped heads "
                f"{record['heads']}, replayed graph has "
                f"{self.graph.branches()}")
        if self.wal is not None and self.wal.epoch < epoch:
            self.wal.stamp_epoch(epoch, seq=record.get("seq"),
                                 heads=record.get("heads"))
        self._epoch = epoch

    def adopt_wal(self, wal: WriteAheadLog) -> WriteAheadLog:
        """Attach an already-written log to an engine that was rebuilt
        *from* it — the promotion path: a replica's inner engine has no
        WAL of its own, and the promoted primary must append to the log
        it caught up on, not start a fresh one (which would re-snapshot
        and orphan the history).  The caller vouches that ``wal``'s
        records are exactly this engine's graph."""
        if self.wal is not None:
            raise StoreError(
                "engine already has a WAL; adopt_wal is only for "
                "engines rebuilt from the log they are adopting")
        with self._lock:
            self.wal = wal
            self._epoch = max(self._epoch, wal.epoch)
        return wal

    @classmethod
    def _restore_checkpoint(cls, record: dict, validation: str,
                            verify: bool, wal,
                            checkpoint_every: int | None) -> "StoreEngine":
        """An engine whose graph starts at the checkpoint's floor: each
        branch head decoded from its document, the id sequence resumed
        from the recorded counter."""
        from repro import io

        states: dict[str, DatabaseExtension] = {}
        constraint_set = None
        entries: list[tuple] = []
        for name in sorted(record["branches"]):
            info = record["branches"][name]
            vid = info["version"]
            if vid not in states:
                states[vid], constraint_set = \
                    io.database_from_dict(info["document"])
            entries.append((vid, name, states[vid]))
        entries.sort(key=lambda e: (int(e[0][1:]), e[1]))
        root_vid, root_branch, root_state = entries[0]
        engine = cls(root_state, constraint_set, branch=root_branch,
                     validation=validation, wal=wal, audit_root=verify,
                     checkpoint_every=checkpoint_every,
                     _floor=(record["seq"], entries,
                             int(record.get("epoch", 0))))
        if verify:
            for vid, state in states.items():
                if state is root_state:
                    continue  # audited by the constructor
                report = engine._audit(state)
                if not report.ok():
                    raise StoreError(
                        f"checkpointed state {vid} is inconsistent:\n"
                        + report.render())
        return engine

    def _verify_checkpoint(self, record: dict, deep: bool = False) -> None:
        """A mid-log checkpoint must agree with the graph replay has
        rebuilt so far: same sequence counter, same branch heads, and —
        under ``deep`` (verified replay) — equal states."""
        from repro import io

        if record.get("seq") != self.graph.seq:
            raise StoreError(
                f"checkpoint drift: WAL says seq {record.get('seq')}, "
                f"replayed graph is at {self.graph.seq}")
        if "epoch" in record and record["epoch"] != self._epoch:
            raise StoreError(
                f"checkpoint drift: WAL checkpoint was taken under "
                f"epoch {record['epoch']}, replayed engine is at "
                f"{self._epoch}")
        for name, info in sorted(record.get("branches", {}).items()):
            head = self.graph.head(name)
            if head.vid != info["version"]:
                raise StoreError(
                    f"checkpoint drift: branch {name!r} head is "
                    f"{head.vid}, WAL checkpoint says {info['version']}")
            if deep:
                state, _ = io.database_from_dict(info["document"])
                if state != head.state:
                    raise StoreError(
                        f"checkpoint drift: branch {name!r} state at "
                        f"{head.vid} does not match its checkpoint "
                        "document")

    def _install_unverified(self, txn: Transaction) -> Version:
        """Re-apply a logged commit without re-judging it (replay trusts
        its own log); states and footprints are still re-derived, so the
        rebuilt graph is structurally identical."""
        with self._lock:
            head = self.graph.head(txn.branch)
            index = self._indexes.get(txn.branch)
            changes = txn.net_changes(head.state, index)
            writes = write_footprint(self.plan, changes)
            candidate = head.state.apply_changes(
                changes.added, changes.removed, changes.replaced,
                validate=False)
            if self.wal is not None:
                self.wal.append(commit_record(
                    self.graph.next_vid(), head.vid, txn.branch, txn.ops))
            version = self.graph.add_commit(head, candidate, writes,
                                            tuple(txn.ops), txn.branch)
            if index is not None:
                index.apply(changes, candidate)
            txn.committed = True
            self._after_commit_locked()
            return version

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()

    def __repr__(self) -> str:
        return (f"StoreEngine({len(self.graph)} versions, "
                f"branches={self.graph.branches()}, "
                f"validation={self.validation!r})")
