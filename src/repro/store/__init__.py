"""`repro.store` — a versioned, transactional, concurrent serving layer.

The paper models a database as a family of extension states judged by
the design axioms; this package *serves* such states: a branchable
version graph of immutable ``DatabaseExtension`` values
(:mod:`version_graph`), transactions whose commits are axiom-gated
deltas with optimistic lhs-group conflict detection (:mod:`txn`), a
durable JSON-lines write-ahead log (:mod:`wal`), a thread-safe session
API with lock-free snapshot reads (:mod:`session`), and the engine
tying them together (:mod:`engine`).  See the "Store layer" section of
``src/repro/kernel/README.md`` for the commit/validate/sever lifecycle
and the conflict-detection contract.
"""

from repro.errors import (
    CommitRejected,
    DeadlineExceeded,
    EpochFenced,
    ServerOverloaded,
    StoreError,
    StoreWarning,
    TornTailWarning,
    TransactionConflict,
)
from repro.store.engine import ProbeIndex, StoreEngine
from repro.store.session import Session, SessionService
from repro.store.txn import (
    Changes,
    Op,
    Transaction,
    ValidationPlan,
    validate_changes,
    write_footprint,
)
from repro.store.version_graph import Version, VersionGraph
from repro.store.wal import (
    WalCursor,
    WriteAheadLog,
    checkpoint_record,
    epoch_record,
)

__all__ = [
    "Changes",
    "CommitRejected",
    "DeadlineExceeded",
    "EpochFenced",
    "Op",
    "ProbeIndex",
    "ServerOverloaded",
    "Session",
    "SessionService",
    "StoreEngine",
    "StoreError",
    "StoreWarning",
    "TornTailWarning",
    "Transaction",
    "TransactionConflict",
    "ValidationPlan",
    "Version",
    "VersionGraph",
    "WalCursor",
    "WriteAheadLog",
    "checkpoint_record",
    "epoch_record",
    "validate_changes",
    "write_footprint",
]
