"""Branchable version graph of axiom-validated database states.

The paper reads a database as an indexed family of extension states
related by update mappings (section 4/6); the store materialises that
reading as a rooted DAG: every node is an immutable
:class:`~repro.core.extension.DatabaseExtension`, every edge one
committed transaction's net delta, and named branches are movable head
pointers.  Because states are immutable values (and successor states are
delta-derived, sharing untouched relations and — once anyone audits —
kernel structure with their parents), readers pin a version and read it
forever without locks; only head movement is serialised by the engine.

Version ids are assigned from one monotone sequence (``v0`` is the
root), so replaying a write-ahead log rebuilds an *identical* graph —
same ids, same parents, same states.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import StoreError


class Version:
    """One committed state: a node of the version graph.

    ``writes`` is the commit's conflict footprint — the frozenset of
    ``(relation, attrs, projected-row)`` group keys its delta touched —
    or ``None`` for a wholesale-replace commit, which conflicts with
    every concurrent writer.  ``ops`` keeps the committed operations in
    buffer order (what the write-ahead log records and ``replay``
    re-applies).
    """

    __slots__ = ("vid", "parent", "branch", "seq", "state", "writes", "ops")

    def __init__(self, vid: str, parent: "Version | None", branch: str,
                 seq: int, state, writes: frozenset | None, ops: tuple):
        self.vid = vid
        self.parent = parent
        self.branch = branch
        self.seq = seq
        self.state = state
        self.writes = writes
        self.ops = ops

    def __repr__(self) -> str:
        parent = self.parent.vid if self.parent is not None else None
        return f"Version({self.vid}, parent={parent}, branch={self.branch!r})"


def _vid_seq(vid: str) -> int:
    """The sequence number a version id encodes (``"v7"`` -> 7)."""
    if not vid.startswith("v") or not vid[1:].isdigit():
        raise StoreError(f"malformed version id {vid!r}")
    return int(vid[1:])


class VersionGraph:
    """The rooted DAG of committed states plus named branch heads.

    A graph normally starts at ``v0``; a graph rebuilt from a WAL
    checkpoint instead starts at the checkpoint's *floor* — each branch
    head restored as a parentless version (``root_vid``/``seq`` resume
    the id sequence), the compacted pre-checkpoint history simply
    absent.  :meth:`collect` is the same compaction applied in memory:
    the store's GC restricts the graph to the live set and cuts parent
    links at the new floor.
    """

    def __init__(self, root_state, branch: str = "main",
                 root_vid: str = "v0", seq: int | None = None):
        root_seq = _vid_seq(root_vid)
        if seq is None:
            seq = root_seq
        if seq < root_seq:
            raise StoreError(
                f"sequence counter {seq} behind root id {root_vid!r}")
        self._seq = seq
        self.root = Version(root_vid, None, branch, root_seq, root_state,
                            frozenset(), ())
        self.versions: dict[str, Version] = {root_vid: self.root}
        self.heads: dict[str, Version] = {branch: self.root}

    # ------------------------------------------------------------------
    # lookups (lock-free: dict reads on an append-only structure)
    # ------------------------------------------------------------------
    def get(self, vid: str) -> Version:
        version = self.versions.get(vid)
        if version is None:
            raise StoreError(f"unknown version {vid!r}")
        return version

    def head(self, branch: str = "main") -> Version:
        head = self.heads.get(branch)
        if head is None:
            raise StoreError(f"unknown branch {branch!r}")
        return head

    def branches(self) -> dict[str, str]:
        """Branch name -> head version id."""
        return {name: v.vid for name, v in sorted(self.heads.items())}

    @property
    def seq(self) -> int:
        """The monotone sequence counter (the highest id ever issued —
        what a checkpoint must record for replay to resume the ids)."""
        return self._seq

    def __len__(self) -> int:
        return len(self.versions)

    def lineage(self, vid: str) -> list[Version]:
        """The path root .. ``vid`` (inclusive), oldest first."""
        chain = []
        node: Version | None = self.get(vid)
        while node is not None:
            chain.append(node)
            node = node.parent
        chain.reverse()
        return chain

    def span(self, base_vid: str, head: Version) -> list[Version] | None:
        """The versions committed strictly after ``base_vid`` on the path
        down from ``head`` (newest first), or ``None`` when ``base_vid``
        is not an ancestor of ``head`` — the interval an optimistic
        committer must conflict-check its footprint against.
        """
        out: list[Version] = []
        node: Version | None = head
        while node is not None:
            if node.vid == base_vid:
                return out
            out.append(node)
            node = node.parent
        return None

    def log(self, branch: str | None = None) -> Iterator[Version]:
        """Versions in commit order (root first); one branch's lineage
        when ``branch`` is given, the whole graph otherwise."""
        if branch is not None:
            yield from self.lineage(self.head(branch).vid)
            return
        yield from sorted(self.versions.values(), key=lambda v: v.seq)

    # ------------------------------------------------------------------
    # growth (caller serialises: the engine's commit lock)
    # ------------------------------------------------------------------
    def next_vid(self) -> str:
        """The id the next commit will receive — what a write-ahead
        record must carry *before* the in-memory commit happens."""
        return f"v{self._seq + 1}"

    def add_commit(self, parent: Version, state, writes: frozenset | None,
                   ops: tuple, branch: str) -> Version:
        """Append one committed state under ``parent`` and advance the
        branch head.  ``parent`` must be the current head of ``branch``
        (the engine's optimistic control has already rebased)."""
        if self.heads.get(branch) is not parent:
            raise StoreError(
                f"commit parent {parent.vid} is not the head of {branch!r}")
        self._seq += 1
        version = Version(f"v{self._seq}", parent, branch, self._seq,
                          state, writes, ops)
        self.versions[version.vid] = version
        self.heads[branch] = version
        return version

    def create_branch(self, name: str, at: Version) -> Version:
        """A new branch whose head starts at ``at``."""
        if name in self.heads:
            raise StoreError(f"branch {name!r} already exists")
        if self.versions.get(at.vid) is not at:
            raise StoreError(f"version {at.vid!r} is not in this graph")
        self.heads[name] = at
        return at

    def add_floor(self, vid: str, branch: str, state) -> Version:
        """Register a parentless version as the head of ``branch`` —
        the checkpoint-restore path, where the version's pre-floor
        history was compacted away.  Branches whose heads coincided at
        checkpoint time share one floor version."""
        version = self.versions.get(vid)
        if version is None:
            seq = _vid_seq(vid)
            if seq > self._seq:
                raise StoreError(
                    f"floor version {vid!r} is ahead of the sequence "
                    f"counter {self._seq} (drifted checkpoint)")
            version = Version(vid, None, branch, seq, state,
                              frozenset(), ())
            self.versions[vid] = version
        self.heads[branch] = version
        return version

    def collect(self, live: dict[str, Version]) -> list[Version]:
        """Restrict the graph to the ``live`` versions (which must
        include every branch head); parent links crossing the new floor
        are cut, so collected versions become garbage the moment no
        session pins them.  Returns the collected versions.

        The sequence counter never rewinds — ids stay monotone across
        GC, so a WAL written before and after a collection still
        replays with identical ids.
        """
        for name, head in self.heads.items():
            if live.get(head.vid) is not head:
                raise StoreError(
                    f"cannot collect the head {head.vid} of branch "
                    f"{name!r}")
        collected = [v for vid, v in self.versions.items()
                     if vid not in live]
        if not collected:
            return []
        self.versions = {vid: v for vid, v in self.versions.items()
                         if vid in live}
        for v in self.versions.values():
            if v.parent is not None and v.parent.vid not in self.versions:
                v.parent = None
        self.root = min(self.versions.values(), key=lambda v: v.seq)
        return collected
