"""Shared seeded random-instance generators for the differential suites.

Every kernel-vs-naive equivalence test draws its inputs from here so the
case distributions stay consistent across suites: set families and FD
sets for the PR-1 kernels (topology generation, closure, chase) and
relation instances, MVDs, JDs, and decompositions with known
lossless/lossy status for the instance kernel.  All generators are pure
functions of the passed ``random.Random``, keeping every suite
reproducible from its seed.
"""

from __future__ import annotations

import os
import random

from repro.relational import FD, MVD, JoinDependency, Relation
from repro.relational.algebra import join_all_naive, project_naive


def chaos_seeds(count: int, base: int | None = None) -> list[int]:
    """Seeds for a chaos sweep: ``base + i`` for ``i < count``.

    ``base`` defaults to the ``REPRO_CHAOS_SEED`` environment variable
    (0 when unset), which the CI chaos lane forwards from the workflow
    env and prints in its step name — so a failing nightly seed is
    replayed locally verbatim by exporting the same value.  Assertion
    messages in the sweeps carry the individual seed, so either way
    the failing case is one env var away."""
    if base is None:
        base = int(os.environ.get("REPRO_CHAOS_SEED", "0") or "0")
    return [base + i for i in range(count)]


def random_family(rng: random.Random, points: list[str]) -> list[frozenset[str]]:
    """A small random family of subsets of ``points`` (may repeat/overlap)."""
    n_sets = rng.randint(0, 6)
    return [
        frozenset(rng.sample(points, rng.randint(0, len(points))))
        for _ in range(n_sets)
    ]


def random_fds(rng: random.Random, attrs: list[str], max_fds: int) -> list[FD]:
    """Up to ``max_fds`` random FDs with small sides over ``attrs``."""
    out = []
    for _ in range(rng.randint(0, max_fds)):
        lhs = rng.sample(attrs, rng.randint(0, min(3, len(attrs) - 1)))
        rhs = rng.sample(attrs, rng.randint(1, min(3, len(attrs))))
        out.append(FD(lhs, rhs))
    return out


def random_relation(rng: random.Random, attrs: list[str],
                    max_rows: int = 8, domain: int = 3) -> Relation:
    """A random relation over ``attrs`` with values in ``0..domain-1``.

    The small domain keeps agreement on lhs-groups (and therefore both
    satisfied and violated dependencies) common rather than vanishingly
    rare.
    """
    rows = [
        {a: rng.randint(0, domain - 1) for a in attrs}
        for _ in range(rng.randint(0, max_rows))
    ]
    return Relation(attrs, rows)


def random_attr_subset(rng: random.Random, attrs: list[str],
                       min_size: int = 0) -> frozenset[str]:
    """A random subset of ``attrs`` of size at least ``min_size``."""
    return frozenset(rng.sample(attrs, rng.randint(min_size, len(attrs))))


def random_instance_fd(rng: random.Random, attrs: list[str]) -> FD:
    """One random FD whose sides lie inside ``attrs`` (rhs nonempty)."""
    lhs = rng.sample(attrs, rng.randint(0, len(attrs)))
    rhs = rng.sample(attrs, rng.randint(1, len(attrs)))
    return FD(lhs, rhs)


def random_mvd(rng: random.Random, attrs: list[str]) -> MVD:
    """One random MVD over the universe ``attrs``."""
    lhs = rng.sample(attrs, rng.randint(0, len(attrs)))
    rhs = rng.sample(attrs, rng.randint(0, len(attrs)))
    return MVD(lhs, rhs, attrs)


def random_cover(rng: random.Random, attrs: list[str],
                 max_parts: int = 4) -> list[frozenset[str]]:
    """Random attribute subsets patched to cover ``attrs`` exactly.

    Any attribute the sampled parts miss is appended to a random part,
    so the result is always a legal decomposition of the universe.
    """
    parts = [
        set(rng.sample(attrs, rng.randint(1, len(attrs))))
        for _ in range(rng.randint(1, max_parts))
    ]
    missing = set(attrs) - set().union(*parts)
    for a in missing:
        rng.choice(parts).add(a)
    return [frozenset(p) for p in parts]


def random_jd(rng: random.Random, attrs: list[str],
              max_components: int = 4) -> JoinDependency:
    """One random JD whose components cover the universe ``attrs``."""
    return JoinDependency(random_cover(rng, attrs, max_components), attrs)


def lossless_instance(rng: random.Random, attrs: list[str],
                      parts: list[frozenset[str]],
                      max_rows: int = 8, domain: int = 3) -> Relation:
    """A relation that is lossless for ``parts`` by construction.

    Joining the projections of any relation yields a fixpoint of
    project-then-join (each part's projection of the join equals the
    part's projection of the original), so the join of a random seed
    relation's projections is a known-lossless instance.  Built from the
    naive operators only, keeping the construction independent of the
    kernel under test.
    """
    seed = random_relation(rng, attrs, max_rows=max_rows, domain=domain)
    return join_all_naive(project_naive(seed, part) for part in parts)


def random_database_states(rng: random.Random,
                           n_attrs: int = 6, n_types: int = 5,
                           rows_per_leaf: int = 3) -> list:
    """A random schema's consistent extension plus injected-violation
    states (containment break, injectivity break) when the schema shape
    admits them.  Returns ``[(schema, db), ...]`` — the substrate of the
    batch-vs-sequential extension sweeps.
    """
    from repro.errors import ExtensionError
    from repro.workloads import (
        inject_containment_violation,
        inject_injectivity_violation,
        random_extension,
        random_schema,
    )
    from repro.workloads.schemas import SHAPES

    schema = random_schema(rng, n_attrs=n_attrs, n_types=n_types,
                           shape=rng.choice(SHAPES))
    db = random_extension(rng, schema, rows_per_leaf=rows_per_leaf)
    states = [(schema, db)]
    for inject in (inject_containment_violation, inject_injectivity_violation):
        try:
            states.append((schema, inject(rng, db)))
        except ExtensionError:
            pass  # shape offers no ISA edge / mutable compound to break
    return states


def random_update_sequence(rng: random.Random, db, n_ops: int = 8,
                           audit_every: int | None = None,
                           constraints: list | None = None) -> list:
    """Drive ``db`` through a random ``insert``/``delete``/``replace``/
    ``remove_tuples`` sequence, returning every intermediate state.

    The substrate of the delta-equivalence suite: each step exercises
    the patch-derived kernel path (new-symbol inserts, deletes of
    existing and of absent rows, propagating and non-propagating
    updates, bulk removals, wholesale replaces).  With ``audit_every``
    the chain is additionally audited (``check_all``) at that cadence so
    the dirty-context caches are warm mid-sequence, which is exactly the
    update-serving workload.  Returns ``[db, state_1, ..., state_n]``.
    """
    from repro.core import check_all
    from repro.workloads.extensions import random_tuple

    schema = db.schema
    types = sorted(schema, key=lambda t: t.name)
    states = [db]
    for step in range(n_ops):
        op = rng.choice(("insert", "delete", "replace", "remove"))
        e = rng.choice(types)
        if op == "insert":
            db = db.insert(e, random_tuple(rng, schema, e.attributes),
                           propagate=rng.random() < 0.7)
        elif op == "delete":
            pool = sorted(db.R(e).tuples, key=repr)
            if pool and rng.random() < 0.8:
                t = rng.choice(pool)
            else:
                t = random_tuple(rng, schema, e.attributes)
            db = db.delete(e, t, propagate=rng.random() < 0.7)
        elif op == "remove":
            pool = sorted(db.R(e).tuples, key=repr)
            db = db.remove_tuples(
                e, rng.sample(pool, min(len(pool), rng.randint(0, 3))))
        else:
            db = db.replace(e, [random_tuple(rng, schema, e.attributes)
                                for _ in range(rng.randint(0, 3))])
        states.append(db)
        if audit_every and (step + 1) % audit_every == 0:
            check_all(schema, db, constraints=constraints or ())
    return states


def lossy_case(rng: random.Random,
               n_rows: int = 3) -> tuple[Relation, list[frozenset[str]]]:
    """A relation/decomposition pair that is lossy by construction.

    ``n_rows >= 2`` diagonal tuples over ``{a, b}`` split into ``{a}``
    and ``{b}``: the join manufactures all ``n_rows**2`` combinations.
    """
    n_rows = max(2, n_rows)
    rows = [{"a": i, "b": rng.randint(0, 1) * n_rows + i} for i in range(n_rows)]
    return Relation(["a", "b"], rows), [frozenset("a"), frozenset("b")]


# ----------------------------------------------------------------------
# wire-protocol messages (PR 7 frame codec and fuzz suites)
# ----------------------------------------------------------------------

def random_json_value(rng: random.Random, depth: int = 0):
    """An arbitrary JSON value; nesting thins out with ``depth`` so
    generated messages stay small but exercise every shape."""
    choices = ["null", "bool", "int", "float", "string"]
    if depth < 3:
        choices += ["list", "dict"]
    kind = rng.choice(choices)
    if kind == "null":
        return None
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "int":
        return rng.randint(-10**9, 10**9)
    if kind == "float":
        # repr-exact floats survive a JSON round trip bit-for-bit
        return rng.randint(-10**6, 10**6) / 64
    if kind == "string":
        alphabet = "abcXYZ 0123é世界\\\"{}[]\n\t"
        return "".join(rng.choice(alphabet)
                       for _ in range(rng.randint(0, 12)))
    if kind == "list":
        return [random_json_value(rng, depth + 1)
                for _ in range(rng.randint(0, 4))]
    return {f"k{i}": random_json_value(rng, depth + 1)
            for i in range(rng.randint(0, 4))}


def random_frame_message(rng: random.Random) -> dict:
    """A random JSON-object message (the only payload shape frames
    carry); sometimes request-shaped, sometimes arbitrary."""
    message = {f"f{i}": random_json_value(rng)
               for i in range(rng.randint(0, 5))}
    if rng.random() < 0.5:
        message["id"] = rng.choice([rng.randint(0, 999), "rid", None])
    if rng.random() < 0.5:
        message["op"] = rng.choice(["ping", "hello", "read", "nosuch"])
    return message
