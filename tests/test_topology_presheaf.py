"""Unit tests for presheaves and the sheaf condition (repro.topology.presheaf)."""

import pytest

from repro.errors import PresheafError
from repro.topology import FiniteSpace, Presheaf, presheaf_from_function

SIERPINSKI = FiniteSpace("ab", [set(), {"a"}, {"a", "b"}])
EMPTY = frozenset()
A = frozenset({"a"})
AB = frozenset({"a", "b"})


def constant_presheaf(value_set):
    """F(U) = value_set for nonempty U, {()} for the empty open."""
    def assign(u):
        return value_set if u else {()}

    def restrict(u, v, s):
        return s if v else ()

    return presheaf_from_function(SIERPINSKI, assign, restrict)


class TestLaws:
    def test_constant_presheaf_valid(self):
        assert constant_presheaf({1, 2}).is_presheaf()

    def test_missing_section_rejected(self):
        with pytest.raises(PresheafError):
            Presheaf(SIERPINSKI, {AB: {1}, A: {1}}, {})

    def test_non_inclusion_restriction_rejected(self):
        with pytest.raises(PresheafError):
            Presheaf(
                SIERPINSKI,
                {EMPTY: {()}, A: {1}, AB: {1}},
                {(A, AB): {1: 1}},
            )

    def test_identity_violation_detected(self):
        p = Presheaf(
            SIERPINSKI,
            {EMPTY: {()}, A: {1, 2}, AB: {1}},
            {(AB, A): {1: 1}, (A, A): {1: 2, 2: 1}},
        )
        problems = p.check_functor_laws()
        assert any("identity" in msg for msg in problems)

    def test_composition_violation_detected(self):
        p = Presheaf(
            SIERPINSKI,
            {EMPTY: {"e"}, A: {"x", "y"}, AB: {"s"}},
            {
                (AB, A): {"s": "x"},
                (AB, EMPTY): {"s": "e"},
                (A, EMPTY): {"x": "e", "y": "e"},
            },
        )
        assert p.is_presheaf()  # this one is fine
        broken = Presheaf(
            SIERPINSKI,
            {EMPTY: {"e1", "e2"}, A: {"x"}, AB: {"s"}},
            {
                (AB, A): {"s": "x"},
                (AB, EMPTY): {"s": "e1"},
                (A, EMPTY): {"x": "e2"},
            },
        )
        problems = broken.check_functor_laws()
        assert any("composition" in msg for msg in problems)

    def test_restriction_landing_outside_detected(self):
        p = Presheaf(
            SIERPINSKI,
            {EMPTY: {()}, A: {1}, AB: {2}},
            {(AB, A): {2: 99}, (AB, EMPTY): {2: ()}, (A, EMPTY): {1: ()}},
        )
        problems = p.check_functor_laws()
        assert any("lands outside" in msg for msg in problems)


class TestSheafCondition:
    def test_gluing_on_trivial_cover(self):
        p = constant_presheaf({1, 2})
        assert p.gluing_failures(AB, [AB]) == []

    def test_gluing_failure_no_global_section(self):
        # F(AB) empty but F(A) populated: a compatible family cannot glue.
        p = Presheaf(
            SIERPINSKI,
            {EMPTY: {()}, A: {1}, AB: set()},
            {(AB, A): {}, (AB, EMPTY): {}, (A, EMPTY): {1: ()}},
        )
        failures = p.gluing_failures(AB, [A, AB])
        # cover must use opens that cover AB; A alone does not cover, so
        # include AB itself, whose section set is empty -> no families and
        # no failures; use the A-only check via a different route:
        assert failures == []  # no compatible family exists at all

    def test_nonunique_gluing_detected(self):
        # Two global sections restricting identically.
        p = Presheaf(
            SIERPINSKI,
            {EMPTY: {()}, A: {1}, AB: {"s", "t"}},
            {
                (AB, A): {"s": 1, "t": 1},
                (AB, EMPTY): {"s": (), "t": ()},
                (A, EMPTY): {1: ()},
            },
        )
        failures = p.gluing_failures(AB, [A, AB])
        assert failures == [] or failures  # cover includes AB: family fixes AB section
        # A cover that genuinely exposes non-uniqueness: cover by {A} union... AB has
        # no second open covering b, so cover must include AB; uniqueness
        # is then trivially forced. Check the A-indexed compatibility count instead.
        fams = p.compatible_families([A])
        glue_counts = [
            len([s for s in p.sections[AB] if p.restrict(AB, A, s) == fam[A]])
            for fam in fams
        ]
        assert glue_counts == [2]  # two gluings for one family: not a sheaf over {A}

    def test_cover_validation(self):
        p = constant_presheaf({1})
        with pytest.raises(PresheafError):
            p.gluing_failures(AB, [A])  # A does not cover AB


class TestFromFunction:
    def test_builds_all_restrictions(self):
        p = constant_presheaf({1, 2, 3})
        assert (AB, A) in p.restrictions
        assert (AB, EMPTY) in p.restrictions
        assert p.restrict(AB, A, 2) == 2
