"""Unit tests for tuples and relations (repro.relational.relation)."""

import pytest

from repro.errors import RelationError
from repro.relational import Relation, Tuple


class TestTuple:
    def test_value_equality_and_hash(self):
        t1 = Tuple({"a": 1, "b": 2})
        t2 = Tuple({"b": 2, "a": 1})
        assert t1 == t2
        assert hash(t1) == hash(t2)

    def test_schema(self):
        assert Tuple({"x": 0, "y": 1}).schema == frozenset({"x", "y"})

    def test_getitem_and_get(self):
        t = Tuple({"a": 1})
        assert t["a"] == 1
        assert t.get("missing") is None
        with pytest.raises(KeyError):
            t["missing"]

    def test_project(self):
        t = Tuple({"a": 1, "b": 2, "c": 3})
        assert t.project({"a", "c"}) == Tuple({"a": 1, "c": 3})

    def test_project_missing_attribute(self):
        with pytest.raises(RelationError):
            Tuple({"a": 1}).project({"z"})

    def test_merge_compatible(self):
        merged = Tuple({"a": 1, "b": 2}).merge(Tuple({"b": 2, "c": 3}))
        assert merged == Tuple({"a": 1, "b": 2, "c": 3})

    def test_merge_conflict(self):
        with pytest.raises(RelationError):
            Tuple({"a": 1}).merge(Tuple({"a": 2}))

    def test_joinable(self):
        assert Tuple({"a": 1}).joinable(Tuple({"a": 1, "b": 2}))
        assert not Tuple({"a": 1}).joinable(Tuple({"a": 2}))
        assert Tuple({"a": 1}).joinable(Tuple({"b": 9}))  # disjoint

    def test_rename(self):
        t = Tuple({"a": 1, "b": 2}).rename({"a": "x"})
        assert t == Tuple({"x": 1, "b": 2})

    def test_rejects_nonstring_attribute(self):
        with pytest.raises(RelationError):
            Tuple({1: "x"})

    def test_rejects_unhashable_value(self):
        with pytest.raises(RelationError):
            Tuple({"a": [1, 2]})

    def test_as_dict_is_copy(self):
        t = Tuple({"a": 1})
        d = t.as_dict()
        d["a"] = 99
        assert t["a"] == 1


class TestRelation:
    def test_construction_from_dicts(self):
        r = Relation({"a", "b"}, [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert len(r) == 2

    def test_duplicate_elimination(self):
        r = Relation({"a"}, [{"a": 1}, {"a": 1}])
        assert len(r) == 1

    def test_schema_mismatch(self):
        with pytest.raises(RelationError):
            Relation({"a"}, [{"b": 1}])

    def test_from_rows_declared_order(self):
        r = Relation.from_rows(["b", "a"], [[1, 2]])
        # declared column order: b=1, a=2
        assert Tuple({"b": 1, "a": 2}) in r

    def test_from_rows_duplicate_schema(self):
        with pytest.raises(RelationError):
            Relation.from_rows(["a", "a"], [[1, 2]])

    def test_from_rows_arity_check(self):
        with pytest.raises(RelationError):
            Relation.from_rows(["a", "b"], [[1]])

    def test_contains_mapping(self):
        r = Relation({"a"}, [{"a": 1}])
        assert {"a": 1} in r
        assert {"a": 2} not in r

    def test_zero_ary_relations(self):
        true_rel = Relation((), [Tuple({})])
        false_rel = Relation(())
        assert len(true_rel) == 1 and len(false_rel) == 0

    def test_subset_check(self):
        small = Relation({"a"}, [{"a": 1}])
        big = Relation({"a"}, [{"a": 1}, {"a": 2}])
        assert small.is_subset_of(big)
        assert not big.is_subset_of(small)

    def test_subset_check_schema_mismatch(self):
        with pytest.raises(RelationError):
            Relation({"a"}).is_subset_of(Relation({"b"}))

    def test_with_and_without_tuples(self):
        r = Relation({"a"}, [{"a": 1}])
        grown = r.with_tuples([{"a": 2}])
        assert len(grown) == 2
        shrunk = grown.without_tuples([{"a": 1}])
        assert shrunk == Relation({"a"}, [{"a": 2}])

    def test_iteration_deterministic(self):
        r = Relation({"a"}, [{"a": 2}, {"a": 1}, {"a": 3}])
        assert list(r) == list(r)

    def test_equality_and_hash(self):
        r1 = Relation({"a"}, [{"a": 1}])
        r2 = Relation({"a"}, [{"a": 1}])
        assert r1 == r2 and hash(r1) == hash(r2)
